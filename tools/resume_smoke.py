#!/usr/bin/env python
"""Kill-and-resume smoke: SIGKILL a campaign mid-flight, resume, diff.

The acceptance contract of the resilient executor, exercised end to
end against the real CLI:

1. run a clean serial campaign → ``clean.json`` (the reference
   artifact);
2. start the same campaign with ``--jobs 2 --resume journal.jsonl`` in
   a subprocess, wait until the journal proves at least one cell
   finished, then SIGKILL the whole process group mid-flight;
3. re-run the same command to completion (the resume pass);
4. assert the resumed artifact is **byte-identical** to the clean one
   and that the resume pass actually skipped journalled cells.

Exit code 0 on success, 1 on any violated expectation. Used by CI and
by ``tests/integration/test_kill_resume.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def _campaign_file(path: Path, steps: int, seeds: int) -> int:
    """Write a campaign big/slow enough to be killed mid-flight."""
    sys.path.insert(0, str(SRC))
    from repro.campaign import ScenarioSpec, dump_campaign
    from repro.lang.programs import program_source

    specs = []
    for seed in range(seeds):
        for name, n in (("ring_pipeline", 3), ("token_ring", 3)):
            specs.append(ScenarioSpec(
                label=f"{name}/seed{seed}",
                program=program_source(name),
                n_processes=n,
                params={"steps": steps},
                protocol="appl-driven",
                period=6.0,
                seed=seed,
            ))
    path.write_text(dump_campaign(specs))
    return len(specs)


def _cli(campaign: Path, out: Path, jobs: int, journal: Path | None):
    """The ``repro campaign`` argv for one run."""
    argv = [
        sys.executable, "-m", "repro", "campaign", str(campaign),
        "--jobs", str(jobs), "--results-json", str(out),
    ]
    if journal is not None:
        argv += ["--resume", str(journal)]
    return argv


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC}:{env['PYTHONPATH']}" if env.get("PYTHONPATH") else str(SRC)
    )
    return env


def _journal_cells(journal: Path) -> int:
    """Completed cell records currently visible in the journal."""
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_bytes().split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail
        if isinstance(record, dict) and record.get("kind") == "cell":
            count += 1
    return count


def main(argv: list[str] | None = None) -> int:
    """Run the kill-and-resume smoke; return the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=40,
                        help="workload steps per cell (bigger = slower "
                             "cells = easier mid-flight kill)")
    parser.add_argument("--seeds", type=int, default=4,
                        help="seeds per workload (cells = 2 * seeds)")
    parser.add_argument("--kill-after-cells", type=int, default=1,
                        help="SIGKILL once this many cells are "
                             "journalled")
    parser.add_argument("--kill-timeout", type=float, default=120.0,
                        help="give up waiting for the journal after "
                             "this many seconds")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="resume-smoke-") as tmp:
        work = Path(tmp)
        campaign = work / "campaign.json"
        journal = work / "journal.jsonl"
        clean_json = work / "clean.json"
        resumed_json = work / "resumed.json"
        cells = _campaign_file(campaign, args.steps, args.seeds)
        print(f"# campaign of {cells} cells at steps={args.steps}")

        clean = subprocess.run(
            _cli(campaign, clean_json, jobs=1, journal=None), env=_env(),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        if clean.returncode != 0:
            print(clean.stdout)
            print("FAIL: clean run did not succeed")
            return 1

        victim = subprocess.Popen(
            _cli(campaign, resumed_json, jobs=2, journal=journal),
            env=_env(), start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + args.kill_timeout
        killed = False
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break  # finished before we could kill it
            if _journal_cells(journal) >= args.kill_after_cells:
                os.killpg(victim.pid, signal.SIGKILL)
                victim.wait()
                killed = True
                break
            time.sleep(0.02)
        else:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait()
            print("FAIL: journal never reached the kill threshold")
            return 1
        done = _journal_cells(journal)
        if killed:
            print(f"# SIGKILL'd mid-flight with {done}/{cells} cells "
                  f"journalled")
            if done >= cells:
                print("# note: campaign finished before the kill landed; "
                      "resume pass degenerates to all-hits")
        else:
            print(f"# campaign finished (all {done} cells) before the "
                  f"kill threshold; resume pass still exercised")

        resume = subprocess.run(
            _cli(campaign, resumed_json, jobs=2, journal=journal),
            env=_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        print(resume.stdout, end="")
        if resume.returncode != 0:
            print("FAIL: resume run did not succeed")
            return 1
        if "resume-hits=0" in resume.stdout and done:
            print("FAIL: resume pass skipped no journalled cells")
            return 1

        if clean_json.read_bytes() != resumed_json.read_bytes():
            print("FAIL: resumed artifact differs from clean jobs=1 run")
            return 1
        print(f"OK: resumed artifact byte-identical to clean run "
              f"({done} cell(s) served from the journal)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
