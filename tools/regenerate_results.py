#!/usr/bin/env python3
"""Regenerate every quantitative artifact in EXPERIMENTS.md.

Writes one plain-text file per experiment into ``results/`` (created if
needed). Run from the repository root::

    python tools/regenerate_results.py [output_dir]

Everything is deterministic (fixed seeds), so re-running should produce
byte-identical outputs on the same platform.
"""

from __future__ import annotations

import sys
from pathlib import Path


def write(path: Path, text: str) -> None:
    """Write *text* to *path* and echo the file name."""
    path.write_text(text)
    print(f"wrote {path}")


def figure8(out: Path) -> None:
    from repro.analysis.comparison import figure8_series
    from repro.bench.figures import figure8_table, shape_check_figure8

    problems = shape_check_figure8(figure8_series())
    body = figure8_table() + "\n\nshape claims: " + (
        "ALL HOLD" if not problems else "; ".join(problems)
    ) + "\n"
    write(out / "figure8.txt", body)


def figure9(out: Path) -> None:
    from repro.analysis.comparison import figure9_series
    from repro.bench.figures import figure9_table, shape_check_figure9

    problems = shape_check_figure9(figure9_series())
    body = figure9_table() + "\n\nshape claims: " + (
        "ALL HOLD" if not problems else "; ".join(problems)
    ) + "\n"
    write(out / "figure9.txt", body)


def markov_validation(out: Path) -> None:
    from repro.analysis import (
        IntervalMarkovChain,
        STARFISH_DEFAULTS,
        gamma_closed_form,
        simulate_interval_time,
        system_failure_rate,
    )

    p = STARFISH_DEFAULTS
    lam = system_failure_rate(p, 256)
    args = (p.interval, p.checkpoint_overhead, p.recovery_overhead,
            p.checkpoint_latency)
    chain = IntervalMarkovChain(lam, *args)
    monte = simulate_interval_time(lam, *args, trials=20_000)
    lines = [
        f"lambda (n=256)     : {lam:.6e}",
        f"Gamma closed form  : {gamma_closed_form(lam, *args):.6f}",
        f"Gamma two-path     : {chain.expected_time_two_path():.6f}",
        f"Gamma linear system: {chain.expected_time_linear_system():.6f}",
        f"Gamma Monte Carlo  : {monte.mean:.4f} +/- {monte.std_error:.4f}",
    ]
    write(out / "figure7_markov.txt", "\n".join(lines) + "\n")


def protocol_comparison(out: Path) -> None:
    from repro.bench.workloads import (
        ProtocolRunSummary,
        run_protocol_comparison,
        standard_workloads,
    )
    from repro.runtime import FailurePlan

    workload = standard_workloads(steps=12)[0]
    rows = run_protocol_comparison(
        workload, period=6.0, failure_plan=FailurePlan.single(14.3, 2)
    )
    body = ProtocolRunSummary.header() + "\n" + "\n".join(
        row.row() for row in rows
    ) + "\n"
    write(out / "protocol_comparison.txt", body)


def optimal_intervals(out: Path) -> None:
    from repro.analysis.sensitivity import optimal_table

    write(out / "optimal_intervals.txt", optimal_table() + "\n")


def payoff(out: Path) -> None:
    from repro.analysis import STARFISH_DEFAULTS, system_failure_rate
    from repro.analysis.availability import (
        break_even_work,
        expected_completion_with_checkpointing,
        expected_completion_without_checkpointing,
    )

    p = STARFISH_DEFAULTS
    lam = system_failure_rate(p, 256)
    args = dict(
        interval=p.interval,
        total_overhead=p.checkpoint_overhead,
        recovery=p.recovery_overhead,
        total_latency=p.checkpoint_latency,
    )
    lines = [f"{'work':>8s} {'protected':>14s} {'unprotected':>16s}"]
    for hours in (1, 6, 24):
        work = hours * 3600.0
        protected = expected_completion_with_checkpointing(work, lam, **args)
        unprotected = expected_completion_without_checkpointing(work, lam)
        lines.append(f"{hours:>6d}h {protected:>14.0f} {unprotected:>16.0f}")
    point = break_even_work(lam, **args)
    lines.append(f"break-even work: {point.work:.0f} s")
    write(out / "checkpointing_payoff.txt", "\n".join(lines) + "\n")


def fault_tolerance(out: Path) -> None:
    from repro.bench.fault_tolerance import (
        fault_tolerance_sweep,
        format_fault_table,
    )

    rows = fault_tolerance_sweep()
    lost = sum(r.runs - r.completed for r in rows)
    body = format_fault_table(rows) + "\n\nruns lost: " + (
        "NONE (degraded recovery absorbed every fault)"
        if lost == 0 else str(lost)
    ) + "\n"
    write(out / "fault_tolerance.txt", body)


def network_faults(out: Path) -> None:
    from repro.bench.network_faults import (
        format_network_table,
        network_fault_sweep,
    )

    rows = network_fault_sweep()
    lost = sum(r.runs - r.completed for r in rows)
    body = format_network_table(rows) + "\n\nruns lost: " + (
        "NONE (reliable transport absorbed every network fault)"
        if lost == 0 else str(lost)
    ) + "\n"
    write(out / "network_faults.txt", body)


def obs_overhead(out: Path) -> None:
    from repro.bench.obs_overhead import (
        format_obs_overhead,
        obs_overhead_report,
    )

    report = obs_overhead_report()
    write(out / "obs_overhead.txt", format_obs_overhead(report) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Regenerate all result files; returns the process exit code."""
    args = argv if argv is not None else sys.argv[1:]
    out = Path(args[0]) if args else Path("results")
    out.mkdir(parents=True, exist_ok=True)
    figure8(out)
    figure9(out)
    markov_validation(out)
    protocol_comparison(out)
    optimal_intervals(out)
    payoff(out)
    fault_tolerance(out)
    network_faults(out)
    obs_overhead(out)
    print("done")
    return 0


if __name__ == "__main__":
    sys.exit(main())
