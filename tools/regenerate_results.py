#!/usr/bin/env python3
"""Regenerate every quantitative artifact in EXPERIMENTS.md.

Writes one plain-text file per experiment into ``results/`` (created if
needed). Run from the repository root::

    python tools/regenerate_results.py [output_dir] [--jobs N]

Generators fan out over the campaign executor (``--jobs`` worker
processes, default all cores); per-result wall-clock is printed so the
parallel speedup is visible in CI logs. Everything except the timing
columns of ``campaign_scaling.txt`` is deterministic (fixed seeds), so
re-running should produce byte-identical outputs on the same platform.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path


def write(path: Path, text: str) -> None:
    """Write *text* to *path* and echo the file name."""
    path.write_text(text)
    print(f"wrote {path}")


def main(argv: list[str] | None = None) -> int:
    """Regenerate all result files; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output_dir", nargs="?", default="results",
                        help="directory for the result files")
    parser.add_argument("-j", "--jobs", type=int, default=0, metavar="N",
                        help="worker processes (0 = all cores, the "
                             "default); outputs are identical for any N")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="regenerate only the named generator(s)")
    args = parser.parse_args(argv)

    from repro.bench.results import RESULT_GENERATORS, render_result
    from repro.campaign.executor import run_cells

    names = list(RESULT_GENERATORS)
    if args.only:
        unknown = sorted(set(args.only) - set(names))
        if unknown:
            print(f"error: unknown generator(s) {unknown}; "
                  f"known: {', '.join(names)}", file=sys.stderr)
            return 2
        names = [name for name in names if name in set(args.only)]

    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    start = time.perf_counter()
    results, timings = run_cells(
        [(name, name) for name in names], render_result, jobs=args.jobs
    )
    for name in names:
        filename, body = results[name]
        write(out / filename, body)
        print(f"  {name}: {timings[name]:.2f}s")
    total = time.perf_counter() - start
    busy = sum(timings.values())
    print(f"done: {len(names)} result(s) in {total:.2f}s wall "
          f"({busy:.2f}s of generator time)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
