#!/usr/bin/env python3
"""CI perf smoke: guard the engine/transform hot-path optimizations.

Re-runs the microbenchmarks behind ``results/BENCH_engine.json`` and
``results/BENCH_transform.json`` and compares the *speedup ratios*
(reference implementation / optimized implementation, both timed on the
current machine) against the committed baselines. Absolute wall times
are machine-dependent and never compared; a ratio is portable because
both sides pay the same hardware tax. The check fails only when a
current ratio drops below **half** the committed one — a deliberately
loose bound so shared-runner noise can't flake the job, while a real
regression (optimized path degrading toward the reference) still trips
it. It also fails if any benchmark case reports non-identical results
between the two implementations, which would invalidate the ratios.

Run from the repository root::

    PYTHONPATH=src python tools/perf_smoke.py [--baseline-dir results]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def check_report(current, baseline_path: Path) -> list[str]:
    """Compare a fresh report against its committed baseline file."""
    from repro.bench.record import load_report

    problems: list[str] = []
    if not baseline_path.exists():
        return [f"missing committed baseline {baseline_path}"]
    baseline = load_report(baseline_path)
    committed = {case.name: case for case in baseline.cases}
    for case in current.cases:
        if not case.identical:
            problems.append(
                f"{current.benchmark}/{case.name}: implementations "
                "disagree — benchmark results are invalid"
            )
            continue
        reference = committed.get(case.name)
        if reference is None:
            # New case with no baseline yet: nothing to regress against.
            continue
        floor = reference.speedup / 2.0
        if case.speedup < floor:
            problems.append(
                f"{current.benchmark}/{case.name}: speedup "
                f"{case.speedup:.2f}x fell below {floor:.2f}x "
                f"(half the committed {reference.speedup:.2f}x)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-dir", default="results", metavar="DIR",
        help="directory holding the committed BENCH_*.json files",
    )
    args = parser.parse_args(argv)
    baseline_dir = Path(args.baseline_dir)

    from repro.bench.engine_hotpath import (
        engine_hotpath_report,
        format_engine_hotpath,
    )
    from repro.bench.transform_hotpath import (
        format_transform_hotpath,
        transform_hotpath_report,
    )

    problems: list[str] = []
    engine = engine_hotpath_report()
    print(format_engine_hotpath(engine))
    problems += check_report(engine, baseline_dir / "BENCH_engine.json")
    transform = transform_hotpath_report()
    print()
    print(format_transform_hotpath(transform))
    problems += check_report(transform, baseline_dir / "BENCH_transform.json")

    print()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("perf smoke OK: all speedups within 2x of committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
