#!/usr/bin/env python3
"""CI perf smoke: guard the engine/transform/checkpoint optimizations.

Re-runs the microbenchmarks behind ``results/BENCH_engine.json``,
``results/BENCH_checkpoint.json``, and
``results/BENCH_transform.json`` and compares the *speedup ratios*
(reference implementation / optimized implementation, both timed on the
current machine) against the committed baselines. Absolute wall times
are machine-dependent and never compared; a ratio is portable because
both sides pay the same hardware tax.

The comparison is the general metrics-diff engine
(:mod:`repro.obs.diff` — the same logic behind ``repro metrics diff``)
with two threshold rules:

- ``case.*.speedup`` must keep at least **half** its committed ratio —
  a deliberately loose bound so shared-runner noise can't flake the
  job, while a real regression (optimized path degrading toward the
  reference) still trips it;
- ``case.*.identical`` must stay at 1.0 — a benchmark row is invalid
  if the two implementations diverge.

A failure names the specific regressing case with its before/after
ratio (the diff report's *worst regression* line), so the red CI line
is a diagnosis, not a boolean.

Two absolute (machine-independent) checks ride along: every required
engine case must keep the compiled backend at least as fast as the
reference stack, and every checkpoint-payload case must keep the
minimized wire bytes at or below the full-content bytes.

Run from the repository root::

    PYTHONPATH=src python tools/perf_smoke.py [--baseline-dir results]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The perf-smoke gate, expressed as diff-engine threshold rules.
THRESHOLD_RULES = (
    ("case.*.speedup", 0.5),
    ("case.*.identical", 1.0),
)

#: Engine cases the compiled backend must cover. A missing row means
#: the benchmark silently stopped exercising the compiled backend; a
#: speedup below 1.0 means compiled execution regressed to (or under)
#: the tree-walking reference stack measured on the same machine.
REQUIRED_ENGINE_CASES = (
    "stencil_1d_n192",
    "stencil_1d_n256",
    "token_ring_n192",
)


def check_compiled_floor(report) -> list[str]:
    """Assert every required engine case exists and compiled >= reference.

    The ratio rules above compare against the *committed* baseline; this
    check is absolute — whatever the baseline says, the compiled backend
    must never be slower than the reference interpreter timed in the
    same process on the same inputs.
    """
    by_name = {case.name: case for case in report.cases}
    problems = []
    for name in REQUIRED_ENGINE_CASES:
        case = by_name.get(name)
        if case is None:
            problems.append(
                f"{report.benchmark}/{name}: no compiled-backend entry "
                "in the fresh report"
            )
        elif case.speedup < 1.0:
            problems.append(
                f"{report.benchmark}/{name}: compiled backend is slower "
                f"than the reference stack ({case.optimized_wall_s:.3f}s "
                f"vs {case.reference_wall_s:.3f}s)"
            )
    return problems


def check_payload_floor(report) -> list[str]:
    """Assert minimized checkpoint payloads never exceed full payloads.

    The byte counts are exact (canonical encoder output, not timings),
    so this bound is absolute: ``pruned+delta`` content that grew past
    the full snapshot means the minimization itself regressed, no
    matter what the committed baseline ratios say. ``identical`` is
    also pinned here so an invalid row fails even when the baseline
    diff is noisy.
    """
    problems = []
    for case in report.cases:
        full = case.extra.get("full_payload_bytes")
        minimized = case.extra.get("minimized_payload_bytes")
        if full is None or minimized is None:
            problems.append(
                f"{report.benchmark}/{case.name}: missing payload byte "
                "counts in the fresh report"
            )
        elif minimized > full:
            problems.append(
                f"{report.benchmark}/{case.name}: minimized payload "
                f"({minimized}B) exceeds full payload ({full}B)"
            )
        if not case.identical:
            problems.append(
                f"{report.benchmark}/{case.name}: content modes "
                "diverged — minimization changed behaviour"
            )
    return problems


def check_report(current, baseline_path: Path) -> list[str]:
    """Diff a fresh report against its committed baseline file.

    Returns a list of problem strings (empty = pass), each naming the
    regressing case and its before/after values.
    """
    from repro.obs.diff import Threshold, diff_metrics, flatten_metrics

    if not baseline_path.exists():
        return [f"missing committed baseline {baseline_path}"]
    report = diff_metrics(
        flatten_metrics(json.loads(baseline_path.read_text())),
        flatten_metrics(current.as_dict()),
        rules=[
            (pattern, Threshold(min_ratio=floor))
            for pattern, floor in THRESHOLD_RULES
        ],
    )
    problems = []
    for delta in report.failures:
        if delta.name.endswith(".identical"):
            problems.append(
                f"{current.benchmark}/{delta.name}: implementations "
                "disagree — benchmark results are invalid"
            )
        else:
            problems.append(
                f"{current.benchmark}/{delta.name}: speedup "
                f"{delta.after:.2f}x fell below half the committed "
                f"{delta.before:.2f}x (ratio {delta.ratio:.2f})"
            )
    worst = report.worst
    if worst is not None:
        problems.append(
            f"worst regression: {current.benchmark}/{worst.name} "
            f"({worst.before:g} -> {worst.after:g}, "
            f"ratio {worst.ratio:.3f})"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-dir", default="results", metavar="DIR",
        help="directory holding the committed BENCH_*.json files",
    )
    args = parser.parse_args(argv)
    baseline_dir = Path(args.baseline_dir)

    from repro.bench.checkpoint_payload import (
        checkpoint_payload_report,
        format_checkpoint_payload,
    )
    from repro.bench.engine_hotpath import (
        engine_hotpath_report,
        format_engine_hotpath,
    )
    from repro.bench.transform_hotpath import (
        format_transform_hotpath,
        transform_hotpath_report,
    )

    problems: list[str] = []
    engine = engine_hotpath_report()
    print(format_engine_hotpath(engine))
    problems += check_report(engine, baseline_dir / "BENCH_engine.json")
    problems += check_compiled_floor(engine)
    checkpoint = checkpoint_payload_report()
    print()
    print(format_checkpoint_payload(checkpoint))
    problems += check_report(
        checkpoint, baseline_dir / "BENCH_checkpoint.json"
    )
    problems += check_payload_floor(checkpoint)
    transform = transform_hotpath_report()
    print()
    print(format_transform_hotpath(transform))
    problems += check_report(transform, baseline_dir / "BENCH_transform.json")

    print()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("perf smoke OK: all speedups within 2x of committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
