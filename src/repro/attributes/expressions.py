"""Abstract evaluation of MiniMP expressions as functions of rank.

:func:`abstract_eval` partially evaluates an expression given concrete
``rank`` and ``nprocs`` values, inlining single-assignment variable
definitions. The result is either a concrete integer or ``None``,
meaning *unknown* — the expression depends on input data, received
values, loop counters, or multiply-assigned variables. Unknown values
act as wildcards in contradiction checking (paper: irregular patterns
"match if they do not contradict").
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast

_MAX_INLINE_DEPTH = 16


def abstract_eval(
    expr: ast.Expr,
    rank: int,
    nprocs: int,
    defs: dict[str, ast.Expr] | None = None,
    _depth: int = 0,
) -> int | None:
    """Evaluate *expr* for a process with the given *rank*.

    Returns the concrete integer value, or ``None`` if the value cannot
    be determined statically. Division or modulo by zero also yields
    ``None`` (the execution would fault; for matching purposes the
    value is unconstrained).
    """
    if _depth > _MAX_INLINE_DEPTH:
        return None
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.MyRank):
        return rank
    if isinstance(expr, ast.NProcs):
        return nprocs
    if isinstance(expr, ast.InputData):
        return None
    if isinstance(expr, ast.Name):
        if defs and expr.ident in defs:
            return abstract_eval(
                defs[expr.ident], rank, nprocs, defs, _depth + 1
            )
        return None
    if isinstance(expr, ast.Call):
        args = [abstract_eval(a, rank, nprocs, defs, _depth + 1) for a in expr.args]
        if any(a is None for a in args):
            return None
        if expr.func == "min":
            return min(args)
        if expr.func == "max":
            return max(args)
        if expr.func == "abs" and len(args) == 1:
            return abs(args[0])
        return None
    if isinstance(expr, ast.UnaryOp):
        operand = abstract_eval(expr.operand, rank, nprocs, defs, _depth + 1)
        if operand is None:
            return None
        if expr.op == "-":
            return -operand
        if expr.op == "not":
            return int(not operand)
        return None
    if isinstance(expr, ast.BinOp):
        return _eval_binop(expr, rank, nprocs, defs, _depth)
    return None


def _eval_binop(
    expr: ast.BinOp,
    rank: int,
    nprocs: int,
    defs: dict[str, ast.Expr] | None,
    depth: int,
) -> int | None:
    left = abstract_eval(expr.left, rank, nprocs, defs, depth + 1)
    # Short-circuit forms first: one known side can decide the result.
    if expr.op == "and":
        if left == 0:
            return 0
        right = abstract_eval(expr.right, rank, nprocs, defs, depth + 1)
        if right == 0:
            return 0
        if left is None or right is None:
            return None
        return int(bool(left) and bool(right))
    if expr.op == "or":
        if left is not None and left != 0:
            return 1
        right = abstract_eval(expr.right, rank, nprocs, defs, depth + 1)
        if right is not None and right != 0:
            return 1
        if left is None or right is None:
            return None
        return 0
    right = abstract_eval(expr.right, rank, nprocs, defs, depth + 1)
    if left is None or right is None:
        return None
    if expr.op == "+":
        return left + right
    if expr.op == "-":
        return left - right
    if expr.op == "*":
        return left * right
    if expr.op in ("/", "//"):
        return left // right if right != 0 else None
    if expr.op == "%":
        return left % right if right != 0 else None
    if expr.op == "==":
        return int(left == right)
    if expr.op == "!=":
        return int(left != right)
    if expr.op == "<":
        return int(left < right)
    if expr.op == "<=":
        return int(left <= right)
    if expr.op == ">":
        return int(left > right)
    if expr.op == ">=":
        return int(left >= right)
    return None
