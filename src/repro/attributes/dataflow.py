"""ID-dependence and irregularity dataflow over MiniMP programs.

The paper (§3.2) requires determining, for every branch, whether its
condition expression *depends on process IDs* (an *ID-dependent*
branch), and for every send/receive parameter whether its computation
pattern is *regular* (a function of rank and system size) or
*irregular* (depends on input data).

We compute two transitively-closed variable classes:

- ``rank_dependent``: assigned (directly or transitively) from
  ``myrank``.
- ``irregular``: assigned from ``input(...)``, from a received message,
  or from another irregular variable. Received values are irregular
  because their content is another process's data, which static
  analysis must not constrain.

``nprocs`` is deliberately *not* ID-dependent: it is identical in every
process, so a condition on ``nprocs`` alone cannot distinguish ranks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang import ast_nodes as ast


class ConditionClass(enum.Enum):
    """Classification of a branch condition (paper §3.2)."""

    ID_DEPENDENT = "id-dependent"
    IRREGULAR = "irregular"
    NEUTRAL = "neutral"


@dataclass(frozen=True)
class VariableClasses:
    """The fixpoint variable classification of a program."""

    rank_dependent: frozenset[str]
    irregular: frozenset[str]


def _expr_names(expr: ast.Expr) -> frozenset[str]:
    return frozenset(
        node.ident for node in ast.walk(expr) if isinstance(node, ast.Name)
    )


def _mentions_rank(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.MyRank) for node in ast.walk(expr))


def _mentions_input(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.InputData) for node in ast.walk(expr))


def classify_variables(program: ast.Program) -> VariableClasses:
    """Fixpoint classification of every assigned variable in *program*."""
    assigns: list[tuple[str, ast.Expr | None, str]] = []
    for node in ast.walk(program):
        if isinstance(node, ast.Assign):
            assigns.append((node.target, node.value, "assign"))
        elif isinstance(node, ast.Recv):
            assigns.append((node.target, None, "recv"))
        elif isinstance(node, ast.Bcast):
            assigns.append((node.target, None, "recv"))
        elif isinstance(node, ast.For):
            assigns.append((node.var, None, "counter"))

    rank_dep: set[str] = set()
    irregular: set[str] = set()
    changed = True
    while changed:
        changed = False
        for target, value, origin in assigns:
            if origin == "recv":
                if target not in irregular:
                    irregular.add(target)
                    changed = True
                continue
            if origin == "counter":
                continue
            names = _expr_names(value)
            if _mentions_rank(value) or names & rank_dep:
                if target not in rank_dep:
                    rank_dep.add(target)
                    changed = True
            if _mentions_input(value) or names & irregular:
                if target not in irregular:
                    irregular.add(target)
                    changed = True
    return VariableClasses(
        rank_dependent=frozenset(rank_dep), irregular=frozenset(irregular)
    )


def classify_condition(
    expr: ast.Expr, classes: VariableClasses
) -> ConditionClass:
    """Classify a branch condition or endpoint expression.

    Irregularity dominates: a condition mixing ``myrank`` with input
    data cannot be used as a reliable rank attribute, so it is treated
    as irregular (unconstrained) — the conservative choice for matching.
    """
    names = _expr_names(expr)
    if _mentions_input(expr) or names & classes.irregular:
        return ConditionClass.IRREGULAR
    if _mentions_rank(expr) or names & classes.rank_dependent:
        return ConditionClass.ID_DEPENDENT
    return ConditionClass.NEUTRAL


def single_assignments(program: ast.Program) -> dict[str, ast.Expr]:
    """Map of variables assigned exactly once to their defining expression.

    Used by abstract evaluation to inline simple definitions (e.g.
    ``peer = myrank + 1``) when evaluating endpoint expressions.
    Variables also bound by ``recv``/``bcast``/``for`` are excluded.
    """
    counts: dict[str, int] = {}
    defs: dict[str, ast.Expr] = {}
    for node in ast.walk(program):
        if isinstance(node, ast.Assign):
            counts[node.target] = counts.get(node.target, 0) + 1
            defs[node.target] = node.value
        elif isinstance(node, (ast.Recv, ast.Bcast)):
            counts[node.target] = counts.get(node.target, 0) + 2
        elif isinstance(node, ast.For):
            counts[node.var] = counts.get(node.var, 0) + 2
    return {name: expr for name, expr in defs.items() if counts[name] == 1}
