"""Rank-attribute analysis (paper §3.2).

The matching algorithm (Algorithm 3.1) needs three ingredients, all
provided here:

- **ID-dependence dataflow** (:mod:`repro.attributes.dataflow`): which
  variables and branch conditions depend on process IDs, and which are
  *irregular* (input-data dependent).
- **Abstract evaluation** (:mod:`repro.attributes.expressions`): partial
  evaluation of endpoint and condition expressions as functions of
  ``(rank, nprocs)``, with *unknown* for irregular values.
- **Contradiction checking** (:mod:`repro.attributes.contradiction`):
  whether a send's destination attribute and a receive's source
  attribute can simultaneously hold, decided by exhaustive evaluation
  over a finite universe of system sizes. This is sound and complete
  for MiniMP's modular/range rank predicates (which are periodic in
  rank) and stands in for the paper's unspecified dataflow technique.
"""

from repro.attributes.contradiction import Universe, endpoints_compatible
from repro.attributes.dataflow import (
    ConditionClass,
    VariableClasses,
    classify_condition,
    classify_variables,
    single_assignments,
)
from repro.attributes.domain import NodeContext, PathConstraint, node_contexts
from repro.attributes.expressions import abstract_eval

__all__ = [
    "ConditionClass",
    "NodeContext",
    "PathConstraint",
    "Universe",
    "VariableClasses",
    "abstract_eval",
    "classify_condition",
    "classify_variables",
    "endpoints_compatible",
    "node_contexts",
    "single_assignments",
]
