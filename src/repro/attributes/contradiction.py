"""Contradiction checking between send and receive attributes.

Algorithm 3.1 matches a receive node with a send node when the
receive's source attribute and the send's destination attribute "do not
present any contradiction". We decide this by exhaustive evaluation
over a finite *universe* of system sizes: the pair is compatible iff
there exist a size ``n`` and ranks ``p`` (sender) and ``q`` (receiver)
such that

- the sender's path constraints admit ``p`` and the receiver's admit
  ``q``,
- the send's destination evaluates to ``q`` (or is unknown), and
- the receive's source evaluates to ``p`` (or is unknown).

MiniMP rank predicates are built from modular arithmetic and
comparisons against rank-affine expressions, so their truth patterns
over ranks are periodic with small periods; checking all
``n ∈ {2..17}`` (the default universe) decides satisfiability exactly
for every shipped construct while remaining fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attributes.domain import NodeContext
from repro.lang import ast_nodes as ast


@dataclass(frozen=True)
class Universe:
    """The finite set of system sizes used for satisfiability checks."""

    sizes: tuple[int, ...] = tuple(range(2, 18))

    def __post_init__(self) -> None:
        if not self.sizes or min(self.sizes) < 1:
            raise ValueError("universe sizes must be positive and non-empty")


@dataclass(frozen=True)
class MatchWitness:
    """A concrete (n, sender, receiver) triple witnessing compatibility."""

    nprocs: int
    sender: int
    receiver: int


class ContextTable:
    """Precomputed admissibility/endpoint table of one node context.

    Evaluating path constraints and endpoint expressions is the hot
    path of Algorithm 3.1 (each context participates in many pair
    checks), so we evaluate each context once per universe size and
    rank, and pair checks become pure table lookups.
    """

    def __init__(
        self,
        ctx: NodeContext,
        defs: dict[str, ast.Expr] | None,
        universe: Universe = Universe(),
    ) -> None:
        self.ctx = ctx
        # per n: list of (rank, endpoint value or None) for admissible ranks
        self.rows: dict[int, list[tuple[int, int | None]]] = {}
        for nprocs in universe.sizes:
            entries = []
            for rank in range(nprocs):
                if ctx.admits_rank(rank, nprocs, defs):
                    entries.append((rank, ctx.endpoint_value(rank, nprocs, defs)))
            self.rows[nprocs] = entries


def tables_compatible(
    send_table: ContextTable, recv_table: ContextTable
) -> MatchWitness | None:
    """Table-based compatibility check (see :func:`endpoints_compatible`)."""
    for nprocs, send_rows in send_table.rows.items():
        recv_rows = recv_table.rows.get(nprocs, [])
        if not recv_rows:
            continue
        by_receiver = {rank: source for rank, source in recv_rows}
        for sender, dest in send_rows:
            if dest is not None:
                if dest not in by_receiver:
                    continue
                source = by_receiver[dest]
                if source is None or source == sender:
                    return MatchWitness(
                        nprocs=nprocs, sender=sender, receiver=dest
                    )
            else:
                for receiver, source in recv_rows:
                    if source is None or source == sender:
                        return MatchWitness(
                            nprocs=nprocs, sender=sender, receiver=receiver
                        )
    return None


def endpoints_compatible(
    send_ctx: NodeContext,
    recv_ctx: NodeContext,
    defs: dict[str, ast.Expr] | None,
    universe: Universe = Universe(),
) -> MatchWitness | None:
    """Check a send/receive context pair for compatibility.

    Returns a witness if some system size and rank pair realises the
    communication, else ``None`` (the attributes contradict).
    """
    return tables_compatible(
        ContextTable(send_ctx, defs, universe),
        ContextTable(recv_ctx, defs, universe),
    )


@dataclass
class CompatibilityReport:
    """Diagnostic record of every pair considered during matching."""

    considered: list[tuple[int, int]] = field(default_factory=list)
    matched: list[tuple[int, int, MatchWitness]] = field(default_factory=list)
    contradicted: list[tuple[int, int]] = field(default_factory=list)

    def record(
        self, send_id: int, recv_id: int, witness: MatchWitness | None
    ) -> None:
        """Log one considered pair and its match outcome."""
        self.considered.append((send_id, recv_id))
        if witness is None:
            self.contradicted.append((send_id, recv_id))
        else:
            self.matched.append((send_id, recv_id, witness))
