"""Path attributes for CFG nodes.

The paper (§3.2): "every control path in the CFG from [a] branch node is
characterized by an *attribute* that is driven from the condition
expression". We represent a path's attribute at a node as the sequence
of *ID-dependent* branch decisions taken along the path prefix — each a
:class:`PathConstraint` (condition expression + polarity). A
:class:`NodeContext` bundles a send/recv node occurrence on one path
with its constraints and its endpoint expression, ready for
contradiction checking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attributes.dataflow import (
    ConditionClass,
    VariableClasses,
    classify_condition,
)
from repro.attributes.expressions import abstract_eval
from repro.cfg.graph import CFG
from repro.cfg.nodes import CFGNode, NodeKind
from repro.lang import ast_nodes as ast


@dataclass(frozen=True)
class PathConstraint:
    """One ID-dependent branch decision along a path.

    ``polarity`` is True when the path took the branch's "true" edge.
    """

    condition: ast.Expr
    polarity: bool

    def holds(
        self, rank: int, nprocs: int, defs: dict[str, ast.Expr] | None
    ) -> bool | None:
        """Whether this constraint holds for *rank*.

        ``None`` when the condition is statically unknown for this rank
        (then the constraint does not restrict the match).
        """
        value = abstract_eval(self.condition, rank, nprocs, defs)
        if value is None:
            return None
        return bool(value) == self.polarity


@dataclass(frozen=True)
class NodeContext:
    """A send/recv node occurrence on one enumerated path.

    Attributes:
        node_id: The CFG node.
        kind: ``NodeKind.SEND`` or ``NodeKind.RECV``.
        endpoint: The destination (for sends) or source (for receives)
            expression.
        constraints: ID-dependent branch decisions guarding the node on
            this path.
        path_index: Which enumerated path this context came from.
    """

    node_id: int
    kind: NodeKind
    endpoint: ast.Expr
    constraints: tuple[PathConstraint, ...]
    path_index: int

    def admits_rank(
        self, rank: int, nprocs: int, defs: dict[str, ast.Expr] | None
    ) -> bool:
        """True iff a process with *rank* can reach this node occurrence."""
        for constraint in self.constraints:
            if constraint.holds(rank, nprocs, defs) is False:
                return False
        return True

    def endpoint_value(
        self, rank: int, nprocs: int, defs: dict[str, ast.Expr] | None
    ) -> int | None:
        """The endpoint's concrete value for *rank*, or None if unknown."""
        return abstract_eval(self.endpoint, rank, nprocs, defs)


def _edge_label(cfg: CFG, src: int, dst: int) -> str:
    for edge in cfg.out_edges(src):
        if edge.dst == dst:
            return edge.label
    # Synthetic once-through edges (loop tail -> loop exit target) carry
    # no branch decision.
    return ""


def _endpoint_of(node: CFGNode) -> ast.Expr:
    stmt = node.stmt
    if isinstance(stmt, ast.Send):
        return stmt.dest
    if isinstance(stmt, ast.Recv):
        return stmt.source
    if isinstance(stmt, ast.Bcast):
        return stmt.root
    raise TypeError(f"node {node!r} has no endpoint expression")


def node_contexts(
    cfg: CFG,
    paths: list[tuple[int, ...]],
    classes: VariableClasses,
) -> list[NodeContext]:
    """Compute the per-path contexts of every send/recv node.

    For each enumerated path and each send/recv occurrence on it, the
    context captures the ID-dependent branch decisions of the path
    prefix. Non-ID-dependent branches are skipped per the paper
    ("without loss of generality, we assume that all the branch nodes
    are ID-dependent"); irregular conditions are also skipped because
    they cannot constrain ranks.
    """
    contexts: list[NodeContext] = []
    for path_index, path in enumerate(paths):
        constraints: list[PathConstraint] = []
        for position, node_id in enumerate(path):
            node = cfg.node(node_id)
            if node.kind in (NodeKind.SEND, NodeKind.RECV):
                contexts.append(
                    NodeContext(
                        node_id=node_id,
                        kind=node.kind,
                        endpoint=_endpoint_of(node),
                        constraints=tuple(constraints),
                        path_index=path_index,
                    )
                )
            if node.kind is NodeKind.BRANCH and position + 1 < len(path):
                cond = _branch_condition(node)
                if cond is None:
                    continue
                if classify_condition(cond, classes) is not ConditionClass.ID_DEPENDENT:
                    continue
                label = _edge_label(cfg, node_id, path[position + 1])
                if label == "true":
                    constraints.append(PathConstraint(cond, True))
                elif label == "false":
                    constraints.append(PathConstraint(cond, False))
    return contexts


def _branch_condition(node: CFGNode) -> ast.Expr | None:
    stmt = node.stmt
    if isinstance(stmt, (ast.If, ast.While)):
        return stmt.cond
    if isinstance(stmt, ast.Bcast):
        # The lowered bcast branch tests `myrank == root`.
        return ast.BinOp(op="==", left=ast.MyRank(), right=stmt.root)
    # `for` headers iterate a counter; never ID-dependent.
    return None
