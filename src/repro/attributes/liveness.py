"""Per-checkpoint live-variable analysis over the CFG.

Checkpoint-content minimization (the AutoCheck idea, arXiv 2408.06082)
needs to know, for every placed checkpoint statement, which variables a
restore could still *read*: a variable is **live-out** at a checkpoint
when some path from the checkpoint reaches a use of it before any
redefinition. Everything else is provably dead at that checkpoint —
restoring an arbitrary (deterministic) value for it cannot change any
later read, message, branch, or the final environment — so snapshots
may exclude it.

This is the classic backward may-liveness dataflow, run over the same
CFG the transformation phases use (:mod:`repro.cfg.builder`), with one
deliberately conservative convention: **the exit node uses every
variable**. The simulator observes the complete final environment of
every process (``SimulationResult.final_env``), so a variable is dead
at a checkpoint only when it is *rewritten* before any read on every
path to exit — never merely because nobody reads it again. This is
what keeps pruned runs byte-identical to full runs.

Other conservative choices (each can only enlarge live sets, never
shrink them below the truth):

- ``for`` headers are not treated as defining their loop counter (the
  definition happens only on the loop-entry edge; the exit edge leaves
  the last value observable);
- both arms of a lowered ``bcast`` define the target (the root arm
  assigns it locally before the collective send; receivers bind it at
  delivery), and both use the root expression;
- variables never mentioned in the program text (e.g. unused run-time
  parameters) are outside the analysis universe and are never pruned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.builder import build_cfg
from repro.cfg.nodes import NodeKind
from repro.lang import ast_nodes as ast

_EMPTY: frozenset[str] = frozenset()


def _expr_names(expr: ast.Expr | None) -> frozenset[str]:
    if expr is None:
        return _EMPTY
    return frozenset(
        node.ident for node in ast.walk(expr) if isinstance(node, ast.Name)
    )


def program_variables(program: ast.Program) -> frozenset[str]:
    """Every variable name the program can bind or read.

    The analysis universe: assignment/receive/broadcast targets, loop
    counters, and every ``Name`` reference. Run-time parameters that the
    program never mentions are deliberately absent — they cannot be
    proven dead by looking at the program, so pruning must not touch
    them.
    """
    names: set[str] = set()
    for node in ast.walk(program):
        if isinstance(node, ast.Name):
            names.add(node.ident)
        elif isinstance(node, (ast.Assign, ast.Recv, ast.Bcast)):
            names.add(node.target)
        elif isinstance(node, ast.For):
            names.add(node.var)
    return frozenset(names)


def _node_use_def(node) -> tuple[frozenset[str], frozenset[str]]:
    """``(use, def)`` variable sets of one CFG node."""
    stmt = node.stmt
    kind = node.kind
    if kind is NodeKind.COMPUTE:
        if isinstance(stmt, ast.Assign):
            return _expr_names(stmt.value), frozenset((stmt.target,))
        if isinstance(stmt, ast.Compute):
            return _expr_names(stmt.cost), _EMPTY
        return _EMPTY, _EMPTY  # pass
    if kind is NodeKind.SEND:
        if isinstance(stmt, ast.Bcast):
            # Collective send (root arm): evaluates root and value, then
            # assigns the target locally before fanning out.
            return (
                _expr_names(stmt.root) | _expr_names(stmt.value),
                frozenset((stmt.target,)),
            )
        return _expr_names(stmt.dest) | _expr_names(stmt.value), _EMPTY
    if kind is NodeKind.RECV:
        if isinstance(stmt, ast.Bcast):
            return _expr_names(stmt.root), frozenset((stmt.target,))
        return _expr_names(stmt.source), frozenset((stmt.target,))
    if kind is NodeKind.BRANCH:
        if isinstance(stmt, (ast.If, ast.While)):
            return _expr_names(stmt.cond), _EMPTY
        if isinstance(stmt, ast.For):
            # Conservative: the counter definition lives on the loop
            # entry edge only, so the header defines nothing.
            return _expr_names(stmt.count), _EMPTY
        if isinstance(stmt, ast.Bcast):
            return _expr_names(stmt.root), _EMPTY
        return _EMPTY, _EMPTY
    # ENTRY / EXIT / JOIN / CHECKPOINT carry no uses or defs themselves
    # (the exit node's universe-wide use is applied by the solver).
    return _EMPTY, _EMPTY


@dataclass(frozen=True)
class LivenessResult:
    """Per-checkpoint liveness facts for one program.

    Attributes:
        variables: The analysis universe (see :func:`program_variables`).
        live_out: Checkpoint statement ``node_id`` → variables that may
            still be read after the checkpoint before redefinition.
        dead: Checkpoint statement ``node_id`` → the complement within
            ``variables`` — provably rewritten before any read on every
            path to exit, hence safe to exclude from the snapshot.
    """

    variables: frozenset[str]
    live_out: dict[int, frozenset[str]] = field(default_factory=dict)
    dead: dict[int, frozenset[str]] = field(default_factory=dict)


def checkpoint_liveness(program: ast.Program) -> LivenessResult:
    """Backward may-liveness; returns per-checkpoint live/dead sets."""
    cfg = build_cfg(program)
    universe = program_variables(program)

    use: dict[int, frozenset[str]] = {}
    defs: dict[int, frozenset[str]] = {}
    for node in cfg.nodes():
        use[node.node_id], defs[node.node_id] = _node_use_def(node)
    # The simulator observes the whole final environment, so exit is a
    # use of everything (the pruning-safety convention, see module doc).
    if cfg.exit_id is not None:
        use[cfg.exit_id] = universe

    node_ids = [node.node_id for node in cfg.nodes()]
    live_in: dict[int, frozenset[str]] = {nid: _EMPTY for nid in node_ids}
    live_out: dict[int, frozenset[str]] = {nid: _EMPTY for nid in node_ids}
    # Round-robin fixpoint, reverse insertion order (roughly reverse
    # topological for the builder's numbering) for fast convergence.
    changed = True
    while changed:
        changed = False
        for nid in reversed(node_ids):
            out: frozenset[str] = _EMPTY
            for succ in cfg.successors(nid):
                out = out | live_in[succ]
            new_in = use[nid] | (out - defs[nid])
            if out != live_out[nid]:
                live_out[nid] = out
                changed = True
            if new_in != live_in[nid]:
                live_in[nid] = new_in
                changed = True

    per_checkpoint: dict[int, frozenset[str]] = {}
    for node in cfg.checkpoint_nodes():
        stmt = node.stmt
        if stmt is None:
            continue
        # Union across nodes sharing a statement (defensive: the builder
        # emits one node per checkpoint statement today).
        prior = per_checkpoint.get(stmt.node_id, _EMPTY)
        per_checkpoint[stmt.node_id] = prior | live_out[node.node_id]

    dead = {
        stmt_id: universe - live
        for stmt_id, live in per_checkpoint.items()
    }
    return LivenessResult(
        variables=universe, live_out=per_checkpoint, dead=dead
    )


def checkpoint_dead_sets(program: ast.Program) -> dict[int, frozenset[str]]:
    """Shorthand: checkpoint statement ``node_id`` → dead-variable set."""
    return checkpoint_liveness(program).dead
