"""Graphviz DOT export for CFGs and extended CFGs.

Purely a debugging/documentation aid: renders the graphs the paper
draws in Figures 1–6. Message edges are dashed, backward edges are
marked, checkpoint nodes are doubly circled.
"""

from __future__ import annotations

from repro.cfg.dominators import find_back_edges
from repro.cfg.graph import CFG, ExtendedCFG
from repro.cfg.nodes import NodeKind

_SHAPES = {
    NodeKind.ENTRY: "oval",
    NodeKind.EXIT: "oval",
    NodeKind.BRANCH: "diamond",
    NodeKind.JOIN: "point",
    NodeKind.SEND: "box",
    NodeKind.RECV: "box",
    NodeKind.CHECKPOINT: "doublecircle",
    NodeKind.COMPUTE: "box",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(graph: CFG | ExtendedCFG, name: str = "cfg") -> str:
    """Render *graph* as Graphviz DOT text."""
    if isinstance(graph, ExtendedCFG):
        cfg = graph.cfg
        message_edges = graph.message_edges
    else:
        cfg = graph
        message_edges = []
    back = {(e.src, e.dst) for e in find_back_edges(cfg)}
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for node in cfg.nodes():
        label = node.label or node.kind.value
        shape = _SHAPES[node.kind]
        lines.append(
            f'  n{node.node_id} [label="{_escape(label)}", shape={shape}];'
        )
    for edge in cfg.edges():
        attrs = []
        if edge.label:
            attrs.append(f'label="{_escape(edge.label)}"')
        if (edge.src, edge.dst) in back:
            attrs.append('style=bold, color=gray40, label="back"')
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  n{edge.src} -> n{edge.dst}{attr_text};")
    for msg in message_edges:
        lines.append(
            f'  n{msg.send_id} -> n{msg.recv_id} '
            f'[style=dashed, color=blue, label="msg"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
