"""The CFG and extended-CFG data structures.

:class:`CFG` is a directed graph of :class:`~repro.cfg.nodes.CFGNode`
objects with labelled edges (branch edges carry ``"true"``/``"false"``).
:class:`ExtendedCFG` wraps a CFG together with its *message edges* — the
send→recv matches computed by Phase II (paper §3.2) — and answers the
path queries Phase III needs over the union of both edge sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.cfg.nodes import CFGNode, NodeKind
from repro.errors import CFGError


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge with an optional label."""

    src: int
    dst: int
    label: str = ""

    def __iter__(self) -> Iterator[int]:
        return iter((self.src, self.dst))


class CFG:
    """A control-flow graph.

    Nodes are identified by small integer ids assigned at insertion.
    The graph always has exactly one ``ENTRY`` and one ``EXIT`` node,
    created by the builder.
    """

    def __init__(self) -> None:
        self._nodes: dict[int, CFGNode] = {}
        self._succ: dict[int, list[Edge]] = {}
        self._pred: dict[int, list[Edge]] = {}
        self._next_id = 0
        self.entry_id: int | None = None
        self.exit_id: int | None = None

    # -- construction --------------------------------------------------------

    def add_node(
        self,
        kind: NodeKind,
        stmt=None,
        label: str = "",
        is_loop_header: bool = False,
        collective: bool = False,
    ) -> CFGNode:
        """Create and register a new node; returns it."""
        node = CFGNode(
            node_id=self._next_id,
            kind=kind,
            stmt=stmt,
            label=label,
            is_loop_header=is_loop_header,
            collective=collective,
        )
        self._nodes[node.node_id] = node
        self._succ[node.node_id] = []
        self._pred[node.node_id] = []
        self._next_id += 1
        if kind is NodeKind.ENTRY:
            if self.entry_id is not None:
                raise CFGError("CFG already has an entry node")
            self.entry_id = node.node_id
        elif kind is NodeKind.EXIT:
            if self.exit_id is not None:
                raise CFGError("CFG already has an exit node")
            self.exit_id = node.node_id
        return node

    def add_edge(self, src: int, dst: int, label: str = "") -> Edge:
        """Add a directed edge ``src -> dst``."""
        if src not in self._nodes or dst not in self._nodes:
            raise CFGError(f"edge endpoints must exist: {src} -> {dst}")
        edge = Edge(src, dst, label)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    # -- queries --------------------------------------------------------------

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def entry(self) -> CFGNode:
        """The unique entry node."""
        if self.entry_id is None:
            raise CFGError("CFG has no entry node")
        return self._nodes[self.entry_id]

    @property
    def exit(self) -> CFGNode:
        """The unique exit node."""
        if self.exit_id is None:
            raise CFGError("CFG has no exit node")
        return self._nodes[self.exit_id]

    def node(self, node_id: int) -> CFGNode:
        """Return the node with *node_id*."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise CFGError(f"unknown node id {node_id}") from None

    def nodes(self) -> Iterator[CFGNode]:
        """Iterate over all nodes in insertion order."""
        return iter(self._nodes.values())

    def nodes_of_kind(self, kind: NodeKind) -> list[CFGNode]:
        """All nodes of the given *kind*, in insertion order."""
        return [n for n in self._nodes.values() if n.kind is kind]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        for edges in self._succ.values():
            yield from edges

    def successors(self, node_id: int) -> list[int]:
        """Successor node ids of *node_id*, in edge-insertion order."""
        return [e.dst for e in self._succ[node_id]]

    def predecessors(self, node_id: int) -> list[int]:
        """Predecessor node ids of *node_id*."""
        return [e.src for e in self._pred[node_id]]

    def out_edges(self, node_id: int) -> list[Edge]:
        """Outgoing edges of *node_id*."""
        return list(self._succ[node_id])

    def in_edges(self, node_id: int) -> list[Edge]:
        """Incoming edges of *node_id*."""
        return list(self._pred[node_id])

    def checkpoint_nodes(self) -> list[CFGNode]:
        """All checkpoint nodes."""
        return self.nodes_of_kind(NodeKind.CHECKPOINT)

    def send_nodes(self) -> list[CFGNode]:
        """All send nodes."""
        return self.nodes_of_kind(NodeKind.SEND)

    def recv_nodes(self) -> list[CFGNode]:
        """All receive nodes."""
        return self.nodes_of_kind(NodeKind.RECV)


@dataclass
class MessageEdge:
    """A matched send→recv pair in the extended CFG (paper §3.2)."""

    send_id: int
    recv_id: int
    reason: str = ""


@dataclass
class ExtendedCFG:
    """A CFG plus the message edges produced by Phase II.

    Paths in the extended CFG traverse both control edges and message
    edges; :meth:`find_path` optionally excludes the CFG's backward
    edges so Phase III can distinguish same-iteration paths from paths
    that wrap around a loop (the Figure 6 subtlety).
    """

    cfg: CFG
    message_edges: list[MessageEdge] = field(default_factory=list)

    def add_message_edge(self, send_id: int, recv_id: int, reason: str = "") -> None:
        """Register a matched send→recv pair (idempotent)."""
        send = self.cfg.node(send_id)
        recv = self.cfg.node(recv_id)
        if send.kind is not NodeKind.SEND:
            raise CFGError(f"message edge source must be a send node: {send!r}")
        if recv.kind is not NodeKind.RECV:
            raise CFGError(f"message edge target must be a recv node: {recv!r}")
        if not any(
            m.send_id == send_id and m.recv_id == recv_id for m in self.message_edges
        ):
            self.message_edges.append(MessageEdge(send_id, recv_id, reason))

    def matches_for_recv(self, recv_id: int) -> list[int]:
        """Send node ids matched with the receive node *recv_id*."""
        return [m.send_id for m in self.message_edges if m.recv_id == recv_id]

    def matches_for_send(self, send_id: int) -> list[int]:
        """Receive node ids matched with the send node *send_id*."""
        return [m.recv_id for m in self.message_edges if m.send_id == send_id]

    def successors(
        self, node_id: int, excluded_edges: frozenset[tuple[int, int]] = frozenset()
    ) -> list[int]:
        """Successors through control *and* message edges.

        *excluded_edges* removes specific control edges (used to ignore
        backward edges); message edges are never excluded.
        """
        result = [
            e.dst
            for e in self.cfg.out_edges(node_id)
            if (e.src, e.dst) not in excluded_edges
        ]
        result.extend(
            m.recv_id for m in self.message_edges if m.send_id == node_id
        )
        return result

    def find_path(
        self,
        src: int,
        dst: int,
        exclude_back_edges: Iterable[tuple[int, int]] = (),
    ) -> list[int] | None:
        """Return a node-id path ``src -> ... -> dst`` in the extended
        CFG, or ``None`` if *dst* is unreachable from *src*.

        The search is an iterative DFS over control plus message edges.
        ``exclude_back_edges`` removes the given control edges from the
        graph before searching.
        """
        excluded = frozenset(exclude_back_edges)
        if src == dst:
            # A non-trivial path from a node to itself requires at least
            # one step; handle by searching from successors.
            for nxt in self.successors(src, excluded):
                sub = self.find_path(nxt, dst, excluded)
                if sub is not None:
                    return [src, *sub]
            return None
        parent: dict[int, int] = {src: src}
        stack = [src]
        while stack:
            current = stack.pop()
            for nxt in self.successors(current, excluded):
                if nxt in parent:
                    continue
                parent[nxt] = current
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                stack.append(nxt)
        return None
