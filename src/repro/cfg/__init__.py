"""Control-flow graphs for MiniMP programs.

This package implements the paper's Section 2 graph machinery: CFG
construction from the AST (with explicit ``send``/``recv``/``checkpoint``
nodes, entry/exit nodes, branch and join nodes), dominator computation,
backward-edge and natural-loop identification, and the path queries that
Phases II and III rely on. The *extended* CFG (CFG plus message edges)
is :class:`~repro.cfg.graph.ExtendedCFG`.
"""

from repro.cfg.builder import build_cfg
from repro.cfg.dominators import compute_dominators, find_back_edges, natural_loops
from repro.cfg.dot import to_dot
from repro.cfg.graph import CFG, Edge, ExtendedCFG
from repro.cfg.nodes import CFGNode, NodeKind
from repro.cfg.paths import (
    CheckpointEnumeration,
    CheckpointIndexing,
    acyclic_paths,
    checkpoint_columns,
    enumerate_checkpoints,
    find_path,
    index_checkpoints,
    reachable_from,
)

__all__ = [
    "CFG",
    "CFGNode",
    "CheckpointEnumeration",
    "CheckpointIndexing",
    "Edge",
    "ExtendedCFG",
    "NodeKind",
    "acyclic_paths",
    "build_cfg",
    "checkpoint_columns",
    "compute_dominators",
    "enumerate_checkpoints",
    "find_back_edges",
    "find_path",
    "index_checkpoints",
    "natural_loops",
    "reachable_from",
    "to_dot",
]
