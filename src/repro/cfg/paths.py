"""Path queries over CFGs.

Phase III enumerates the checkpoint nodes "along every path from the
entry node to the exit node" (paper §2): the *i*-th checkpoint node on
path γ is ``C_i^γ`` and ``S_i`` collects the ``C_i`` of every path. A
"path" here traverses each loop body at most once — i.e. the acyclic
paths of the DAG obtained by removing backward edges — matching the
paper's convention that a checkpoint statement inside a loop keeps the
same index on every iteration.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.cfg.graph import CFG
from repro.cfg.nodes import NodeKind
from repro.errors import CFGError

#: Safety cap on explicit path enumeration. The Condition 1 decision
#: procedure no longer enumerates paths (see :func:`index_checkpoints`),
#: so the cap only guards witness/reporting paths and Phase II context
#: enumeration; it was raised accordingly and passing ``limit=`` to the
#: checkpoint decision entry points is deprecated.
DEFAULT_PATH_LIMIT = 100_000


def reachable_from(cfg: CFG, start: int) -> frozenset[int]:
    """All node ids reachable from *start* (inclusive) via control edges."""
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for nxt in cfg.successors(current):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(seen)


def find_path(cfg: CFG, src: int, dst: int) -> list[int] | None:
    """A control-edge path from *src* to *dst*, or None."""
    parent = {src: src}
    stack = [src]
    while stack:
        current = stack.pop()
        if current == dst:
            path = [dst]
            while path[-1] != src:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for nxt in cfg.successors(current):
            if nxt not in parent:
                parent[nxt] = current
                stack.append(nxt)
    return None


def once_through_successors(cfg: CFG) -> dict[int, list[int]]:
    """Successor map of the *once-through* DAG of *cfg*.

    The paper enumerates checkpoints "along every path from entry to
    exit", where a path traverses each loop body exactly once (a
    checkpoint inside a loop keeps the same index on every iteration,
    and the zero-trip path would make every loop program unbalanced).
    The once-through DAG realises that convention:

    - each backward edge ``tail -> header`` is removed and replaced by
      edges ``tail -> s`` for every loop-exit successor ``s`` of the
      header, and
    - the header's own loop-exit edges are removed, so the only way past
      a loop header is through its body.
    """
    from repro.cfg.dominators import natural_loops

    loops = natural_loops(cfg)
    succ: dict[int, list[int]] = {
        node.node_id: list(cfg.successors(node.node_id)) for node in cfg.nodes()
    }
    # Collect, per loop header, the union of its loops' bodies (a header
    # with several back edges has several natural loops; merge them).
    header_body: dict[int, set[int]] = {}
    header_tails: dict[int, list[int]] = {}
    for edge, body in loops.items():
        header_body.setdefault(edge.dst, set()).update(body)
        header_tails.setdefault(edge.dst, []).append(edge.src)
    for header, body in header_body.items():
        exit_targets = [s for s in cfg.successors(header) if s not in body]
        succ[header] = [s for s in cfg.successors(header) if s in body]
        for tail in header_tails[header]:
            succ[tail] = [s for s in succ[tail] if s != header]
            succ[tail].extend(exit_targets)
    return succ


def acyclic_paths(
    cfg: CFG, limit: int = DEFAULT_PATH_LIMIT
) -> list[tuple[int, ...]]:
    """All entry→exit paths of the once-through DAG (see
    :func:`once_through_successors`).

    Raises :class:`~repro.errors.CFGError` if the number of paths
    exceeds *limit* (a guard against combinatorial explosion on deeply
    branching programs).
    """
    if cfg.entry_id is None or cfg.exit_id is None:
        raise CFGError("CFG must have entry and exit nodes")
    succ = once_through_successors(cfg)
    paths: list[tuple[int, ...]] = []
    stack: list[tuple[int, tuple[int, ...]]] = [(cfg.entry_id, (cfg.entry_id,))]
    while stack:
        current, path = stack.pop()
        if current == cfg.exit_id:
            paths.append(path)
            if len(paths) > limit:
                raise CFGError(f"more than {limit} entry-exit paths")
            continue
        for nxt in succ[current]:
            if nxt in path:
                # Defensive: the once-through DAG should be acyclic, but
                # guard against pathological graphs.
                continue
            stack.append((nxt, path + (nxt,)))
    return paths


@dataclass(frozen=True)
class CheckpointEnumeration:
    """Result of enumerating checkpoint nodes along every path.

    Attributes:
        paths: Every acyclic entry→exit path.
        per_path: For each path, the tuple of checkpoint node ids in
            path order (so ``per_path[k][i-1]`` is ``C_i`` on path k).
        columns: ``columns[i]`` is the paper's ``S_{i+1}``: the set of
            node ids appearing as the (i+1)-th checkpoint on some path.
        balanced: True iff every path has the same number of checkpoint
            nodes (the precondition Phase I establishes).
    """

    paths: tuple[tuple[int, ...], ...]
    per_path: tuple[tuple[int, ...], ...]
    columns: tuple[frozenset[int], ...]
    balanced: bool

    @property
    def depth(self) -> int:
        """The common number of checkpoints per path (0 if unbalanced)."""
        return len(self.columns)


def enumerate_checkpoints(
    cfg: CFG, limit: int | None = None
) -> CheckpointEnumeration:
    """Enumerate ``C_i^γ`` along every acyclic path (paper §2).

    This is the explicit (exponential) enumeration; the decision
    procedure uses :func:`index_checkpoints` instead and only falls back
    here for human-readable reports. Passing ``limit=`` is deprecated:
    the decision procedure needs no path cap any more.
    """
    if limit is not None:
        warnings.warn(
            "passing limit= to enumerate_checkpoints is deprecated; the "
            "Condition 1 decision procedure uses index_checkpoints and "
            "needs no path cap",
            DeprecationWarning,
            stacklevel=2,
        )
    paths = acyclic_paths(cfg, limit=DEFAULT_PATH_LIMIT if limit is None else limit)
    per_path: list[tuple[int, ...]] = []
    for path in paths:
        checkpoints = tuple(
            node_id
            for node_id in path
            if cfg.node(node_id).kind is NodeKind.CHECKPOINT
        )
        per_path.append(checkpoints)
    counts = {len(seq) for seq in per_path}
    balanced = len(counts) <= 1
    depth = min(counts) if counts else 0
    columns = tuple(
        frozenset(seq[i] for seq in per_path if len(seq) > i) for i in range(depth)
    )
    return CheckpointEnumeration(
        paths=tuple(paths),
        per_path=tuple(per_path),
        columns=columns,
        balanced=balanced,
    )


def checkpoint_columns(
    cfg: CFG, limit: int | None = None
) -> tuple[frozenset[int], ...]:
    """Shorthand: the ``S_i`` collections of *cfg* (1-indexed as i-1)."""
    if limit is not None:
        warnings.warn(
            "passing limit= to checkpoint_columns is deprecated; the "
            "Condition 1 decision procedure uses index_checkpoints and "
            "needs no path cap",
            DeprecationWarning,
            stacklevel=2,
        )
    return index_checkpoints(cfg).columns


@dataclass(frozen=True)
class CheckpointIndexing:
    """The ``S_i`` collections computed *without* path enumeration.

    Produced by :func:`index_checkpoints` via a bitset dynamic program
    over the once-through DAG; agrees exactly with
    :func:`enumerate_checkpoints` on ``columns``/``balanced``/``depth``
    but runs in O(V·E/64) instead of exponential time. ``path_counts``
    is the sorted set of distinct per-path checkpoint counts (a single
    element iff ``balanced``) — exactly
    ``sorted({len(seq) for seq in enumeration.per_path})``.
    """

    columns: tuple[frozenset[int], ...]
    path_counts: tuple[int, ...]
    balanced: bool

    @property
    def depth(self) -> int:
        """The common number of checkpoints per path (min if unbalanced)."""
        return len(self.columns)


def index_checkpoints(cfg: CFG) -> CheckpointIndexing:
    """Compute the ``S_i`` collections by bitset DP (no enumeration).

    For every node ``v`` of the once-through DAG (processed in
    topological order) the DP maintains an integer bitmask whose bit
    ``k`` is set iff some entry→``v`` path passes exactly ``k``
    checkpoint nodes strictly before ``v``. A checkpoint node with bit
    ``k`` set that also reaches the exit is therefore the ``(k+1)``-th
    checkpoint of some complete path — i.e. a member of ``S_{k+1}`` —
    and the exit node's mask enumerates the per-path checkpoint counts,
    so balance is a popcount check. Exact, not an approximation: on a
    DAG every entry→``v`` prefix extends to a complete path through any
    ``v``→exit suffix.
    """
    if cfg.entry_id is None or cfg.exit_id is None:
        raise CFGError("CFG must have entry and exit nodes")
    succ = once_through_successors(cfg)

    # Restrict to nodes reachable from the entry.
    reachable: set[int] = {cfg.entry_id}
    stack = [cfg.entry_id]
    while stack:
        current = stack.pop()
        for nxt in succ[current]:
            if nxt not in reachable:
                reachable.add(nxt)
                stack.append(nxt)

    # Nodes that reach the exit (reverse reachability).
    pred: dict[int, list[int]] = {node_id: [] for node_id in reachable}
    for node_id in reachable:
        for nxt in succ[node_id]:
            if nxt in reachable:
                pred[nxt].append(node_id)
    reaches_exit: set[int] = set()
    if cfg.exit_id in reachable:
        reaches_exit.add(cfg.exit_id)
        stack = [cfg.exit_id]
        while stack:
            current = stack.pop()
            for prv in pred[current]:
                if prv not in reaches_exit:
                    reaches_exit.add(prv)
                    stack.append(prv)

    # Kahn topological order over the reachable once-through subgraph.
    indegree = {node_id: 0 for node_id in reachable}
    for node_id in reachable:
        for nxt in succ[node_id]:
            if nxt in reachable:
                indegree[nxt] += 1
    frontier = [n for n, d in indegree.items() if d == 0]
    order: list[int] = []
    while frontier:
        current = frontier.pop()
        order.append(current)
        for nxt in succ[current]:
            if nxt in reachable:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    frontier.append(nxt)
    if len(order) != len(reachable):
        # Pathological: the once-through graph has a residual cycle.
        # Fall back to the explicit enumeration, which skips repeated
        # nodes defensively, so both procedures agree by construction.
        enumeration = enumerate_checkpoints(cfg)
        return CheckpointIndexing(
            columns=enumeration.columns,
            path_counts=tuple(
                sorted({len(seq) for seq in enumeration.per_path})
            ),
            balanced=enumeration.balanced,
        )

    is_checkpoint = {
        node_id: cfg.node(node_id).kind is NodeKind.CHECKPOINT
        for node_id in reachable
    }
    mask: dict[int, int] = {node_id: 0 for node_id in reachable}
    mask[cfg.entry_id] = 1
    for node_id in order:
        incoming = mask[node_id]
        if not incoming:
            continue
        outgoing = incoming << 1 if is_checkpoint[node_id] else incoming
        for nxt in succ[node_id]:
            if nxt in reachable:
                mask[nxt] |= outgoing

    exit_mask = mask.get(cfg.exit_id, 0)
    path_counts = tuple(_bit_positions(exit_mask))
    balanced = len(path_counts) <= 1
    depth = path_counts[0] if path_counts else 0
    columns_builder: list[set[int]] = [set() for _ in range(depth)]
    for node_id in reachable:
        if not is_checkpoint[node_id] or node_id not in reaches_exit:
            continue
        node_mask = mask[node_id]
        for i in range(depth):
            if node_mask >> i & 1:
                columns_builder[i].add(node_id)
    return CheckpointIndexing(
        columns=tuple(frozenset(column) for column in columns_builder),
        path_counts=path_counts,
        balanced=balanced,
    )


def _bit_positions(value: int) -> list[int]:
    """The indices of the set bits of *value*, ascending."""
    positions: list[int] = []
    index = 0
    while value:
        if value & 1:
            positions.append(index)
        value >>= 1
        index += 1
    return positions
