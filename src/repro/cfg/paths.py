"""Path queries over CFGs.

Phase III enumerates the checkpoint nodes "along every path from the
entry node to the exit node" (paper §2): the *i*-th checkpoint node on
path γ is ``C_i^γ`` and ``S_i`` collects the ``C_i`` of every path. A
"path" here traverses each loop body at most once — i.e. the acyclic
paths of the DAG obtained by removing backward edges — matching the
paper's convention that a checkpoint statement inside a loop keeps the
same index on every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.graph import CFG
from repro.cfg.nodes import NodeKind
from repro.errors import CFGError

DEFAULT_PATH_LIMIT = 10_000


def reachable_from(cfg: CFG, start: int) -> frozenset[int]:
    """All node ids reachable from *start* (inclusive) via control edges."""
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for nxt in cfg.successors(current):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(seen)


def find_path(cfg: CFG, src: int, dst: int) -> list[int] | None:
    """A control-edge path from *src* to *dst*, or None."""
    parent = {src: src}
    stack = [src]
    while stack:
        current = stack.pop()
        if current == dst:
            path = [dst]
            while path[-1] != src:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for nxt in cfg.successors(current):
            if nxt not in parent:
                parent[nxt] = current
                stack.append(nxt)
    return None


def once_through_successors(cfg: CFG) -> dict[int, list[int]]:
    """Successor map of the *once-through* DAG of *cfg*.

    The paper enumerates checkpoints "along every path from entry to
    exit", where a path traverses each loop body exactly once (a
    checkpoint inside a loop keeps the same index on every iteration,
    and the zero-trip path would make every loop program unbalanced).
    The once-through DAG realises that convention:

    - each backward edge ``tail -> header`` is removed and replaced by
      edges ``tail -> s`` for every loop-exit successor ``s`` of the
      header, and
    - the header's own loop-exit edges are removed, so the only way past
      a loop header is through its body.
    """
    from repro.cfg.dominators import natural_loops

    loops = natural_loops(cfg)
    succ: dict[int, list[int]] = {
        node.node_id: list(cfg.successors(node.node_id)) for node in cfg.nodes()
    }
    # Collect, per loop header, the union of its loops' bodies (a header
    # with several back edges has several natural loops; merge them).
    header_body: dict[int, set[int]] = {}
    header_tails: dict[int, list[int]] = {}
    for edge, body in loops.items():
        header_body.setdefault(edge.dst, set()).update(body)
        header_tails.setdefault(edge.dst, []).append(edge.src)
    for header, body in header_body.items():
        exit_targets = [s for s in cfg.successors(header) if s not in body]
        succ[header] = [s for s in cfg.successors(header) if s in body]
        for tail in header_tails[header]:
            succ[tail] = [s for s in succ[tail] if s != header]
            succ[tail].extend(exit_targets)
    return succ


def acyclic_paths(
    cfg: CFG, limit: int = DEFAULT_PATH_LIMIT
) -> list[tuple[int, ...]]:
    """All entry→exit paths of the once-through DAG (see
    :func:`once_through_successors`).

    Raises :class:`~repro.errors.CFGError` if the number of paths
    exceeds *limit* (a guard against combinatorial explosion on deeply
    branching programs).
    """
    if cfg.entry_id is None or cfg.exit_id is None:
        raise CFGError("CFG must have entry and exit nodes")
    succ = once_through_successors(cfg)
    paths: list[tuple[int, ...]] = []
    stack: list[tuple[int, tuple[int, ...]]] = [(cfg.entry_id, (cfg.entry_id,))]
    while stack:
        current, path = stack.pop()
        if current == cfg.exit_id:
            paths.append(path)
            if len(paths) > limit:
                raise CFGError(f"more than {limit} entry-exit paths")
            continue
        for nxt in succ[current]:
            if nxt in path:
                # Defensive: the once-through DAG should be acyclic, but
                # guard against pathological graphs.
                continue
            stack.append((nxt, path + (nxt,)))
    return paths


@dataclass(frozen=True)
class CheckpointEnumeration:
    """Result of enumerating checkpoint nodes along every path.

    Attributes:
        paths: Every acyclic entry→exit path.
        per_path: For each path, the tuple of checkpoint node ids in
            path order (so ``per_path[k][i-1]`` is ``C_i`` on path k).
        columns: ``columns[i]`` is the paper's ``S_{i+1}``: the set of
            node ids appearing as the (i+1)-th checkpoint on some path.
        balanced: True iff every path has the same number of checkpoint
            nodes (the precondition Phase I establishes).
    """

    paths: tuple[tuple[int, ...], ...]
    per_path: tuple[tuple[int, ...], ...]
    columns: tuple[frozenset[int], ...]
    balanced: bool

    @property
    def depth(self) -> int:
        """The common number of checkpoints per path (0 if unbalanced)."""
        return len(self.columns)


def enumerate_checkpoints(
    cfg: CFG, limit: int = DEFAULT_PATH_LIMIT
) -> CheckpointEnumeration:
    """Enumerate ``C_i^γ`` along every acyclic path (paper §2)."""
    paths = acyclic_paths(cfg, limit=limit)
    per_path: list[tuple[int, ...]] = []
    for path in paths:
        checkpoints = tuple(
            node_id
            for node_id in path
            if cfg.node(node_id).kind is NodeKind.CHECKPOINT
        )
        per_path.append(checkpoints)
    counts = {len(seq) for seq in per_path}
    balanced = len(counts) <= 1
    depth = min(counts) if counts else 0
    columns = tuple(
        frozenset(seq[i] for seq in per_path if len(seq) > i) for i in range(depth)
    )
    return CheckpointEnumeration(
        paths=tuple(paths),
        per_path=tuple(per_path),
        columns=columns,
        balanced=balanced,
    )


def checkpoint_columns(cfg: CFG) -> tuple[frozenset[int], ...]:
    """Shorthand: the ``S_i`` collections of *cfg* (1-indexed as i-1)."""
    return enumerate_checkpoints(cfg).columns
