"""CFG node types.

The paper's CFGs contain nodes for loops and conditions plus explicit
``send``, ``receive``, and ``checkpoint`` statement nodes, and the two
synthetic ``entry``/``exit`` nodes (Section 2). We add ``JOIN`` nodes at
control-flow merges and a generic ``COMPUTE`` node for local statements
(assignments and ``compute``), which the analyses treat as opaque.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast


class NodeKind(enum.Enum):
    """The kind of a CFG node."""

    ENTRY = "entry"
    EXIT = "exit"
    BRANCH = "branch"
    JOIN = "join"
    SEND = "send"
    RECV = "recv"
    CHECKPOINT = "checkpoint"
    COMPUTE = "compute"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class CFGNode:
    """A single CFG node.

    Attributes:
        node_id: Unique id within its CFG.
        kind: The :class:`NodeKind`.
        stmt: The originating AST statement, if any. Branch nodes point
            at the ``If``/``While``/``For`` statement whose condition
            they evaluate; synthetic nodes (entry/exit/join) have none.
        label: Human-readable description used in dumps and DOT output.
        is_loop_header: True for the branch node of a ``while``/``for``.
        collective: True for send/recv nodes lowered from a collective
            statement (``bcast``); their message edges are pre-matched.
    """

    node_id: int
    kind: NodeKind
    stmt: ast.Stmt | None = None
    label: str = ""
    is_loop_header: bool = False
    collective: bool = False
    attrs: dict[str, object] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFGNode):
            return NotImplemented
        return self.node_id == other.node_id

    def __repr__(self) -> str:
        text = f"{self.kind.value}#{self.node_id}"
        if self.label:
            text += f"({self.label})"
        return text
