"""Dominators, backward edges, and natural loops.

The paper identifies loops via dominators: an edge ``<a, b>`` is a
*backward edge* if ``b`` dominates ``a``, and the loop of a backward
edge consists of all nodes on paths from ``b`` to ``a`` (Section 2).
This module implements the classic iterative dominator dataflow (the
CFGs here are small, so the simple O(n²) fixpoint is plenty) and the
natural-loop construction.
"""

from __future__ import annotations

from repro.cfg.graph import CFG, Edge
from repro.errors import CFGError


def compute_dominators(cfg: CFG) -> dict[int, frozenset[int]]:
    """Return ``dom[v]`` = the set of nodes dominating ``v``.

    Every node dominates itself; the entry node dominates every node
    reachable from it. Unreachable nodes (which the builder never
    produces) would be reported as dominated by everything, so we guard
    by restricting to reachable nodes.
    """
    if cfg.entry_id is None:
        raise CFGError("CFG has no entry node")
    reachable = _reachable(cfg, cfg.entry_id)
    all_ids = frozenset(reachable)
    dom: dict[int, set[int]] = {
        v: ({v} if v == cfg.entry_id else set(all_ids)) for v in reachable
    }
    changed = True
    while changed:
        changed = False
        for v in reachable:
            if v == cfg.entry_id:
                continue
            preds = [p for p in cfg.predecessors(v) if p in all_ids]
            if preds:
                new = set.intersection(*(dom[p] for p in preds))
            else:
                new = set()
            new.add(v)
            if new != dom[v]:
                dom[v] = new
                changed = True
    return {v: frozenset(s) for v, s in dom.items()}


def _reachable(cfg: CFG, start: int) -> list[int]:
    seen = {start}
    order = [start]
    stack = [start]
    while stack:
        current = stack.pop()
        for nxt in cfg.successors(current):
            if nxt not in seen:
                seen.add(nxt)
                order.append(nxt)
                stack.append(nxt)
    return order


def dominates(dom: dict[int, frozenset[int]], a: int, b: int) -> bool:
    """True iff node *a* dominates node *b*."""
    return a in dom.get(b, frozenset())


def find_back_edges(cfg: CFG) -> list[Edge]:
    """All backward edges ``<a, b>`` (i.e. *b* dominates *a*)."""
    dom = compute_dominators(cfg)
    return [e for e in cfg.edges() if e.dst in dom.get(e.src, frozenset())]


def natural_loops(cfg: CFG) -> dict[Edge, frozenset[int]]:
    """Map each backward edge to its natural loop's node-id set.

    The natural loop of backward edge ``<a, b>`` is ``{b}`` plus every
    node that can reach ``a`` without passing through ``b``.
    """
    loops: dict[Edge, frozenset[int]] = {}
    for edge in find_back_edges(cfg):
        header, tail = edge.dst, edge.src
        body = {header, tail}
        stack = [tail]
        while stack:
            current = stack.pop()
            if current == header:
                continue
            for pred in cfg.predecessors(current):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        loops[edge] = frozenset(body)
    return loops


def loop_headers(cfg: CFG) -> frozenset[int]:
    """Node ids that are targets of at least one backward edge."""
    return frozenset(e.dst for e in find_back_edges(cfg))
