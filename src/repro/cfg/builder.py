"""CFG construction from a MiniMP AST.

The builder produces one node per message/checkpoint statement, branch
nodes for ``if``/``while``/``for`` conditions, join nodes at merges, and
a single entry/exit pair — the node inventory of the paper's Section 2.

``bcast`` statements are lowered to a rank-dependent branch whose true
path holds a *collective* send node and whose false path holds a
*collective* receive node (the paper notes every collective statement
reduces to send/receive statements whose message edges are trivially
determined; Phase II pre-matches collective pairs by their originating
statement).
"""

from __future__ import annotations

from repro.cfg.graph import CFG
from repro.cfg.nodes import CFGNode, NodeKind
from repro.lang import ast_nodes as ast
from repro.lang.printer import expr_to_source


def build_cfg(program: ast.Program) -> CFG:
    """Build and return the CFG of *program*."""
    cfg = CFG()
    entry = cfg.add_node(NodeKind.ENTRY, label="entry")
    exits = _build_block(cfg, program.body, [(entry.node_id, "")])
    exit_node = cfg.add_node(NodeKind.EXIT, label="exit")
    _connect(cfg, exits, exit_node.node_id)
    return cfg


def _connect(cfg: CFG, exits: list[tuple[int, str]], target: int) -> None:
    """Wire every dangling (node, edge-label) exit to *target*."""
    for src, label in exits:
        cfg.add_edge(src, target, label)


def _build_block(
    cfg: CFG, block: ast.Block, preds: list[tuple[int, str]]
) -> list[tuple[int, str]]:
    """Build *block*, attaching it to *preds*; returns its dangling exits."""
    current = preds
    for stmt in block.statements:
        current = _build_statement(cfg, stmt, current)
    return current


def _build_statement(
    cfg: CFG, stmt: ast.Stmt, preds: list[tuple[int, str]]
) -> list[tuple[int, str]]:
    if isinstance(stmt, ast.Send):
        node = cfg.add_node(
            NodeKind.SEND, stmt=stmt, label=f"send({expr_to_source(stmt.dest)})"
        )
        _connect(cfg, preds, node.node_id)
        return [(node.node_id, "")]
    if isinstance(stmt, ast.Recv):
        node = cfg.add_node(
            NodeKind.RECV,
            stmt=stmt,
            label=f"{stmt.target} = recv({expr_to_source(stmt.source)})",
        )
        _connect(cfg, preds, node.node_id)
        return [(node.node_id, "")]
    if isinstance(stmt, ast.Checkpoint):
        node = cfg.add_node(NodeKind.CHECKPOINT, stmt=stmt, label="chkpt")
        _connect(cfg, preds, node.node_id)
        return [(node.node_id, "")]
    if isinstance(stmt, (ast.Assign, ast.Compute, ast.Pass)):
        node = cfg.add_node(NodeKind.COMPUTE, stmt=stmt, label=_compute_label(stmt))
        _connect(cfg, preds, node.node_id)
        return [(node.node_id, "")]
    if isinstance(stmt, ast.Bcast):
        return _build_bcast(cfg, stmt, preds)
    if isinstance(stmt, ast.If):
        return _build_if(cfg, stmt, preds)
    if isinstance(stmt, ast.While):
        return _build_loop(
            cfg, stmt, stmt.body, f"while {expr_to_source(stmt.cond)}", preds
        )
    if isinstance(stmt, ast.For):
        label = f"for {stmt.var} in range({expr_to_source(stmt.count)})"
        return _build_loop(cfg, stmt, stmt.body, label, preds)
    raise TypeError(f"unknown statement node: {stmt!r}")


def _compute_label(stmt: ast.Stmt) -> str:
    if isinstance(stmt, ast.Assign):
        return f"{stmt.target} = {expr_to_source(stmt.value)}"
    if isinstance(stmt, ast.Compute):
        return f"compute({expr_to_source(stmt.cost)})"
    return "pass"


def _build_if(
    cfg: CFG, stmt: ast.If, preds: list[tuple[int, str]]
) -> list[tuple[int, str]]:
    branch = cfg.add_node(
        NodeKind.BRANCH, stmt=stmt, label=f"if {expr_to_source(stmt.cond)}"
    )
    _connect(cfg, preds, branch.node_id)
    then_exits = _build_block(cfg, stmt.then_block, [(branch.node_id, "true")])
    else_exits = _build_block(cfg, stmt.else_block, [(branch.node_id, "false")])
    join = cfg.add_node(NodeKind.JOIN, label="join")
    _connect(cfg, then_exits + else_exits, join.node_id)
    return [(join.node_id, "")]


def _build_loop(
    cfg: CFG,
    stmt: ast.Stmt,
    body: ast.Block,
    label: str,
    preds: list[tuple[int, str]],
) -> list[tuple[int, str]]:
    header = cfg.add_node(
        NodeKind.BRANCH, stmt=stmt, label=label, is_loop_header=True
    )
    _connect(cfg, preds, header.node_id)
    body_exits = _build_block(cfg, body, [(header.node_id, "true")])
    # The edges from the body's last nodes back to the header are the
    # CFG's backward edges (the header dominates every body node).
    _connect(cfg, body_exits, header.node_id)
    return [(header.node_id, "false")]


def _build_bcast(
    cfg: CFG, stmt: ast.Bcast, preds: list[tuple[int, str]]
) -> list[tuple[int, str]]:
    root_text = expr_to_source(stmt.root)
    branch = cfg.add_node(
        NodeKind.BRANCH, stmt=stmt, label=f"if myrank == {root_text}"
    )
    branch.attrs["bcast"] = True
    _connect(cfg, preds, branch.node_id)
    send = cfg.add_node(
        NodeKind.SEND,
        stmt=stmt,
        label=f"bcast-send(root={root_text})",
        collective=True,
    )
    cfg.add_edge(branch.node_id, send.node_id, "true")
    recv = cfg.add_node(
        NodeKind.RECV,
        stmt=stmt,
        label=f"{stmt.target} = bcast-recv(root={root_text})",
        collective=True,
    )
    cfg.add_edge(branch.node_id, recv.node_id, "false")
    join = cfg.add_node(NodeKind.JOIN, label="join")
    _connect(cfg, [(send.node_id, ""), (recv.node_id, "")], join.node_id)
    return [(join.node_id, "")]


def nodes_for_statement(cfg: CFG, stmt: ast.Stmt) -> list[CFGNode]:
    """All CFG nodes generated from AST statement *stmt*."""
    return [n for n in cfg.nodes() if n.stmt is not None and n.stmt.node_id == stmt.node_id]
