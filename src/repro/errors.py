"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Subsystems define narrower classes so
that tests and tools can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LanguageError(ReproError):
    """Base class for MiniMP front-end errors."""


class LexerError(LanguageError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """Raised when the parser encounters a malformed program."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class CFGError(ReproError):
    """Raised on malformed control-flow-graph operations."""


class AttributeAnalysisError(ReproError):
    """Raised when attribute/dataflow analysis cannot proceed."""


class PhaseError(ReproError):
    """Base class for the three offline phases."""


class InsertionError(PhaseError):
    """Raised when Phase I cannot insert balanced checkpoints."""


class MatchingError(PhaseError):
    """Raised when Phase II cannot match a receive with any send."""


class PlacementError(PhaseError):
    """Raised when Phase III cannot establish Condition 1."""


class VerificationError(PhaseError):
    """Raised when the Theorem 3.2 verifier rejects a program."""


class SimulationError(ReproError):
    """Base class for discrete-event-simulator errors."""


class DeadlockError(SimulationError):
    """Raised when every live process is blocked on a receive."""

    def __init__(self, message: str, blocked: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.blocked = blocked


def _context_suffix(pairs: list[tuple[str, object]]) -> str:
    parts = [f"{key}={value}" for key, value in pairs if value is not None]
    return f" ({', '.join(parts)})" if parts else ""


class ChannelError(SimulationError):
    """Raised on invalid channel operations (unknown endpoint, etc.).

    Carries the channel coordinates (``src``, ``dst``, ``lane``) when
    the raise site knows them, so fault-path failures name the exact
    channel instead of forcing a reader to parse the message.
    """

    def __init__(
        self,
        message: str,
        src: int | None = None,
        dst: int | None = None,
        lane: str | None = None,
    ) -> None:
        super().__init__(
            message + _context_suffix([("src", src), ("dst", dst), ("lane", lane)])
        )
        self.src = src
        self.dst = dst
        self.lane = lane


class StorageError(SimulationError):
    """Raised on invalid stable-storage operations.

    Carries the owning ``rank``, the checkpoint ``number``, and (for
    replicated stores) the ``replica`` index when known, so a storage
    fault is debuggable from the exception alone.
    """

    def __init__(
        self,
        message: str,
        rank: int | None = None,
        number: int | None = None,
        replica: int | None = None,
    ) -> None:
        super().__init__(
            message
            + _context_suffix(
                [("rank", rank), ("checkpoint", number), ("replica", replica)]
            )
        )
        self.rank = rank
        self.number = number
        self.replica = replica


class StorageWriteError(StorageError):
    """A checkpoint write failed permanently (all retries exhausted)."""


class TornWriteError(StorageWriteError):
    """A staged checkpoint write landed partially and failed validation.

    Raised (or recorded on the write receipt) when the two-phase commit
    detects that the staged bytes do not match the intended payload —
    the torn blob is discarded and never published.
    """


class TransientStorageError(StorageError):
    """A retryable I/O error on stable storage (succeeds on retry)."""


class CorruptCheckpointError(StorageError):
    """A stored checkpoint failed its checksum at read time (bit rot)."""


class RecoveryError(SimulationError):
    """Raised when rollback/restart cannot produce a consistent state."""


class NestedFailureError(RecoveryError):
    """A rank crashed again while a recovery was rolling back/replaying.

    Retryable: the recovery supervisor aborts the interrupted attempt
    (before any state was mutated) and retries with backoff.
    """


class RecoveryControlError(RecoveryError):
    """Recovery/control-plane traffic was lost mid-recovery.

    Retryable, like :class:`NestedFailureError`: the restart round is
    abandoned and re-driven by the supervisor.
    """


class UnrecoverableError(RecoveryError):
    """Terminal recovery verdict: no intact line remains (or the retry
    budget is exhausted). Carried as a clean verdict — the engine turns
    it into ``SimulationResult.verdict == "unrecoverable"`` with full
    stats and observability artifacts instead of an unhandled crash.
    """


class ExecutorQuarantineError(SimulationError):
    """A campaign cell exhausted its executor retry budget.

    Raised by the resilient executor only when the caller supplied no
    quarantine factory — :func:`~repro.campaign.executor.run_campaign`
    and the chaos sweep always supply one, turning quarantine into a
    structured error *outcome* instead of an exception.
    """


class ProtocolError(ReproError):
    """Raised by checkpointing protocols on invalid usage."""


class AnalysisError(ReproError):
    """Raised by the stochastic performance analysis on bad parameters."""
