"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Subsystems define narrower classes so
that tests and tools can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LanguageError(ReproError):
    """Base class for MiniMP front-end errors."""


class LexerError(LanguageError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """Raised when the parser encounters a malformed program."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class CFGError(ReproError):
    """Raised on malformed control-flow-graph operations."""


class AttributeAnalysisError(ReproError):
    """Raised when attribute/dataflow analysis cannot proceed."""


class PhaseError(ReproError):
    """Base class for the three offline phases."""


class InsertionError(PhaseError):
    """Raised when Phase I cannot insert balanced checkpoints."""


class MatchingError(PhaseError):
    """Raised when Phase II cannot match a receive with any send."""


class PlacementError(PhaseError):
    """Raised when Phase III cannot establish Condition 1."""


class VerificationError(PhaseError):
    """Raised when the Theorem 3.2 verifier rejects a program."""


class SimulationError(ReproError):
    """Base class for discrete-event-simulator errors."""


class DeadlockError(SimulationError):
    """Raised when every live process is blocked on a receive."""

    def __init__(self, message: str, blocked: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.blocked = blocked


class ChannelError(SimulationError):
    """Raised on invalid channel operations (unknown endpoint, etc.)."""


class StorageError(SimulationError):
    """Raised on invalid stable-storage operations."""


class RecoveryError(SimulationError):
    """Raised when rollback/restart cannot produce a consistent state."""


class ProtocolError(ReproError):
    """Raised by checkpointing protocols on invalid usage."""


class AnalysisError(ReproError):
    """Raised by the stochastic performance analysis on bad parameters."""
