"""Stable storage for checkpoints.

Each stored checkpoint bundles the process snapshot, the vector clock
at the checkpoint, the channel cursors needed for exact channel
rollback, and bookkeeping tags (which protocol round produced it, which
statement). Storage survives process failures — that is its point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.causality.vector_clock import VectorClock
from repro.errors import StorageError
from repro.runtime.interpreter import ProcessSnapshot


@dataclass(frozen=True)
class StoredCheckpoint:
    """One checkpoint of one process on stable storage.

    Attributes:
        rank: Owning process.
        number: Per-process dynamic sequence number (0 = initial state).
        snapshot: Restorable interpreter state.
        clock: Vector clock at checkpoint completion.
        time: Simulation time at which the checkpoint completed.
        channel_cursors: ``(sent, delivered)`` cursors of the process's
            channels at checkpoint time (see
            :meth:`repro.runtime.network.Network.cursors_for`).
        stmt_id: AST id of the originating checkpoint statement, if the
            checkpoint came from an application ``checkpoint`` statement.
        tag: Protocol-specific label (e.g. the coordinated round id).
        blocked_effect: The receive effect the process was blocked on
            when a protocol checkpointed it mid-receive (None when the
            process was between statements); restoring such a
            checkpoint re-enters the blocked state.
    """

    rank: int
    number: int
    snapshot: ProcessSnapshot
    clock: VectorClock
    time: float
    channel_cursors: dict[tuple[int, int, str], tuple[int, int]]
    stmt_id: int | None = None
    tag: str = ""
    blocked_effect: object | None = None
    full_bytes: int = 0
    delta_bytes: int = 0


@dataclass
class StableStorage:
    """Per-process checkpoint lists, in checkpoint order."""

    _checkpoints: dict[int, list[StoredCheckpoint]] = field(default_factory=dict)

    def store(self, checkpoint: StoredCheckpoint) -> None:
        """Append *checkpoint* to its process's history."""
        history = self._checkpoints.setdefault(checkpoint.rank, [])
        history.append(checkpoint)

    def history(self, rank: int) -> list[StoredCheckpoint]:
        """All stored checkpoints of *rank*, oldest first."""
        return list(self._checkpoints.get(rank, []))

    def latest(self, rank: int) -> StoredCheckpoint:
        """The most recent checkpoint of *rank*."""
        history = self._checkpoints.get(rank)
        if not history:
            raise StorageError(f"no checkpoint stored for rank {rank}")
        return history[-1]

    def latest_with_number(self, rank: int, number: int) -> StoredCheckpoint:
        """The most recent checkpoint of *rank* with the given *number*.

        Rollback can make a process re-take checkpoint ``i``; the most
        recent instance reflects the surviving timeline.
        """
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if checkpoint.number == number:
                return checkpoint
        raise StorageError(f"rank {rank} has no checkpoint number {number}")

    def latest_with_tag(self, rank: int, tag: str) -> StoredCheckpoint | None:
        """The most recent checkpoint of *rank* carrying *tag*, if any."""
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if checkpoint.tag == tag:
                return checkpoint
        return None

    def max_common_number(self, ranks: list[int]) -> int:
        """The largest ``i`` every rank has reached (0 = initial state)."""
        numbers = []
        for rank in ranks:
            history = self._checkpoints.get(rank, [])
            numbers.append(max((c.number for c in history), default=-1))
        return min(numbers, default=-1)

    def truncate_to(self, checkpoint: StoredCheckpoint) -> int:
        """Drop every checkpoint of the owner stored after *checkpoint*.

        Called on rollback: states from the discarded timeline never
        happened, so keeping them would let a later recovery assemble a
        cut mixing mutually exclusive timelines. Returns the number of
        dropped entries.
        """
        history = self._checkpoints.get(checkpoint.rank, [])
        for position, stored in enumerate(history):
            if stored is checkpoint:
                dropped = len(history) - position - 1
                del history[position + 1 :]
                return dropped
        raise StorageError(
            f"checkpoint {checkpoint.number} of rank {checkpoint.rank} "
            "is not in storage"
        )

    def count(self, rank: int) -> int:
        """Number of checkpoints stored for *rank*."""
        return len(self._checkpoints.get(rank, []))

    def total_count(self) -> int:
        """Total stored checkpoints across all processes."""
        return sum(len(h) for h in self._checkpoints.values())

    def total_bytes(self, incremental: bool = False) -> int:
        """Cumulative checkpoint volume, full-sized or incremental.

        The incremental figure models delta checkpointing (store only
        variables changed since the previous checkpoint — the
        related-work feature the paper cites as [20]); comparing the
        two quantifies how much a delta scheme would save.
        """
        return sum(
            (c.delta_bytes if incremental else c.full_bytes)
            for history in self._checkpoints.values()
            for c in history
        )


def prune_below_common(storage: "StableStorage", ranks: list[int]) -> int:
    """Garbage-collect checkpoints made obsolete by straight-cut recovery.

    With the application-driven protocol, recovery always restores the
    deepest common checkpoint number ``i``; checkpoints with smaller
    numbers can never be needed again. Drops them (keeping exactly one
    number-``i`` checkpoint per rank as the new floor) and returns how
    many entries were removed.
    """
    common = storage.max_common_number(ranks)
    if common <= 0:
        return 0
    dropped = 0
    for rank in ranks:
        history = storage._checkpoints.get(rank, [])
        # Keep the most recent instance with number >= common, and
        # everything after it.
        keep_from = 0
        for position, checkpoint in enumerate(history):
            if checkpoint.number == common:
                keep_from = position
        dropped += keep_from
        del history[:keep_from]
    return dropped


WORD_BYTES = 8
FRAME_BYTES = 16


def snapshot_sizes(
    snapshot: ProcessSnapshot, previous_env: dict[str, int] | None
) -> tuple[int, int]:
    """(full, delta) byte sizes of a snapshot under a simple model.

    Variables cost one word each; control frames a fixed overhead. The
    delta counts only variables added or changed since *previous_env*
    (plus the frame overhead, which always must be saved).
    """
    frames = FRAME_BYTES * len(snapshot.frames)
    full = WORD_BYTES * len(snapshot.env) + frames
    if previous_env is None:
        return full, full
    changed = sum(
        1
        for name, value in snapshot.env.items()
        if previous_env.get(name) != value
    )
    return full, WORD_BYTES * changed + frames
