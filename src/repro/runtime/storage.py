"""Stable storage for checkpoints.

Each stored checkpoint bundles the process snapshot, the vector clock
at the checkpoint, the channel cursors needed for exact channel
rollback, and bookkeeping tags (which protocol round produced it, which
statement). Storage survives process failures — that is its point.

:class:`StableStorage` is the idealised store (every write succeeds,
reads never lie). :class:`CheckpointStore` hardens it against the
faults real checkpoint stores exhibit — lost writes, torn (partial)
writes, silent bit rot, transient I/O errors — with per-checkpoint
checksums, an atomic two-phase commit (stage → validate → publish),
and bounded retry. :class:`ReplicatedCheckpointStore` additionally
mirrors every published checkpoint across replicas and answers
integrity queries by majority quorum.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.causality.vector_clock import VectorClock
from repro.errors import StorageError, TransientStorageError
from repro.runtime.encoding import (
    apply_delta,
    checkpoint_record,
    delta_record,
    encode_record,
)
from repro.runtime.failures import FaultKind, StorageFaultEvent
from repro.runtime.interpreter import ProcessSnapshot

#: Longest run of consecutive delta-encoded checkpoints per rank before
#: a full checkpoint is forced. Caps reconstruction work at restore and
#: bounds how many ancestors safe-GC must keep alive for any one entry.
DELTA_CHAIN_CAP = 4


@dataclass(frozen=True)
class StoredCheckpoint:
    """One checkpoint of one process on stable storage.

    Attributes:
        rank: Owning process.
        number: Per-process dynamic sequence number (0 = initial state).
        snapshot: Restorable interpreter state.
        clock: Vector clock at checkpoint completion.
        time: Simulation time at which the checkpoint completed.
        channel_cursors: ``(sent, delivered)`` cursors of the process's
            channels at checkpoint time (see
            :meth:`repro.runtime.network.Network.cursors_for`).
        stmt_id: AST id of the originating checkpoint statement, if the
            checkpoint came from an application ``checkpoint`` statement.
        stmt_label: Document-order ordinal of that statement among the
            program's checkpoint statements (``None`` for protocol and
            initial checkpoints). This — never ``stmt_id`` — is what
            the wire record carries: AST node ids come from a
            process-global counter, and durable bytes must not vary
            with how many programs a process parsed earlier.
        tag: Protocol-specific label (e.g. the coordinated round id).
        blocked_effect: The receive effect the process was blocked on
            when a protocol checkpointed it mid-receive (None when the
            process was between statements); restoring such a
            checkpoint re-enters the blocked state.
        payload_kind: Wire format of the durable payload — ``"full"``
            (complete content) or ``"delta"`` (only fields changed
            since ``parent``; restore reconstructs through the chain).
        parent: For a ``"delta"`` entry, the rank's previously
            published checkpoint the delta chains to (``None`` for
            full entries). Safe GC must keep every transitive parent
            of a live entry (see :class:`RetentionPolicy`).
        delta_depth: Chain length above the nearest full checkpoint
            (0 for full entries; bounded by :data:`DELTA_CHAIN_CAP`).
    """

    rank: int
    number: int
    snapshot: ProcessSnapshot
    clock: VectorClock
    time: float
    channel_cursors: dict[tuple[int, int, str], tuple[int, int]]
    stmt_id: int | None = None
    stmt_label: int | None = None
    tag: str = ""
    blocked_effect: object | None = None
    payload_kind: str = "full"
    parent: "StoredCheckpoint | None" = None
    delta_depth: int = 0

    @property
    def full_bytes(self) -> int:
        """Measured size of the complete canonical encoding.

        Lazily computed and cached (direct ``__dict__`` write — the
        dataclass is frozen but the cache is not part of its identity),
        so fault-free full-mode runs only pay for encoding when byte
        accounting is actually read.
        """
        cached = self.__dict__.get("_full_bytes")
        if cached is None:
            cached = len(encode_record(checkpoint_record(self)))
            self.__dict__["_full_bytes"] = cached
        return cached

    @property
    def payload_bytes(self) -> int:
        """Measured size of the durable wire form actually stored.

        Equals :attr:`full_bytes` for full entries; for delta entries,
        the size of the delta record against :attr:`parent`.
        """
        if self.payload_kind != "delta":
            return self.full_bytes
        cached = self.__dict__.get("_payload_bytes")
        if cached is None:
            cached = len(encode_record(delta_record(self, self.parent)))
            self.__dict__["_payload_bytes"] = cached
        return cached

    # Historical name for the incremental figure, kept because the
    # accounting API predates the real delta encoder.
    delta_bytes = payload_bytes

    @property
    def delta_ancestors(self) -> tuple["StoredCheckpoint", ...]:
        """Transitive parents, nearest first (empty for full entries)."""
        ancestors = []
        parent = self.parent
        while parent is not None:
            ancestors.append(parent)
            parent = parent.parent
        return tuple(ancestors)


@dataclass
class StableStorage:
    """Per-process checkpoint lists, in checkpoint order."""

    _checkpoints: dict[int, list[StoredCheckpoint]] = field(default_factory=dict)

    def store(self, checkpoint: StoredCheckpoint) -> None:
        """Append *checkpoint* to its process's history."""
        history = self._checkpoints.setdefault(checkpoint.rank, [])
        history.append(checkpoint)

    def history(self, rank: int) -> list[StoredCheckpoint]:
        """All stored checkpoints of *rank*, oldest first."""
        return list(self._checkpoints.get(rank, []))

    def latest(self, rank: int) -> StoredCheckpoint:
        """The most recent checkpoint of *rank*."""
        history = self._checkpoints.get(rank)
        if not history:
            raise StorageError("no checkpoint stored", rank=rank)
        return history[-1]

    def latest_with_number(self, rank: int, number: int) -> StoredCheckpoint:
        """The most recent checkpoint of *rank* with the given *number*.

        Rollback can make a process re-take checkpoint ``i``; the most
        recent instance reflects the surviving timeline.
        """
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if checkpoint.number == number:
                return checkpoint
        raise StorageError(
            "rank has no checkpoint with this number", rank=rank, number=number
        )

    def latest_with_tag(self, rank: int, tag: str) -> StoredCheckpoint | None:
        """The most recent checkpoint of *rank* carrying *tag*, if any."""
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if checkpoint.tag == tag:
                return checkpoint
        return None

    def max_common_number(self, ranks: list[int]) -> int:
        """The largest ``i`` every rank has reached (0 = initial state)."""
        numbers = []
        for rank in ranks:
            history = self._checkpoints.get(rank, [])
            numbers.append(max((c.number for c in history), default=-1))
        return min(numbers, default=-1)

    def truncate_to(self, checkpoint: StoredCheckpoint) -> int:
        """Drop every checkpoint of the owner stored after *checkpoint*.

        Called on rollback: states from the discarded timeline never
        happened, so keeping them would let a later recovery assemble a
        cut mixing mutually exclusive timelines. Returns the number of
        dropped entries.
        """
        history = self._checkpoints.get(checkpoint.rank, [])
        for position, stored in enumerate(history):
            if stored is checkpoint:
                dropped = len(history) - position - 1
                del history[position + 1 :]
                return dropped
        raise StorageError(
            "checkpoint is not in storage",
            rank=checkpoint.rank,
            number=checkpoint.number,
        )

    def drop_prefix(self, rank: int, keep_from: int) -> int:
        """Drop the oldest *keep_from* checkpoints of *rank* (GC helper)."""
        history = self._checkpoints.get(rank, [])
        keep_from = max(0, min(keep_from, len(history)))
        del history[:keep_from]
        return keep_from

    def discard(self, checkpoint: StoredCheckpoint) -> None:
        """Remove one *checkpoint* from its owner's history (GC victim).

        Unlike :meth:`drop_prefix` this evicts an interior entry, which
        is what spacing-based retention needs. Matches by identity, like
        :meth:`truncate_to`.
        """
        history = self._checkpoints.get(checkpoint.rank, [])
        for position, stored in enumerate(history):
            if stored is checkpoint:
                del history[position]
                return
        raise StorageError(
            "checkpoint is not in storage",
            rank=checkpoint.rank,
            number=checkpoint.number,
        )

    def count(self, rank: int) -> int:
        """Number of checkpoints stored for *rank*."""
        return len(self._checkpoints.get(rank, []))

    def total_count(self) -> int:
        """Total stored checkpoints across all processes."""
        return sum(len(h) for h in self._checkpoints.values())

    def total_bytes(self, incremental: bool = False) -> int:
        """Cumulative checkpoint volume, full-content or as-stored.

        Both figures are *measured* (canonical-encoding sizes, the same
        bytes checksums and torn-write staging operate on — one source
        of truth). ``incremental=True`` sums the durable wire forms
        (delta entries count their delta payload — the related-work
        feature the paper cites as [20]); ``incremental=False`` sums
        what the same history would cost stored entirely as full
        checkpoints. The two coincide unless delta encoding is on.
        """
        return sum(
            (c.payload_bytes if incremental else c.full_bytes)
            for history in self._checkpoints.values()
            for c in history
        )


def prune_below_common(storage: "StableStorage", ranks: list[int]) -> int:
    """Garbage-collect checkpoints made obsolete by straight-cut recovery.

    With the application-driven protocol, recovery always restores the
    deepest common checkpoint number ``i``; checkpoints with smaller
    numbers can never be needed again. Drops them (keeping exactly one
    number-``i`` checkpoint per rank as the new floor) and returns how
    many entries were removed.
    """
    common = storage.max_common_number(ranks)
    if common <= 0:
        return 0
    dropped = 0
    for rank in ranks:
        history = storage._checkpoints.get(rank, [])
        # Keep the most recent instance with number >= common, and
        # everything after it.
        keep_from = 0
        for position, checkpoint in enumerate(history):
            if checkpoint.number == common:
                keep_from = position
        # Delta chains may reach below the cut: every kept entry needs
        # its transitive parents to stay reconstructable, so widen the
        # kept suffix to the earliest such ancestor. The widening is a
        # fixpoint by construction — walking each kept entry's chain is
        # transitive, so entries pulled in only as ancestors have their
        # own ancestors covered by the same walk.
        position_of = {id(c): p for p, c in enumerate(history)}
        for checkpoint in history[keep_from:]:
            for ancestor in checkpoint.delta_ancestors:
                position = position_of.get(id(ancestor))
                if position is not None and position < keep_from:
                    keep_from = position
        dropped += storage.drop_prefix(rank, keep_from)
    return dropped


# ----------------------------------------------------------------------
# Fault-tolerant storage
# ----------------------------------------------------------------------


def checkpoint_payload(checkpoint: StoredCheckpoint) -> bytes:
    """Canonical byte serialisation of a checkpoint's full content.

    The canonical-encoding bytes of :func:`checkpoint_record` — the
    single serialisation shared by checksums, replication, torn-write
    staging, byte accounting, and the delta encoder (see
    :mod:`repro.runtime.encoding`). For a delta entry this is the
    *reconstructed* content: byte-identical to chaining
    :func:`apply_delta` up from the nearest full ancestor, which is
    why one checksum definition covers both payload kinds.
    """
    return encode_record(checkpoint_record(checkpoint))


def stored_payload(checkpoint: StoredCheckpoint) -> bytes:
    """The durable wire form: delta bytes for delta entries, else full."""
    if checkpoint.payload_kind != "delta":
        return checkpoint_payload(checkpoint)
    return encode_record(delta_record(checkpoint, checkpoint.parent))


def reconstructed_record(checkpoint: StoredCheckpoint) -> tuple:
    """Full content rebuilt through the stored delta chain.

    Follows ``parent`` links to the nearest full entry and applies each
    delta wire record in turn — the restore-time path. The result is
    byte-identical (under :func:`~repro.runtime.encoding.encode_record`)
    to :func:`~repro.runtime.encoding.checkpoint_record` of the entry
    itself; tests pin that equivalence.
    """
    if checkpoint.payload_kind != "delta":
        return checkpoint_record(checkpoint)
    return apply_delta(
        reconstructed_record(checkpoint.parent),
        delta_record(checkpoint, checkpoint.parent),
    )


def checkpoint_checksum(checkpoint: StoredCheckpoint) -> int:
    """CRC-32 over the (reconstructed) full content of *checkpoint*."""
    return zlib.crc32(checkpoint_payload(checkpoint))


#: Placeholder integrity record for an untorn, unrotted write: the
#: stored checksum trivially matches the (immutable) content, so the
#: actual CRC is computed only if rot later targets the entry.
_LAZY_CHECKSUM = object()


@dataclass(frozen=True)
class StoreReceipt:
    """Outcome of one two-phase checkpoint write.

    Attributes:
        published: Whether the checkpoint became visible.
        retries: How many failed attempts preceded the outcome (used by
            the engine to charge simulated backoff time).
        torn: Whether a torn write was detected (and discarded) during
            validation.
        fault: The fault that was applied to this write, if any.
    """

    published: bool
    retries: int = 0
    torn: bool = False
    fault: StorageFaultEvent | None = None


#: Shared receipt for the fault-free store path: immutable, so every
#: successful unfaulted write can return the same instance.
_OK_RECEIPT = StoreReceipt(published=True)


class CheckpointStore(StableStorage):
    """A :class:`StableStorage` hardened against storage faults.

    Every write goes through an atomic two-phase commit: the payload is
    *staged*, its checksum is *validated* against the intended content,
    and only then is the checkpoint *published* into the history — so a
    torn write is detected and discarded rather than published, and a
    reader can never observe a half-written checkpoint. Published
    checkpoints carry a checksum that read paths re-verify, which is
    how silent bit rot is caught. Transient write errors are retried up
    to ``max_retries`` times.

    With a zero-fault plan the store behaves byte-identically to
    :class:`StableStorage` (same histories, same ordering); the
    integrity machinery only changes behaviour when faults fire.
    """

    def __init__(self, max_retries: int = 3) -> None:
        super().__init__()
        if max_retries < 0:
            raise StorageError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        # Optional observability bus (set by the engine); all storage
        # events are published on it when present.
        self.obs = None
        # Published checksums, keyed by checkpoint object identity
        # (``_LAZY_CHECKSUM`` until rot forces materialisation). An
        # entry is (re)written on every publish, so identity reuse after
        # truncation cannot produce a stale verdict for a live entry.
        self._checksums: dict[int, object] = {}
        # Distinct corrupt checkpoints seen by read paths.
        self._detected: set[int] = set()
        # Armed restore-read faults: remaining transient failures per
        # rank. Each fault-aware read of an armed rank consumes one and
        # raises; the supervisor's retry then reads through cleanly.
        self._read_faults: dict[int, int] = {}
        self.read_faults_injected = 0
        # Retention GC accounting (bumped by RetentionPolicy.collect).
        self.gc_collected = 0
        self.gc_reclaimed_bytes = 0

    # -- counters --------------------------------------------------------------

    @property
    def corruption_detected(self) -> int:
        """Distinct corrupt checkpoints read paths have caught so far."""
        return len(self._detected)

    # -- restore-read faults ---------------------------------------------------

    def arm_read_faults(self, rank: int, failures: int) -> None:
        """Make the next *failures* fault-aware reads of *rank* fail.

        Models transient I/O errors at restore time: the read paths
        (:meth:`latest_intact`, :meth:`intact_with_number`,
        :meth:`intact_history`) raise :class:`TransientStorageError`
        until the budget is consumed, then behave normally again.
        """
        if failures > 0:
            self._read_faults[rank] = self._read_faults.get(rank, 0) + failures

    def _maybe_read_fault(self, rank: int) -> None:
        remaining = self._read_faults.get(rank, 0)
        if remaining <= 0:
            return
        if remaining == 1:
            del self._read_faults[rank]
        else:
            self._read_faults[rank] = remaining - 1
        self.read_faults_injected += 1
        raise TransientStorageError(
            "restore read failed (injected transient I/O error)", rank=rank
        )

    # -- writes ----------------------------------------------------------------

    def store(
        self,
        checkpoint: StoredCheckpoint,
        fault: StorageFaultEvent | None = None,
    ) -> StoreReceipt:
        """Two-phase commit of *checkpoint*, optionally under *fault*.

        Returns a :class:`StoreReceipt`; the checkpoint is visible to
        readers iff ``receipt.published``. A failed or torn write
        leaves the history exactly as it was (atomicity).
        """
        if fault is None:
            # Fault-free fast path (the common case by far): publish
            # with a lazily materialised checksum and hand back the
            # shared immutable OK receipt.
            self._publish(checkpoint, _LAZY_CHECKSUM)
            self._emit_commit(checkpoint, retries=0)
            return _OK_RECEIPT
        kind = fault.kind
        if kind is FaultKind.WRITE_FAIL:
            # Every attempt errors; exhaust the retry budget and give up.
            self._emit("write-fail", checkpoint, retries=self.max_retries)
            return StoreReceipt(
                published=False, retries=self.max_retries, fault=fault
            )
        retries = 0
        if kind is FaultKind.TRANSIENT:
            if fault.attempts > self.max_retries:
                self._emit(
                    "write-fail", checkpoint, retries=self.max_retries
                )
                return StoreReceipt(
                    published=False, retries=self.max_retries, fault=fault
                )
            retries = fault.attempts
        if kind is FaultKind.TORN_WRITE:
            # Stage: a torn write truncates the staged *wire* bytes
            # (the delta payload for delta entries). Validate: the
            # staged bytes must checksum to the intended full content —
            # a truncated stage never can, so the tear is discarded.
            payload = stored_payload(checkpoint)
            expected = checkpoint_checksum(checkpoint)
            staged = payload[: len(payload) // 2]
            if zlib.crc32(staged) != expected:
                self._emit("torn-write", checkpoint, retries=retries)
                return StoreReceipt(
                    published=False, retries=retries, torn=True, fault=fault
                )
            self._publish(checkpoint, expected)
            self._emit_commit(checkpoint, retries=retries)
            return StoreReceipt(published=True, retries=retries, fault=fault)
        # Publish: append atomically. Checkpoint content is immutable
        # once stored (bit rot is modelled by flipping the *stored*
        # checksum, never the content), so an untorn write's checksum
        # is known-good by construction and its serialisation can be
        # deferred until rot actually targets this entry — fault-free
        # runs never pay for it.
        self._publish(checkpoint, _LAZY_CHECKSUM)
        self._emit_commit(checkpoint, retries=retries)
        return StoreReceipt(published=True, retries=retries, fault=fault)

    def _emit_commit(self, checkpoint: StoredCheckpoint, retries: int) -> None:
        """Commit event carrying the *stored* (wire) payload size.

        Guarded here rather than in :meth:`_emit` so the fault-free
        no-observer path never evaluates ``payload_bytes`` (which would
        force an encoding on every hot-path store).
        """
        if self.obs is not None:
            self._emit(
                "commit", checkpoint, retries=retries,
                bytes=checkpoint.payload_bytes, tag=checkpoint.tag,
            )

    def _emit(self, name: str, checkpoint: StoredCheckpoint, **fields) -> None:
        """Publish a ``storage``-category event for *checkpoint*.

        Events are stamped at the checkpoint's own simulated time (the
        write's completion instant) and carry its rank and number; the
        bus adds the publisher's vector clock.
        """
        if self.obs is not None:
            self.obs.emit(
                "storage", name, checkpoint.rank, checkpoint.time,
                number=checkpoint.number, **fields,
            )

    def _publish(self, checkpoint: StoredCheckpoint, checksum: int) -> None:
        super().store(checkpoint)
        self._checksums[id(checkpoint)] = checksum

    # -- integrity -------------------------------------------------------------

    def corrupt(
        self, rank: int, number: int | None = None, replica: int = 0
    ) -> bool:
        """Inject bit rot into a stored checkpoint of *rank*.

        Flips the stored checksum of the latest *intact* checkpoint (or
        the latest intact instance with *number*), so the next read
        catches the mismatch. Already-corrupt instances are skipped —
        rot on the same slot twice must not cancel out. Returns whether
        a checkpoint was actually corrupted.
        """
        if replica != 0:
            raise StorageError(
                "unreplicated store has only replica 0",
                rank=rank, number=number, replica=replica,
            )
        target: StoredCheckpoint | None = None
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if number is not None and checkpoint.number != number:
                continue
            # Rot targets the entry's *own* stored record, so the scan
            # uses the single-entry check: a delta whose ancestor is
            # already rotten is still a fresh target for independent rot.
            if self._intact_entry(checkpoint):
                target = checkpoint
                break
        if target is None:
            return False
        key = id(target)
        stored = self._checksums.get(key)
        if stored is not None:
            if stored is _LAZY_CHECKSUM:
                # Materialise the deferred write-time checksum now,
                # from the still-uncorrupted content, then flip it.
                stored = checkpoint_checksum(target)
            self._checksums[key] = stored ^ 0x5A5A5A5A
        return True

    def _intact_entry(self, checkpoint: StoredCheckpoint) -> bool:
        """Whether one entry's own stored checksum matches its content.

        Checkpoints this store never published (e.g. synthetic test
        fixtures) have no integrity record and are treated as intact.
        """
        stored = self._checksums.get(id(checkpoint))
        if stored is None or stored is _LAZY_CHECKSUM:
            # Never published here (synthetic fixture) or published
            # untorn and never rotted — intact by construction.
            return True
        return stored == checkpoint_checksum(checkpoint)

    def verify(self, checkpoint: StoredCheckpoint) -> bool:
        """Whether *checkpoint* is restorable from durable content.

        For a full entry this is the classic checksum match. A delta
        entry additionally needs every transitive ancestor intact —
        reconstruction chains through them, so rot anywhere on the
        chain makes the descendant unrestorable (read paths then
        degrade to an older entry whose chain is whole).
        """
        if not self._intact_entry(checkpoint):
            return False
        for ancestor in checkpoint.delta_ancestors:
            if not self._intact_entry(ancestor):
                return False
        return True

    def _note_corrupt(self, checkpoint: StoredCheckpoint) -> None:
        if id(checkpoint) not in self._detected:
            # First detection of this rotten checkpoint; stamped at the
            # checkpoint's write time (rot itself is silent — detection
            # happens at whatever later read reached it).
            self._emit("corrupt-detected", checkpoint)
        self._detected.add(id(checkpoint))

    # -- fault-aware reads -----------------------------------------------------

    def intact_with_number(
        self, rank: int, number: int
    ) -> StoredCheckpoint | None:
        """The most recent *intact* number-*number* checkpoint of *rank*.

        Corrupt instances are skipped (and counted); returns ``None``
        when the number is missing entirely or every instance is
        corrupt — the caller's cue to degrade to a shallower cut.
        """
        self._maybe_read_fault(rank)
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if checkpoint.number != number:
                continue
            if self.verify(checkpoint):
                return checkpoint
            self._note_corrupt(checkpoint)
        return None

    def latest_intact(
        self, rank: int, skip: int = 0
    ) -> tuple[StoredCheckpoint, int]:
        """The most recent intact checkpoint of *rank*, with skip depth.

        Returns ``(checkpoint, depth)`` where *depth* counts the newer
        entries (corrupt or deliberately skipped) above the result. A
        positive *skip* asks for an *older* intact checkpoint — the
        supervisor's escalating degraded fallback — clamped to the
        oldest intact entry when the history is shallower than asked.
        """
        self._maybe_read_fault(rank)
        history = self._checkpoints.get(rank, [])
        intact: list[tuple[StoredCheckpoint, int]] = []
        for depth, checkpoint in enumerate(reversed(history)):
            if self.verify(checkpoint):
                intact.append((checkpoint, depth))
                if len(intact) > skip:
                    # Lazy scan: entries older than the answer are never
                    # verified, so their rot stays undetected (as before).
                    return intact[skip]
            else:
                self._note_corrupt(checkpoint)
        if not intact:
            raise StorageError("no intact checkpoint on storage", rank=rank)
        return intact[-1]

    def intact_history(self, rank: int) -> list[StoredCheckpoint]:
        """All intact checkpoints of *rank*, oldest first (corrupt skipped)."""
        self._maybe_read_fault(rank)
        intact = []
        for checkpoint in self._checkpoints.get(rank, []):
            if self.verify(checkpoint):
                intact.append(checkpoint)
            else:
                self._note_corrupt(checkpoint)
        return intact


class ReplicatedCheckpointStore(CheckpointStore):
    """A checkpoint store mirrored across ``replicas`` copies.

    The primary replica is this store itself; ``replicas - 1`` mirrors
    receive every published checkpoint. Integrity queries are answered
    by **majority quorum**: a checkpoint counts as intact iff at least
    ``replicas // 2 + 1`` replicas hold an uncorrupted copy, so a
    minority of rotten replicas is survivable without any fallback.
    """

    def __init__(self, replicas: int = 3, max_retries: int = 3) -> None:
        super().__init__(max_retries=max_retries)
        if replicas < 1:
            raise StorageError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._mirrors = [
            CheckpointStore(max_retries=max_retries)
            for _ in range(replicas - 1)
        ]

    @property
    def quorum(self) -> int:
        """Copies that must be intact for a read to succeed."""
        return self.replicas // 2 + 1

    def _publish(self, checkpoint: StoredCheckpoint, checksum: int) -> None:
        super()._publish(checkpoint, checksum)
        for mirror in self._mirrors:
            mirror._publish(checkpoint, checksum)

    def corrupt(
        self, rank: int, number: int | None = None, replica: int = 0
    ) -> bool:
        if replica == 0:
            return super().corrupt(rank, number=number)
        if not 1 <= replica < self.replicas:
            raise StorageError(
                f"replica out of range [0, {self.replicas})",
                rank=rank, number=number, replica=replica,
            )
        return self._mirrors[replica - 1].corrupt(rank, number=number)

    def _intact_entry(self, checkpoint: StoredCheckpoint) -> bool:
        """Quorum read: an entry is intact iff a majority of copies are.

        Chain handling stays in the inherited :meth:`verify`, which
        calls this per link — so each ancestor needs its own quorum,
        and a minority of rotten replicas anywhere on a delta chain is
        still survivable.
        """
        copies = [CheckpointStore._intact_entry(self, checkpoint)]
        copies.extend(
            mirror._intact_entry(checkpoint) for mirror in self._mirrors
        )
        return sum(copies) >= self.quorum

    def truncate_to(self, checkpoint: StoredCheckpoint) -> int:
        dropped = super().truncate_to(checkpoint)
        for mirror in self._mirrors:
            mirror.truncate_to(checkpoint)
        return dropped

    def drop_prefix(self, rank: int, keep_from: int) -> int:
        dropped = super().drop_prefix(rank, keep_from)
        for mirror in self._mirrors:
            mirror.drop_prefix(rank, keep_from)
        return dropped

    def discard(self, checkpoint: StoredCheckpoint) -> None:
        super().discard(checkpoint)
        for mirror in self._mirrors:
            mirror.discard(checkpoint)


# ----------------------------------------------------------------------
# Bounded-storage retention
# ----------------------------------------------------------------------


@dataclass
class RetentionPolicy:
    """Online k-checkpoints-per-rank retention with a safe-GC invariant.

    Keeps at most ``retain_k`` checkpoints per rank, evicting the entry
    whose removal merges the *smallest* time gap between surviving
    neighbours — the greedy spacing rule from Bringmann et al. (arXiv
    1302.4216), which keeps checkpoints roughly geometrically spaced so
    a rewind to any age stays near-optimal under bounded storage.

    The GC invariant: the current recovery line — and every degraded
    fallback candidate the supervisor might escalate to, down to
    ``protect_depth`` numbers below the common number — is never
    collected. Protection is computed with :meth:`CheckpointStore.verify`
    (never a fault-aware read path), so GC cannot consume armed
    restore-read faults or perturb corruption accounting.
    """

    retain_k: int
    protect_depth: int = 3

    def __post_init__(self) -> None:
        if self.retain_k < 2:
            raise StorageError(
                f"retain_k must be >= 2 (need the newest checkpoint plus "
                f"a recovery floor), got {self.retain_k}"
            )
        if self.protect_depth < 0:
            raise StorageError(
                f"protect_depth must be >= 0, got {self.protect_depth}"
            )

    def collect(
        self, storage: StableStorage, ranks: list[int]
    ) -> tuple[int, int]:
        """Evict down to ``retain_k`` per rank; ``(collected, bytes)``.

        Corrupt entries are evicted first (they can never serve a
        restore); then unprotected interior entries by the merged-gap
        rule. Stops early for a rank when only protected entries remain,
        so occupancy may transiently exceed ``retain_k`` rather than
        break recoverability.
        """
        verify = getattr(storage, "verify", None)
        collected = 0
        reclaimed = 0
        common = storage.max_common_number(list(ranks))
        for rank in ranks:
            while storage.count(rank) > self.retain_k:
                history = storage.history(rank)
                victim = self._pick_victim(history, verify, common)
                if victim is None:
                    break
                storage.discard(victim)
                collected += 1
                # Reclaimed space is the durable wire form the entry
                # actually occupied (its delta payload, if encoded so).
                reclaimed += victim.payload_bytes
                emit = getattr(storage, "_emit", None)
                if emit is not None:
                    emit("gc", victim, bytes=victim.payload_bytes)
        if isinstance(storage, CheckpointStore):
            storage.gc_collected += collected
            storage.gc_reclaimed_bytes += reclaimed
        return collected, reclaimed

    def _pick_victim(
        self,
        history: list[StoredCheckpoint],
        verify,
        common: int,
    ) -> StoredCheckpoint | None:
        protected = self._protected_ids(history, verify, common)
        candidates = [
            (position, checkpoint)
            for position, checkpoint in enumerate(history)
            if id(checkpoint) not in protected
        ]
        if not candidates:
            return None
        if verify is not None:
            for _, checkpoint in candidates:
                if not verify(checkpoint):
                    return checkpoint
        # Greedy spacing: evict the entry merging the smallest time gap
        # between its neighbours (oldest wins ties — deterministic).
        best = None
        best_gap = None
        for position, checkpoint in candidates:
            before = history[position - 1].time if position > 0 \
                else checkpoint.time
            after = history[position + 1].time \
                if position + 1 < len(history) else checkpoint.time
            gap = after - before
            if best_gap is None or gap < best_gap:
                best, best_gap = checkpoint, gap
        return best

    def _protected_ids(
        self,
        history: list[StoredCheckpoint],
        verify,
        common: int,
    ) -> set[int]:
        """Identities GC must never touch for this rank's history."""
        protected: set[int] = set()
        if not history:
            return protected

        def intact(checkpoint: StoredCheckpoint) -> bool:
            return verify is None or verify(checkpoint)

        # The newest entry: the forward-progress frontier.
        protected.add(id(history[-1]))
        # The deepest and latest intact entries: the recovery floor and
        # the preferred restore target of single-rank protocols.
        for checkpoint in history:
            if intact(checkpoint):
                protected.add(id(checkpoint))
                break
        for checkpoint in reversed(history):
            if intact(checkpoint):
                protected.add(id(checkpoint))
                break
        # The straight-cut candidates: the most recent intact instance
        # of every number the degraded fallback might target.
        if common >= 0:
            floor = max(0, common - self.protect_depth)
            for number in range(floor, common + 1):
                for checkpoint in reversed(history):
                    if checkpoint.number == number and intact(checkpoint):
                        protected.add(id(checkpoint))
                        break
        # Delta-chain ancestors: evicting a parent would strand every
        # descendant's reconstruction, so the transitive parents of
        # *every* stored entry are off-limits. Chain tails therefore go
        # first, unlocking their parents on later collect iterations;
        # DELTA_CHAIN_CAP bounds how much occupancy this can pin.
        for checkpoint in history:
            for ancestor in checkpoint.delta_ancestors:
                protected.add(id(ancestor))
        return protected
