"""Stable storage for checkpoints.

Each stored checkpoint bundles the process snapshot, the vector clock
at the checkpoint, the channel cursors needed for exact channel
rollback, and bookkeeping tags (which protocol round produced it, which
statement). Storage survives process failures — that is its point.

:class:`StableStorage` is the idealised store (every write succeeds,
reads never lie). :class:`CheckpointStore` hardens it against the
faults real checkpoint stores exhibit — lost writes, torn (partial)
writes, silent bit rot, transient I/O errors — with per-checkpoint
checksums, an atomic two-phase commit (stage → validate → publish),
and bounded retry. :class:`ReplicatedCheckpointStore` additionally
mirrors every published checkpoint across replicas and answers
integrity queries by majority quorum.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.causality.vector_clock import VectorClock
from repro.errors import StorageError, TransientStorageError
from repro.runtime.failures import FaultKind, StorageFaultEvent
from repro.runtime.interpreter import ProcessSnapshot


@dataclass(frozen=True)
class StoredCheckpoint:
    """One checkpoint of one process on stable storage.

    Attributes:
        rank: Owning process.
        number: Per-process dynamic sequence number (0 = initial state).
        snapshot: Restorable interpreter state.
        clock: Vector clock at checkpoint completion.
        time: Simulation time at which the checkpoint completed.
        channel_cursors: ``(sent, delivered)`` cursors of the process's
            channels at checkpoint time (see
            :meth:`repro.runtime.network.Network.cursors_for`).
        stmt_id: AST id of the originating checkpoint statement, if the
            checkpoint came from an application ``checkpoint`` statement.
        tag: Protocol-specific label (e.g. the coordinated round id).
        blocked_effect: The receive effect the process was blocked on
            when a protocol checkpointed it mid-receive (None when the
            process was between statements); restoring such a
            checkpoint re-enters the blocked state.
    """

    rank: int
    number: int
    snapshot: ProcessSnapshot
    clock: VectorClock
    time: float
    channel_cursors: dict[tuple[int, int, str], tuple[int, int]]
    stmt_id: int | None = None
    tag: str = ""
    blocked_effect: object | None = None
    full_bytes: int = 0
    delta_bytes: int = 0


@dataclass
class StableStorage:
    """Per-process checkpoint lists, in checkpoint order."""

    _checkpoints: dict[int, list[StoredCheckpoint]] = field(default_factory=dict)

    def store(self, checkpoint: StoredCheckpoint) -> None:
        """Append *checkpoint* to its process's history."""
        history = self._checkpoints.setdefault(checkpoint.rank, [])
        history.append(checkpoint)

    def history(self, rank: int) -> list[StoredCheckpoint]:
        """All stored checkpoints of *rank*, oldest first."""
        return list(self._checkpoints.get(rank, []))

    def latest(self, rank: int) -> StoredCheckpoint:
        """The most recent checkpoint of *rank*."""
        history = self._checkpoints.get(rank)
        if not history:
            raise StorageError("no checkpoint stored", rank=rank)
        return history[-1]

    def latest_with_number(self, rank: int, number: int) -> StoredCheckpoint:
        """The most recent checkpoint of *rank* with the given *number*.

        Rollback can make a process re-take checkpoint ``i``; the most
        recent instance reflects the surviving timeline.
        """
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if checkpoint.number == number:
                return checkpoint
        raise StorageError(
            "rank has no checkpoint with this number", rank=rank, number=number
        )

    def latest_with_tag(self, rank: int, tag: str) -> StoredCheckpoint | None:
        """The most recent checkpoint of *rank* carrying *tag*, if any."""
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if checkpoint.tag == tag:
                return checkpoint
        return None

    def max_common_number(self, ranks: list[int]) -> int:
        """The largest ``i`` every rank has reached (0 = initial state)."""
        numbers = []
        for rank in ranks:
            history = self._checkpoints.get(rank, [])
            numbers.append(max((c.number for c in history), default=-1))
        return min(numbers, default=-1)

    def truncate_to(self, checkpoint: StoredCheckpoint) -> int:
        """Drop every checkpoint of the owner stored after *checkpoint*.

        Called on rollback: states from the discarded timeline never
        happened, so keeping them would let a later recovery assemble a
        cut mixing mutually exclusive timelines. Returns the number of
        dropped entries.
        """
        history = self._checkpoints.get(checkpoint.rank, [])
        for position, stored in enumerate(history):
            if stored is checkpoint:
                dropped = len(history) - position - 1
                del history[position + 1 :]
                return dropped
        raise StorageError(
            "checkpoint is not in storage",
            rank=checkpoint.rank,
            number=checkpoint.number,
        )

    def drop_prefix(self, rank: int, keep_from: int) -> int:
        """Drop the oldest *keep_from* checkpoints of *rank* (GC helper)."""
        history = self._checkpoints.get(rank, [])
        keep_from = max(0, min(keep_from, len(history)))
        del history[:keep_from]
        return keep_from

    def discard(self, checkpoint: StoredCheckpoint) -> None:
        """Remove one *checkpoint* from its owner's history (GC victim).

        Unlike :meth:`drop_prefix` this evicts an interior entry, which
        is what spacing-based retention needs. Matches by identity, like
        :meth:`truncate_to`.
        """
        history = self._checkpoints.get(checkpoint.rank, [])
        for position, stored in enumerate(history):
            if stored is checkpoint:
                del history[position]
                return
        raise StorageError(
            "checkpoint is not in storage",
            rank=checkpoint.rank,
            number=checkpoint.number,
        )

    def count(self, rank: int) -> int:
        """Number of checkpoints stored for *rank*."""
        return len(self._checkpoints.get(rank, []))

    def total_count(self) -> int:
        """Total stored checkpoints across all processes."""
        return sum(len(h) for h in self._checkpoints.values())

    def total_bytes(self, incremental: bool = False) -> int:
        """Cumulative checkpoint volume, full-sized or incremental.

        The incremental figure models delta checkpointing (store only
        variables changed since the previous checkpoint — the
        related-work feature the paper cites as [20]); comparing the
        two quantifies how much a delta scheme would save.
        """
        return sum(
            (c.delta_bytes if incremental else c.full_bytes)
            for history in self._checkpoints.values()
            for c in history
        )


def prune_below_common(storage: "StableStorage", ranks: list[int]) -> int:
    """Garbage-collect checkpoints made obsolete by straight-cut recovery.

    With the application-driven protocol, recovery always restores the
    deepest common checkpoint number ``i``; checkpoints with smaller
    numbers can never be needed again. Drops them (keeping exactly one
    number-``i`` checkpoint per rank as the new floor) and returns how
    many entries were removed.
    """
    common = storage.max_common_number(ranks)
    if common <= 0:
        return 0
    dropped = 0
    for rank in ranks:
        history = storage._checkpoints.get(rank, [])
        # Keep the most recent instance with number >= common, and
        # everything after it.
        keep_from = 0
        for position, checkpoint in enumerate(history):
            if checkpoint.number == common:
                keep_from = position
        dropped += storage.drop_prefix(rank, keep_from)
    return dropped


WORD_BYTES = 8
FRAME_BYTES = 16


def snapshot_sizes(
    snapshot: ProcessSnapshot, previous_env: dict[str, int] | None
) -> tuple[int, int]:
    """(full, delta) byte sizes of a snapshot under a simple model.

    Variables cost one word each; control frames a fixed overhead. The
    delta counts only variables added or changed since *previous_env*
    (plus the frame overhead, which always must be saved).
    """
    frames = FRAME_BYTES * len(snapshot.frames)
    full = WORD_BYTES * len(snapshot.env) + frames
    if previous_env is None:
        return full, full
    # Explicit loop rather than sum(genexpr): envs are small, so the
    # generator machinery would dominate on the per-checkpoint path.
    changed = 0
    get = previous_env.get
    for name, value in snapshot.env.items():
        if get(name) != value:
            changed += 1
    return full, WORD_BYTES * changed + frames


# ----------------------------------------------------------------------
# Fault-tolerant storage
# ----------------------------------------------------------------------


def checkpoint_payload(checkpoint: StoredCheckpoint) -> bytes:
    """Canonical byte serialisation of a checkpoint's durable content.

    Covers everything recovery depends on (snapshot, clock, cursors,
    numbering) but excludes in-memory-only fields (``blocked_effect``
    holds an AST-bearing effect object whose repr is not stable). Frames
    are reduced to their control coordinates; the shared AST is not
    serialised, matching how :class:`ProcessSnapshot` shares it.
    """
    snapshot = checkpoint.snapshot
    frames = tuple(
        (f.kind, f.index, f.remaining, f.trip) for f in snapshot.frames
    )
    return repr((
        checkpoint.rank,
        checkpoint.number,
        sorted(snapshot.env.items()),
        frames,
        snapshot.checkpoint_count,
        sorted(snapshot.input_counters.items()),
        snapshot.pending_recv,
        # The raw component tuple: repr of a plain tuple is C-speed,
        # while the dataclass wrapper's repr is a Python-level call —
        # material at engine-hot-path checkpoint rates.
        checkpoint.clock.components,
        checkpoint.time,
        sorted(checkpoint.channel_cursors.items()),
        checkpoint.stmt_id,
        checkpoint.tag,
    )).encode()


def checkpoint_checksum(checkpoint: StoredCheckpoint) -> int:
    """CRC-32 over :func:`checkpoint_payload` (deterministic per content)."""
    return zlib.crc32(checkpoint_payload(checkpoint))


#: Placeholder integrity record for an untorn, unrotted write: the
#: stored checksum trivially matches the (immutable) content, so the
#: actual CRC is computed only if rot later targets the entry.
_LAZY_CHECKSUM = object()


@dataclass(frozen=True)
class StoreReceipt:
    """Outcome of one two-phase checkpoint write.

    Attributes:
        published: Whether the checkpoint became visible.
        retries: How many failed attempts preceded the outcome (used by
            the engine to charge simulated backoff time).
        torn: Whether a torn write was detected (and discarded) during
            validation.
        fault: The fault that was applied to this write, if any.
    """

    published: bool
    retries: int = 0
    torn: bool = False
    fault: StorageFaultEvent | None = None


#: Shared receipt for the fault-free store path: immutable, so every
#: successful unfaulted write can return the same instance.
_OK_RECEIPT = StoreReceipt(published=True)


class CheckpointStore(StableStorage):
    """A :class:`StableStorage` hardened against storage faults.

    Every write goes through an atomic two-phase commit: the payload is
    *staged*, its checksum is *validated* against the intended content,
    and only then is the checkpoint *published* into the history — so a
    torn write is detected and discarded rather than published, and a
    reader can never observe a half-written checkpoint. Published
    checkpoints carry a checksum that read paths re-verify, which is
    how silent bit rot is caught. Transient write errors are retried up
    to ``max_retries`` times.

    With a zero-fault plan the store behaves byte-identically to
    :class:`StableStorage` (same histories, same ordering); the
    integrity machinery only changes behaviour when faults fire.
    """

    def __init__(self, max_retries: int = 3) -> None:
        super().__init__()
        if max_retries < 0:
            raise StorageError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        # Optional observability bus (set by the engine); all storage
        # events are published on it when present.
        self.obs = None
        # Published checksums, keyed by checkpoint object identity
        # (``_LAZY_CHECKSUM`` until rot forces materialisation). An
        # entry is (re)written on every publish, so identity reuse after
        # truncation cannot produce a stale verdict for a live entry.
        self._checksums: dict[int, object] = {}
        # Distinct corrupt checkpoints seen by read paths.
        self._detected: set[int] = set()
        # Armed restore-read faults: remaining transient failures per
        # rank. Each fault-aware read of an armed rank consumes one and
        # raises; the supervisor's retry then reads through cleanly.
        self._read_faults: dict[int, int] = {}
        self.read_faults_injected = 0
        # Retention GC accounting (bumped by RetentionPolicy.collect).
        self.gc_collected = 0
        self.gc_reclaimed_bytes = 0

    # -- counters --------------------------------------------------------------

    @property
    def corruption_detected(self) -> int:
        """Distinct corrupt checkpoints read paths have caught so far."""
        return len(self._detected)

    # -- restore-read faults ---------------------------------------------------

    def arm_read_faults(self, rank: int, failures: int) -> None:
        """Make the next *failures* fault-aware reads of *rank* fail.

        Models transient I/O errors at restore time: the read paths
        (:meth:`latest_intact`, :meth:`intact_with_number`,
        :meth:`intact_history`) raise :class:`TransientStorageError`
        until the budget is consumed, then behave normally again.
        """
        if failures > 0:
            self._read_faults[rank] = self._read_faults.get(rank, 0) + failures

    def _maybe_read_fault(self, rank: int) -> None:
        remaining = self._read_faults.get(rank, 0)
        if remaining <= 0:
            return
        if remaining == 1:
            del self._read_faults[rank]
        else:
            self._read_faults[rank] = remaining - 1
        self.read_faults_injected += 1
        raise TransientStorageError(
            "restore read failed (injected transient I/O error)", rank=rank
        )

    # -- writes ----------------------------------------------------------------

    def store(
        self,
        checkpoint: StoredCheckpoint,
        fault: StorageFaultEvent | None = None,
    ) -> StoreReceipt:
        """Two-phase commit of *checkpoint*, optionally under *fault*.

        Returns a :class:`StoreReceipt`; the checkpoint is visible to
        readers iff ``receipt.published``. A failed or torn write
        leaves the history exactly as it was (atomicity).
        """
        if fault is None:
            # Fault-free fast path (the common case by far): publish
            # with a lazily materialised checksum and hand back the
            # shared immutable OK receipt.
            self._publish(checkpoint, _LAZY_CHECKSUM)
            self._emit(
                "commit", checkpoint, retries=0,
                bytes=checkpoint.full_bytes, tag=checkpoint.tag,
            )
            return _OK_RECEIPT
        kind = fault.kind
        if kind is FaultKind.WRITE_FAIL:
            # Every attempt errors; exhaust the retry budget and give up.
            self._emit("write-fail", checkpoint, retries=self.max_retries)
            return StoreReceipt(
                published=False, retries=self.max_retries, fault=fault
            )
        retries = 0
        if kind is FaultKind.TRANSIENT:
            if fault.attempts > self.max_retries:
                self._emit(
                    "write-fail", checkpoint, retries=self.max_retries
                )
                return StoreReceipt(
                    published=False, retries=self.max_retries, fault=fault
                )
            retries = fault.attempts
        if kind is FaultKind.TORN_WRITE:
            # Stage: a torn write truncates the staged bytes. Validate:
            # the staged checksum must match the intended content.
            payload = checkpoint_payload(checkpoint)
            expected = zlib.crc32(payload)
            staged = payload[: len(payload) // 2]
            if zlib.crc32(staged) != expected:
                self._emit("torn-write", checkpoint, retries=retries)
                return StoreReceipt(
                    published=False, retries=retries, torn=True, fault=fault
                )
            self._publish(checkpoint, expected)
            self._emit(
                "commit", checkpoint, retries=retries,
                bytes=checkpoint.full_bytes, tag=checkpoint.tag,
            )
            return StoreReceipt(published=True, retries=retries, fault=fault)
        # Publish: append atomically. Checkpoint content is immutable
        # once stored (bit rot is modelled by flipping the *stored*
        # checksum, never the content), so an untorn write's checksum
        # is known-good by construction and its serialisation can be
        # deferred until rot actually targets this entry — fault-free
        # runs never pay for it.
        self._publish(checkpoint, _LAZY_CHECKSUM)
        self._emit(
            "commit", checkpoint, retries=retries,
            bytes=checkpoint.full_bytes, tag=checkpoint.tag,
        )
        return StoreReceipt(published=True, retries=retries, fault=fault)

    def _emit(self, name: str, checkpoint: StoredCheckpoint, **fields) -> None:
        """Publish a ``storage``-category event for *checkpoint*.

        Events are stamped at the checkpoint's own simulated time (the
        write's completion instant) and carry its rank and number; the
        bus adds the publisher's vector clock.
        """
        if self.obs is not None:
            self.obs.emit(
                "storage", name, checkpoint.rank, checkpoint.time,
                number=checkpoint.number, **fields,
            )

    def _publish(self, checkpoint: StoredCheckpoint, checksum: int) -> None:
        super().store(checkpoint)
        self._checksums[id(checkpoint)] = checksum

    # -- integrity -------------------------------------------------------------

    def corrupt(
        self, rank: int, number: int | None = None, replica: int = 0
    ) -> bool:
        """Inject bit rot into a stored checkpoint of *rank*.

        Flips the stored checksum of the latest *intact* checkpoint (or
        the latest intact instance with *number*), so the next read
        catches the mismatch. Already-corrupt instances are skipped —
        rot on the same slot twice must not cancel out. Returns whether
        a checkpoint was actually corrupted.
        """
        if replica != 0:
            raise StorageError(
                "unreplicated store has only replica 0",
                rank=rank, number=number, replica=replica,
            )
        target: StoredCheckpoint | None = None
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if number is not None and checkpoint.number != number:
                continue
            if self.verify(checkpoint):
                target = checkpoint
                break
        if target is None:
            return False
        key = id(target)
        stored = self._checksums.get(key)
        if stored is not None:
            if stored is _LAZY_CHECKSUM:
                # Materialise the deferred write-time checksum now,
                # from the still-uncorrupted content, then flip it.
                stored = checkpoint_checksum(target)
            self._checksums[key] = stored ^ 0x5A5A5A5A
        return True

    def verify(self, checkpoint: StoredCheckpoint) -> bool:
        """Whether *checkpoint*'s stored checksum matches its content.

        Checkpoints this store never published (e.g. synthetic test
        fixtures) have no integrity record and are treated as intact.
        """
        stored = self._checksums.get(id(checkpoint))
        if stored is None or stored is _LAZY_CHECKSUM:
            # Never published here (synthetic fixture) or published
            # untorn and never rotted — intact by construction.
            return True
        return stored == checkpoint_checksum(checkpoint)

    def _note_corrupt(self, checkpoint: StoredCheckpoint) -> None:
        if id(checkpoint) not in self._detected:
            # First detection of this rotten checkpoint; stamped at the
            # checkpoint's write time (rot itself is silent — detection
            # happens at whatever later read reached it).
            self._emit("corrupt-detected", checkpoint)
        self._detected.add(id(checkpoint))

    # -- fault-aware reads -----------------------------------------------------

    def intact_with_number(
        self, rank: int, number: int
    ) -> StoredCheckpoint | None:
        """The most recent *intact* number-*number* checkpoint of *rank*.

        Corrupt instances are skipped (and counted); returns ``None``
        when the number is missing entirely or every instance is
        corrupt — the caller's cue to degrade to a shallower cut.
        """
        self._maybe_read_fault(rank)
        for checkpoint in reversed(self._checkpoints.get(rank, [])):
            if checkpoint.number != number:
                continue
            if self.verify(checkpoint):
                return checkpoint
            self._note_corrupt(checkpoint)
        return None

    def latest_intact(
        self, rank: int, skip: int = 0
    ) -> tuple[StoredCheckpoint, int]:
        """The most recent intact checkpoint of *rank*, with skip depth.

        Returns ``(checkpoint, depth)`` where *depth* counts the newer
        entries (corrupt or deliberately skipped) above the result. A
        positive *skip* asks for an *older* intact checkpoint — the
        supervisor's escalating degraded fallback — clamped to the
        oldest intact entry when the history is shallower than asked.
        """
        self._maybe_read_fault(rank)
        history = self._checkpoints.get(rank, [])
        intact: list[tuple[StoredCheckpoint, int]] = []
        for depth, checkpoint in enumerate(reversed(history)):
            if self.verify(checkpoint):
                intact.append((checkpoint, depth))
                if len(intact) > skip:
                    # Lazy scan: entries older than the answer are never
                    # verified, so their rot stays undetected (as before).
                    return intact[skip]
            else:
                self._note_corrupt(checkpoint)
        if not intact:
            raise StorageError("no intact checkpoint on storage", rank=rank)
        return intact[-1]

    def intact_history(self, rank: int) -> list[StoredCheckpoint]:
        """All intact checkpoints of *rank*, oldest first (corrupt skipped)."""
        self._maybe_read_fault(rank)
        intact = []
        for checkpoint in self._checkpoints.get(rank, []):
            if self.verify(checkpoint):
                intact.append(checkpoint)
            else:
                self._note_corrupt(checkpoint)
        return intact


class ReplicatedCheckpointStore(CheckpointStore):
    """A checkpoint store mirrored across ``replicas`` copies.

    The primary replica is this store itself; ``replicas - 1`` mirrors
    receive every published checkpoint. Integrity queries are answered
    by **majority quorum**: a checkpoint counts as intact iff at least
    ``replicas // 2 + 1`` replicas hold an uncorrupted copy, so a
    minority of rotten replicas is survivable without any fallback.
    """

    def __init__(self, replicas: int = 3, max_retries: int = 3) -> None:
        super().__init__(max_retries=max_retries)
        if replicas < 1:
            raise StorageError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._mirrors = [
            CheckpointStore(max_retries=max_retries)
            for _ in range(replicas - 1)
        ]

    @property
    def quorum(self) -> int:
        """Copies that must be intact for a read to succeed."""
        return self.replicas // 2 + 1

    def _publish(self, checkpoint: StoredCheckpoint, checksum: int) -> None:
        super()._publish(checkpoint, checksum)
        for mirror in self._mirrors:
            mirror._publish(checkpoint, checksum)

    def corrupt(
        self, rank: int, number: int | None = None, replica: int = 0
    ) -> bool:
        if replica == 0:
            return super().corrupt(rank, number=number)
        if not 1 <= replica < self.replicas:
            raise StorageError(
                f"replica out of range [0, {self.replicas})",
                rank=rank, number=number, replica=replica,
            )
        return self._mirrors[replica - 1].corrupt(rank, number=number)

    def verify(self, checkpoint: StoredCheckpoint) -> bool:
        """Quorum read: intact iff a majority of copies verify."""
        copies = [super().verify(checkpoint)]
        copies.extend(
            CheckpointStore.verify(mirror, checkpoint)
            for mirror in self._mirrors
        )
        return sum(copies) >= self.quorum

    def truncate_to(self, checkpoint: StoredCheckpoint) -> int:
        dropped = super().truncate_to(checkpoint)
        for mirror in self._mirrors:
            mirror.truncate_to(checkpoint)
        return dropped

    def drop_prefix(self, rank: int, keep_from: int) -> int:
        dropped = super().drop_prefix(rank, keep_from)
        for mirror in self._mirrors:
            mirror.drop_prefix(rank, keep_from)
        return dropped

    def discard(self, checkpoint: StoredCheckpoint) -> None:
        super().discard(checkpoint)
        for mirror in self._mirrors:
            mirror.discard(checkpoint)


# ----------------------------------------------------------------------
# Bounded-storage retention
# ----------------------------------------------------------------------


@dataclass
class RetentionPolicy:
    """Online k-checkpoints-per-rank retention with a safe-GC invariant.

    Keeps at most ``retain_k`` checkpoints per rank, evicting the entry
    whose removal merges the *smallest* time gap between surviving
    neighbours — the greedy spacing rule from Bringmann et al. (arXiv
    1302.4216), which keeps checkpoints roughly geometrically spaced so
    a rewind to any age stays near-optimal under bounded storage.

    The GC invariant: the current recovery line — and every degraded
    fallback candidate the supervisor might escalate to, down to
    ``protect_depth`` numbers below the common number — is never
    collected. Protection is computed with :meth:`CheckpointStore.verify`
    (never a fault-aware read path), so GC cannot consume armed
    restore-read faults or perturb corruption accounting.
    """

    retain_k: int
    protect_depth: int = 3

    def __post_init__(self) -> None:
        if self.retain_k < 2:
            raise StorageError(
                f"retain_k must be >= 2 (need the newest checkpoint plus "
                f"a recovery floor), got {self.retain_k}"
            )
        if self.protect_depth < 0:
            raise StorageError(
                f"protect_depth must be >= 0, got {self.protect_depth}"
            )

    def collect(
        self, storage: StableStorage, ranks: list[int]
    ) -> tuple[int, int]:
        """Evict down to ``retain_k`` per rank; ``(collected, bytes)``.

        Corrupt entries are evicted first (they can never serve a
        restore); then unprotected interior entries by the merged-gap
        rule. Stops early for a rank when only protected entries remain,
        so occupancy may transiently exceed ``retain_k`` rather than
        break recoverability.
        """
        verify = getattr(storage, "verify", None)
        collected = 0
        reclaimed = 0
        common = storage.max_common_number(list(ranks))
        for rank in ranks:
            while storage.count(rank) > self.retain_k:
                history = storage.history(rank)
                victim = self._pick_victim(history, verify, common)
                if victim is None:
                    break
                storage.discard(victim)
                collected += 1
                reclaimed += victim.full_bytes
                emit = getattr(storage, "_emit", None)
                if emit is not None:
                    emit("gc", victim, bytes=victim.full_bytes)
        if isinstance(storage, CheckpointStore):
            storage.gc_collected += collected
            storage.gc_reclaimed_bytes += reclaimed
        return collected, reclaimed

    def _pick_victim(
        self,
        history: list[StoredCheckpoint],
        verify,
        common: int,
    ) -> StoredCheckpoint | None:
        protected = self._protected_ids(history, verify, common)
        candidates = [
            (position, checkpoint)
            for position, checkpoint in enumerate(history)
            if id(checkpoint) not in protected
        ]
        if not candidates:
            return None
        if verify is not None:
            for _, checkpoint in candidates:
                if not verify(checkpoint):
                    return checkpoint
        # Greedy spacing: evict the entry merging the smallest time gap
        # between its neighbours (oldest wins ties — deterministic).
        best = None
        best_gap = None
        for position, checkpoint in candidates:
            before = history[position - 1].time if position > 0 \
                else checkpoint.time
            after = history[position + 1].time \
                if position + 1 < len(history) else checkpoint.time
            gap = after - before
            if best_gap is None or gap < best_gap:
                best, best_gap = checkpoint, gap
        return best

    def _protected_ids(
        self,
        history: list[StoredCheckpoint],
        verify,
        common: int,
    ) -> set[int]:
        """Identities GC must never touch for this rank's history."""
        protected: set[int] = set()
        if not history:
            return protected

        def intact(checkpoint: StoredCheckpoint) -> bool:
            return verify is None or verify(checkpoint)

        # The newest entry: the forward-progress frontier.
        protected.add(id(history[-1]))
        # The deepest and latest intact entries: the recovery floor and
        # the preferred restore target of single-rank protocols.
        for checkpoint in history:
            if intact(checkpoint):
                protected.add(id(checkpoint))
                break
        for checkpoint in reversed(history):
            if intact(checkpoint):
                protected.add(id(checkpoint))
                break
        # The straight-cut candidates: the most recent intact instance
        # of every number the degraded fallback might target.
        if common >= 0:
            floor = max(0, common - self.protect_depth)
            for number in range(floor, common + 1):
                for checkpoint in reversed(history):
                    if checkpoint.number == number and intact(checkpoint):
                        protected.add(id(checkpoint))
                        break
        return protected
