"""Deterministic input-data provider.

MiniMP's ``input(label)`` models input-dependent ("irregular") values.
For reproducible executions — the system model assumes identical
executions for identical inputs — the provider derives each value
deterministically from ``(seed, label, rank, occurrence)``. Replays
after a rollback therefore see the same inputs as the original run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_MASK = (1 << 31) - 1


def _mix(*values: int) -> int:
    acc = 0x2545F491
    for value in values:
        acc = (acc ^ (value & _MASK)) * 0x9E3779B1 & _MASK
        acc ^= acc >> 15
    return acc & _MASK


@dataclass
class InputProvider:
    """Deterministic stream of input values per (label, rank).

    The per-(label, rank) occurrence counter lives here, *outside* the
    interpreter state, so a restored process replays the same values it
    saw before the rollback only if the caller also restores the
    counters — :meth:`snapshot`/:meth:`restore` support exactly that.
    """

    seed: int = 0
    _counters: dict[tuple[str, int], int] = field(default_factory=dict)

    def value(self, label: str, rank: int) -> int:
        """Next input value for (label, rank); bounded to [0, 2^31)."""
        key = (label, rank)
        occurrence = self._counters.get(key, 0)
        self._counters[key] = occurrence + 1
        return _mix(self.seed, hash(label) & _MASK, rank, occurrence)

    def snapshot(self, rank: int) -> dict[str, int]:
        """The occurrence counters of *rank* (for checkpointing)."""
        return {
            label: count
            for (label, r), count in self._counters.items()
            if r == rank
        }

    def restore(self, rank: int, counters: dict[str, int]) -> None:
        """Reset *rank*'s counters to a snapshot (for rollback)."""
        for key in [k for k in self._counters if k[1] == rank]:
            del self._counters[key]
        for label, count in counters.items():
            self._counters[(label, rank)] = count
