"""The MiniMP interpreter with an explicit, snapshot-able control stack.

Python generators cannot be copied, so a coroutine-style interpreter
could not support genuine checkpoint/restore. Instead, the interpreter
keeps its control state as an explicit stack of small frames (block
position, loop bookkeeping); :meth:`ProcessInterpreter.snapshot`
captures it (plus the variable environment) in O(stack) without copying
the shared AST, and :meth:`ProcessInterpreter.restore` rewinds to it.

Driving protocol::

    effect = interp.step()          # None when the program finished
    ...engine performs the effect...
    interp.deliver(value)           # only after a Recv/BcastRecv effect

This module is also the **backend seam**: :func:`make_backend` returns a
per-rank process factory for either execution backend —

- ``"compiled"`` (default): the closure/register machine from
  :mod:`repro.lang.compile`, which lowers the program once and binds it
  per rank;
- ``"reference"``: this tree-walking interpreter, retained as a
  differential oracle (the same pattern PR 5 used for the scheduler).

Both backends produce bit-identical :class:`ProcessSnapshot`\\ s and
identical effect streams; ``tests/runtime/test_backend_differential.py``
enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, NamedTuple

from repro.errors import SimulationError
from repro.lang import ast_nodes as ast
from repro.lang.builtins import call_builtin
from repro.runtime.effects import (
    BcastRecvEffect,
    BcastSendEffect,
    CheckpointEffect,
    ComputeEffect,
    Effect,
    LocalEffect,
    RecvEffect,
    SendEffect,
)
from repro.runtime.inputs import InputProvider


@dataclass
class _Frame:
    """One live control-stack entry of the reference interpreter.

    ``kind`` is ``"block"`` (executing ``block`` at ``index``),
    ``"while"`` (re-evaluating ``stmt``'s condition each pass), or
    ``"for"`` (``remaining`` iterations left of ``stmt``).
    """

    kind: str
    block: ast.Block | None = None
    index: int = 0
    stmt: ast.Stmt | None = None
    remaining: int = 0
    trip: int = 0


class FrameState(NamedTuple):
    """One frozen control-stack entry inside a :class:`ProcessSnapshot`.

    The compact (tuple) frame representation shared by both execution
    backends: an immutable record of a :class:`_Frame`, so snapshots
    tuple-freeze the stack instead of allocating mutable frame copies.
    Field names match ``_Frame`` — checkpoint payloads read
    ``kind``/``index``/``remaining``/``trip`` unchanged.
    """

    kind: str
    block: ast.Block | None = None
    index: int = 0
    stmt: ast.Stmt | None = None
    remaining: int = 0
    trip: int = 0


@dataclass(frozen=True)
class ProcessSnapshot:
    """A restorable snapshot of one process's state.

    Frames are tuple-frozen :class:`FrameState` records, the environment
    is copied, the AST is shared. ``checkpoint_count`` preserves dynamic
    checkpoint numbering across rollbacks; ``input_counters`` preserves
    the input stream position. ``pending_recv`` is the awaited variable
    when the snapshot was taken while blocked at a receive (protocols
    may checkpoint a blocked process); restoring such a snapshot
    re-enters the blocked state and the engine re-issues the receive.
    """

    env: dict[str, int]
    frames: tuple[FrameState, ...]
    checkpoint_count: int
    input_counters: dict[str, int]
    pending_recv: str | None = None


class ProcessInterpreter:
    """Executes one MiniMP process (a given rank) statement by statement."""

    def __init__(
        self,
        program: ast.Program,
        rank: int,
        nprocs: int,
        params: dict[str, int] | None = None,
        inputs: InputProvider | None = None,
    ) -> None:
        if not 0 <= rank < nprocs:
            raise SimulationError(f"rank {rank} out of range for {nprocs} processes")
        self.program = program
        self.rank = rank
        self.nprocs = nprocs
        self.inputs = inputs if inputs is not None else InputProvider()
        self.env: dict[str, int] = dict(params or {})
        self.checkpoint_count = 0
        self._stack: list[_Frame] = [_Frame(kind="block", block=program.body)]
        self._pending_recv: str | None = None
        # Checkpoint statement node_id -> provably-dead variable names
        # (set via configure_pruning; empty = prune nothing).
        self._dead_sets: dict[int, frozenset[str]] = {}

    # -- state queries --------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the program has run to completion."""
        return not self._stack

    @property
    def awaiting_delivery(self) -> bool:
        """True while blocked at a receive awaiting deliver()."""
        return self._pending_recv is not None

    # -- snapshot / restore -----------------------------------------------------

    def snapshot(self) -> ProcessSnapshot:
        """Capture current state (legal even while blocked at a recv)."""
        return ProcessSnapshot(
            env=dict(self.env),
            frames=tuple(
                FrameState(
                    f.kind, f.block, f.index, f.stmt, f.remaining, f.trip
                )
                for f in self._stack
            ),
            checkpoint_count=self.checkpoint_count,
            input_counters=self.inputs.snapshot(self.rank),
            pending_recv=self._pending_recv,
        )

    def configure_pruning(
        self, dead_sets: dict[int, frozenset[str]]
    ) -> None:
        """Install per-checkpoint dead-variable sets for pruned capture.

        *dead_sets* maps checkpoint statement ``node_id`` to the
        variables :mod:`repro.attributes.liveness` proved dead there.
        Only affects :meth:`snapshot_pruned`; plain :meth:`snapshot`
        always captures everything.
        """
        self._dead_sets = {
            stmt_id: dead for stmt_id, dead in dead_sets.items() if dead
        }

    def snapshot_pruned(self, stmt_id: int | None) -> ProcessSnapshot:
        """Snapshot with dead slots zeroed for the checkpoint *stmt_id*.

        Every variable keeps its entry (and insertion position — the
        restore contract needs the exact dict order), but slots proved
        dead at this checkpoint store a deterministic 0 instead of
        their value: restoring can only differ from a full snapshot in
        slots that are provably rewritten before any read.
        """
        snap = self.snapshot()
        dead = self._dead_sets.get(stmt_id)
        if dead:
            # Direct __dict__ write: the dataclass is frozen, and the
            # surrounding fields (frames, counters) stay shared.
            snap.__dict__["env"] = {
                name: (0 if name in dead else value)
                for name, value in snap.env.items()
            }
        return snap

    def restore(self, snap: ProcessSnapshot) -> None:
        """Rewind to *snap* (rollback or restart after a failure)."""
        self.env = dict(snap.env)
        self._stack = [
            _Frame(f.kind, f.block, f.index, f.stmt, f.remaining, f.trip)
            for f in snap.frames
        ]
        self.checkpoint_count = snap.checkpoint_count
        self._pending_recv = snap.pending_recv
        self.inputs.restore(self.rank, dict(snap.input_counters))

    # -- execution ----------------------------------------------------------------

    def step(self) -> Effect | None:
        """Advance to the next effect; ``None`` when the program is done.

        Raises if called while a receive is awaiting its delivery.
        """
        if self._pending_recv is not None:
            raise SimulationError("step() called while awaiting a delivery")
        while self._stack:
            frame = self._stack[-1]
            if frame.kind == "block":
                assert frame.block is not None
                if frame.index >= len(frame.block.statements):
                    self._stack.pop()
                    continue
                stmt = frame.block.statements[frame.index]
                frame.index += 1
                effect = self._execute(stmt)
                if effect is not None:
                    return effect
                continue
            if frame.kind == "while":
                assert isinstance(frame.stmt, ast.While)
                if self._truthy(frame.stmt.cond):
                    frame.trip += 1
                    self._stack.append(
                        _Frame(kind="block", block=frame.stmt.body)
                    )
                else:
                    self._stack.pop()
                continue
            if frame.kind == "for":
                assert isinstance(frame.stmt, ast.For)
                if frame.remaining > 0:
                    self.env[frame.stmt.var] = frame.trip
                    frame.remaining -= 1
                    frame.trip += 1
                    self._stack.append(
                        _Frame(kind="block", block=frame.stmt.body)
                    )
                else:
                    self._stack.pop()
                continue
            raise SimulationError(f"corrupt frame kind {frame.kind!r}")
        return None

    def deliver(self, value: int) -> None:
        """Complete a pending receive with *value*."""
        if self._pending_recv is None:
            raise SimulationError("deliver() without a pending receive")
        self.env[self._pending_recv] = value
        self._pending_recv = None

    # -- statement dispatch ----------------------------------------------------

    def _execute(self, stmt: ast.Stmt) -> Effect | None:
        if isinstance(stmt, ast.Assign):
            self.env[stmt.target] = self._eval(stmt.value)
            return LocalEffect(description=stmt.target)
        if isinstance(stmt, ast.Pass):
            return LocalEffect(description="pass")
        if isinstance(stmt, ast.Compute):
            return ComputeEffect(cost=float(self._eval(stmt.cost)))
        if isinstance(stmt, ast.Send):
            dest = self._eval(stmt.dest)
            self._check_rank(dest, stmt)
            return SendEffect(dest=dest, value=self._eval(stmt.value), stmt=stmt)
        if isinstance(stmt, ast.Recv):
            source = self._eval(stmt.source)
            self._check_rank(source, stmt)
            self._pending_recv = stmt.target
            return RecvEffect(source=source, target=stmt.target, stmt=stmt)
        if isinstance(stmt, ast.Bcast):
            root = self._eval(stmt.root)
            self._check_rank(root, stmt)
            if root == self.rank:
                value = self._eval(stmt.value)
                self.env[stmt.target] = value
                return BcastSendEffect(value=value, stmt=stmt)
            self._pending_recv = stmt.target
            return BcastRecvEffect(root=root, target=stmt.target, stmt=stmt)
        if isinstance(stmt, ast.Checkpoint):
            self.checkpoint_count += 1
            return CheckpointEffect(stmt=stmt)
        if isinstance(stmt, ast.If):
            block = stmt.then_block if self._truthy(stmt.cond) else stmt.else_block
            self._stack.append(_Frame(kind="block", block=block))
            return None
        if isinstance(stmt, ast.While):
            self._stack.append(_Frame(kind="while", stmt=stmt))
            return None
        if isinstance(stmt, ast.For):
            count = max(0, self._eval(stmt.count))
            self._stack.append(_Frame(kind="for", stmt=stmt, remaining=count))
            return None
        raise SimulationError(f"unknown statement {stmt!r}")

    def _check_rank(self, rank: int, stmt: ast.Stmt) -> None:
        if not 0 <= rank < self.nprocs:
            raise SimulationError(
                f"P{self.rank}: endpoint rank {rank} out of range "
                f"[0, {self.nprocs}) at line {stmt.line}"
            )

    def _truthy(self, expr: ast.Expr) -> bool:
        return self._eval(expr) != 0

    # -- expression evaluation ----------------------------------------------------

    def _eval(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Const):
            return expr.value
        if isinstance(expr, ast.MyRank):
            return self.rank
        if isinstance(expr, ast.NProcs):
            return self.nprocs
        if isinstance(expr, ast.InputData):
            return self.inputs.value(expr.label, self.rank)
        if isinstance(expr, ast.Name):
            try:
                return self.env[expr.ident]
            except KeyError:
                raise SimulationError(
                    f"P{self.rank}: unbound variable {expr.ident!r} "
                    f"at line {expr.line}"
                ) from None
        if isinstance(expr, ast.Call):
            args = [self._eval(a) for a in expr.args]
            return call_builtin(expr.func, args)
        if isinstance(expr, ast.UnaryOp):
            value = self._eval(expr.operand)
            return -value if expr.op == "-" else int(not value)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        raise SimulationError(f"unknown expression {expr!r}")

    def _eval_binop(self, expr: ast.BinOp) -> int:
        op = expr.op
        if op == "and":
            return self._eval(expr.right) if self._truthy(expr.left) else 0
        if op == "or":
            left = self._eval(expr.left)
            return left if left != 0 else self._eval(expr.right)
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op in ("/", "//"):
            if right == 0:
                raise SimulationError(
                    f"P{self.rank}: division by zero at line {expr.line}"
                )
            return left // right
        if op == "%":
            if right == 0:
                raise SimulationError(
                    f"P{self.rank}: modulo by zero at line {expr.line}"
                )
            return left % right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        raise SimulationError(f"unknown operator {op!r}")


# -- backend seam -------------------------------------------------------------

#: The recognised execution backends, in default-first order.
BACKENDS = ("compiled", "reference")

#: A per-rank process factory: (rank, params, inputs) -> process.
ProcessFactory = Callable[
    [int, "dict[str, int] | None", "InputProvider | None"],
    "ProcessInterpreter",
]


def make_backend(
    program: ast.Program, n_processes: int, backend: str = "compiled"
) -> ProcessFactory:
    """Build a per-rank process factory for the chosen *backend*.

    ``"compiled"`` lowers *program* once (shared across ranks) and binds
    closures per rank; ``"reference"`` constructs the tree-walking
    :class:`ProcessInterpreter`. Both factories expose the identical
    ``step``/``deliver``/``snapshot``/``restore`` surface.
    """
    if backend == "compiled":
        # Imported here: lang.compile imports this module for the
        # snapshot types, so a top-level import would be circular.
        from repro.lang.compile import compile_program

        compiled = compile_program(program, n_processes)

        def make_compiled(rank, params=None, inputs=None):
            return compiled.bind(rank, params=params, inputs=inputs)

        # Exposed so callers (the engine's opt-in ``compile.lower``
        # span, tests) can reach the shared lowering.
        make_compiled.compiled = compiled
        return make_compiled
    if backend == "reference":

        def make_reference(rank, params=None, inputs=None):
            return ProcessInterpreter(
                program, rank, n_processes, params=params, inputs=inputs
            )

        return make_reference
    raise SimulationError(
        f"unknown backend {backend!r} (expected 'compiled' or 'reference')"
    )
