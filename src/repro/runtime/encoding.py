"""Canonical binary encoding of checkpoint content.

One stable serialisation shared by every consumer of checkpoint bytes —
write-time checksums, replication quorums, torn-write staging, byte
accounting, and the delta encoder — replacing the earlier ``repr()``
hack, which was neither self-describing nor type-faithful (``repr``
cannot distinguish re-parsable equal values, and its output was never
decodable).

The format is a minimal tag–length–value scheme over the closed value
universe checkpoints actually contain (ints, bools, floats, strings,
``None``, tuples): deterministic (no hashes, no pointers, dict content
is emitted in a defined order by the record builders), self-delimiting
(decodable without an external schema), and canonical (equal values
encode to equal bytes; ``bool`` and ``int`` are distinct types so
``True`` and ``1`` do not collide).

Two record shapes exist on the wire:

- ``("full", ...)`` — the complete durable content of one checkpoint;
- ``("delta", ...)`` — only the fields changed since the *parent*
  checkpoint (the rank's previously published entry): changed/added
  environment slots, changed vector-clock components, changed channel
  cursors and input counters. Scalars and control frames are tiny and
  always stored whole. :func:`apply_delta` reconstructs the full record
  from a parent's (recursively reconstructed) full record; the result
  is byte-identical to encoding the checkpoint directly, which is what
  lets checksums be defined over *reconstructed* content.
"""

from __future__ import annotations

import struct

from repro.errors import StorageError

_PACK_F64 = struct.Struct(">d").pack
_UNPACK_F64 = struct.Struct(">d").unpack_from


def _varint(out: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _encode_into(out: bytearray, value) -> None:
    cls = value.__class__
    if cls is int:
        out.append(0x49)  # 'I'
        length = (value.bit_length() + 8) // 8
        out.append(length)
        out += value.to_bytes(length, "big", signed=True)
    elif cls is str:
        out.append(0x53)  # 'S'
        raw = value.encode("utf-8")
        _varint(out, len(raw))
        out += raw
    elif cls is tuple:
        out.append(0x54)  # 'T'
        _varint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif cls is bool:
        out.append(0x42)  # 'B'
        out.append(1 if value else 0)
    elif cls is float:
        out.append(0x46)  # 'F'
        out += _PACK_F64(value)
    elif value is None:
        out.append(0x4E)  # 'N'
    else:
        raise StorageError(
            f"value of type {cls.__name__} is not checkpoint-encodable"
        )


def encode_record(record) -> bytes:
    """Canonical bytes of one (full or delta) checkpoint record."""
    out = bytearray()
    _encode_into(out, record)
    return bytes(out)


def _decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _decode_from(data: bytes, pos: int) -> tuple[object, int]:
    tag = data[pos]
    pos += 1
    if tag == 0x49:
        length = data[pos]
        pos += 1
        return int.from_bytes(data[pos : pos + length], "big", signed=True), \
            pos + length
    if tag == 0x53:
        length, pos = _decode_varint(data, pos)
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag == 0x54:
        count, pos = _decode_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == 0x42:
        return bool(data[pos]), pos + 1
    if tag == 0x46:
        return _UNPACK_F64(data, pos)[0], pos + 8
    if tag == 0x4E:
        return None, pos
    raise StorageError(f"corrupt checkpoint encoding (tag 0x{tag:02x})")


def decode_record(data: bytes):
    """Inverse of :func:`encode_record` (raises on trailing garbage)."""
    record, pos = _decode_from(data, 0)
    if pos != len(data):
        raise StorageError(
            f"corrupt checkpoint encoding ({len(data) - pos} trailing bytes)"
        )
    return record


# ----------------------------------------------------------------------
# Record builders
# ----------------------------------------------------------------------


def checkpoint_record(checkpoint) -> tuple:
    """The complete durable content of *checkpoint* as a ``full`` record.

    Covers everything recovery depends on (snapshot, clock, cursors,
    numbering) but excludes in-memory-only fields (``blocked_effect``
    holds an AST-bearing effect object; the shared AST is not
    serialised, matching how :class:`ProcessSnapshot` shares it).
    Environment slots appear in insertion order — the order restore
    must rebuild — while the unordered maps (input counters, channel
    cursors) are emitted sorted. The originating statement is carried
    as ``stmt_label`` (its document-order ordinal), not ``stmt_id``:
    node ids come from a process-global counter, so encoding them
    would make durable byte counts depend on unrelated parses earlier
    in the same process.
    """
    snapshot = checkpoint.snapshot
    return (
        "full",
        checkpoint.rank,
        checkpoint.number,
        tuple(snapshot.env.items()),
        tuple(
            (f.kind, f.index, f.remaining, f.trip) for f in snapshot.frames
        ),
        snapshot.checkpoint_count,
        tuple(sorted(snapshot.input_counters.items())),
        snapshot.pending_recv,
        tuple(checkpoint.clock.components),
        checkpoint.time,
        tuple(sorted(checkpoint.channel_cursors.items())),
        checkpoint.stmt_label,
        checkpoint.tag,
    )


def delta_encodable(checkpoint, parent) -> bool:
    """Whether *checkpoint* can be stored as a delta against *parent*.

    The delta scheme requires the parent's environment slots to be a
    *prefix* of the child's (forward execution only appends or updates
    slots; the engine re-bases its parent pointer on every rollback, so
    this holds by construction — checked anyway, because storing an
    undecodable delta would be a silent-corruption bug), matching clock
    widths, and no disappearing cursor/input keys.
    """
    if parent.rank != checkpoint.rank:
        return False
    snap = checkpoint.snapshot
    psnap = parent.snapshot
    parent_names = list(psnap.env)
    if list(snap.env)[: len(parent_names)] != parent_names:
        return False
    if len(parent.clock.components) != len(checkpoint.clock.components):
        return False
    if not set(psnap.input_counters) <= set(snap.input_counters):
        return False
    if not set(parent.channel_cursors) <= set(checkpoint.channel_cursors):
        return False
    return True


def _changed(new: dict, old: dict) -> tuple:
    """``(key, value)`` pairs of *new* absent-or-different in *old*.

    Comparison is type-strict (``True`` vs ``1`` counts as a change) so
    reconstruction is byte-identical, not merely ``==``.
    """
    missing = object()
    get = old.get
    changes = []
    for key, value in new.items():
        previous = get(key, missing)
        if previous.__class__ is not value.__class__ or previous != value:
            changes.append((key, value))
    return tuple(changes)


def delta_record(checkpoint, parent) -> tuple:
    """*checkpoint* as a ``delta`` record against *parent*.

    Only call after :func:`delta_encodable` returned True.
    """
    snap = checkpoint.snapshot
    psnap = parent.snapshot
    parent_clock = parent.clock.components
    clock_changes = tuple(
        (index, value)
        for index, value in enumerate(checkpoint.clock.components)
        if parent_clock[index] != value
    )
    return (
        "delta",
        checkpoint.rank,
        checkpoint.number,
        parent.number,
        _changed(snap.env, psnap.env),
        tuple(
            (f.kind, f.index, f.remaining, f.trip) for f in snap.frames
        ),
        snap.checkpoint_count,
        _changed(snap.input_counters, psnap.input_counters),
        snap.pending_recv,
        clock_changes,
        checkpoint.time,
        _changed(checkpoint.channel_cursors, parent.channel_cursors),
        checkpoint.stmt_label,
        checkpoint.tag,
    )


def apply_delta(parent_record: tuple, delta: tuple) -> tuple:
    """Reconstruct a ``full`` record from its parent's full record.

    The output is byte-identical (under :func:`encode_record`) to
    :func:`checkpoint_record` of the original checkpoint: environment
    updates keep the parent's slot order and appends extend it, exactly
    as forward execution would have.
    """
    if parent_record[0] != "full" or delta[0] != "delta":
        raise StorageError("apply_delta needs a full parent and a delta child")
    (
        _kind, rank, number, parent_number, env_changes, frames,
        checkpoint_count, input_changes, pending_recv, clock_changes,
        time, cursor_changes, stmt_id, tag,
    ) = delta
    if parent_record[2] != parent_number or parent_record[1] != rank:
        raise StorageError(
            "delta does not chain to this parent",
            rank=rank, number=number,
        )
    env = dict(parent_record[3])
    for name, value in env_changes:
        env[name] = value
    inputs = dict(parent_record[6])
    for key, value in input_changes:
        inputs[key] = value
    clock = list(parent_record[8])
    for index, value in clock_changes:
        clock[index] = value
    cursors = dict(parent_record[10])
    for key, value in cursor_changes:
        cursors[key] = value
    return (
        "full",
        rank,
        number,
        tuple(env.items()),
        frames,
        checkpoint_count,
        tuple(sorted(inputs.items())),
        pending_recv,
        tuple(clock),
        time,
        tuple(sorted(cursors.items())),
        stmt_id,
        tag,
    )
