"""Reliable transport over an unreliable medium.

The system model (§2) assumes asynchronous, **reliable**, FIFO
channels. This module stops taking that on faith: it sits beneath
:class:`repro.runtime.network.Network` and *earns* the reliable-FIFO
contract over a medium that drops, duplicates, delays, corrupts, and
partitions frames (:class:`repro.runtime.failures.NetworkFaultEvent`).

The state machine is the classic positive-ACK one, simulated to
completion at send time (the engine is a discrete-event simulator, so
a transmission's whole future — retransmissions included — is a
deterministic function of the fault schedule):

- every application message becomes one **data frame** carrying a
  per-channel sequence number and a CRC-32 over ``(seq, payload)``;
- the sender fires the frame, arms a retransmission timer at
  ``rto_factor x latency``, and **doubles** the timeout on every
  retry (mirroring the storage retry backoff in ``engine.py``), all
  charged to the simulated clock via later arrival times;
- the receiver CRC-checks each copy, discards corrupt ones, suppresses
  duplicates by sequence number, holds out-of-order frames in a
  reorder buffer until the gap fills, and answers every intact copy
  with a **cumulative ACK**;
- the sender stops retransmitting as soon as an ACK for the frame
  gets back; ACKs lost to partitions simply leave the timer running.

Everything above the transport keeps seeing reliable FIFO channels:
``Network``'s append-only logs, cut-rollback semantics, and the
protocols are untouched. Transport activity is metered in
:class:`TransportStats` and surfaced through
:class:`~repro.runtime.engine.SimulationStats`.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

from repro.errors import ChannelError, SimulationError
from repro.runtime.failures import NetworkFaultEvent, NetworkFaultKind


def frame_checksum(seq: int, value: int) -> int:
    """CRC-32 over a data frame's ``(seq, payload)`` wire content."""
    return zlib.crc32(repr((seq, value)).encode())


@dataclass(frozen=True)
class TransportConfig:
    """Tunables of the reliable transport.

    Attributes:
        rto_factor: Initial retransmission timeout as a multiple of the
            channel's one-way latency. Must exceed 2 (a round trip), so
            a fault-free exchange always beats the first timer and
            fault-free runs stay retransmission-free.
        max_attempts: Transmission attempts per frame before the
            transport gives up with a :class:`~repro.errors.ChannelError`
            (the guard against unhealed partitions).
        dedup: Receiver-side duplicate suppression. Disable **only in
            tests** — the chaos harness flips this off to prove the
            reliability claims genuinely depend on it.
        duplicate_gap: Arrival spacing of a duplicated frame's second
            copy behind its first.
    """

    rto_factor: float = 3.0
    max_attempts: int = 64
    dedup: bool = True
    duplicate_gap: float = 0.01

    def __post_init__(self) -> None:
        if self.rto_factor <= 2.0:
            raise SimulationError(
                f"rto_factor must exceed 2 (a round trip), got "
                f"{self.rto_factor}"
            )
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.duplicate_gap < 0:
            raise SimulationError(
                f"duplicate_gap must be >= 0, got {self.duplicate_gap}"
            )


@dataclass
class TransportStats:
    """Counters of transport activity beneath the reliable façade."""

    frames_sent: int = 0        # data-frame transmissions, retries included
    retransmits: int = 0        # timer-driven re-sends
    dropped_frames: int = 0     # lost to drop faults or partitions
    corrupt_frames: int = 0     # CRC-rejected at the receiver
    delayed_frames: int = 0     # held on the wire by a delay fault
    duplicate_frames: int = 0   # extra copies the medium created
    dups_suppressed: int = 0    # receiver-side sequence-number dedup hits
    ack_frames: int = 0         # cumulative ACKs receivers put on the wire
    acks_lost: int = 0          # ACKs lost to partitions

    def as_tuple(self) -> tuple[int, ...]:
        """All counters in declaration order (for byte-identity checks)."""
        return (
            self.frames_sent, self.retransmits, self.dropped_frames,
            self.corrupt_frames, self.delayed_frames, self.duplicate_frames,
            self.dups_suppressed, self.ack_frames, self.acks_lost,
        )


class NetworkFaultInjector:
    """Deterministic per-frame fault oracle built from a fault schedule.

    One-shot events arm at their ``time`` and are consumed by the first
    matching frame transmission at or after it (in transmission order,
    like the storage write faults in the engine). Partition/heal pairs
    become blackout windows per unordered rank pair; both data frames
    and ACKs launched inside a window are lost.
    """

    def __init__(self, events: list[NetworkFaultEvent] | None = None) -> None:
        events = list(events or [])
        self._armed: list[NetworkFaultEvent] = sorted(
            (e for e in events if e.kind not in (
                NetworkFaultKind.PARTITION, NetworkFaultKind.HEAL,
            )),
            key=lambda e: (e.time, e.src, e.dst, e.kind.value),
        )
        self._windows: dict[tuple[int, int], list[tuple[float, float]]] = {}
        opens: dict[tuple[int, int], float] = {}
        for event in sorted(events, key=lambda e: e.time):
            if event.kind is NetworkFaultKind.PARTITION:
                opens[event.pair] = event.time
            elif event.kind is NetworkFaultKind.HEAL:
                start = opens.pop(event.pair, None)
                if start is None:
                    raise SimulationError(
                        f"heal of pair {event.pair} at time {event.time} "
                        "closes no open partition"
                    )
                self._windows.setdefault(event.pair, []).append(
                    (start, event.time)
                )
        for pair, start in opens.items():
            # An unhealed partition blacks the pair out forever.
            self._windows.setdefault(pair, []).append((start, math.inf))

    @property
    def has_faults(self) -> bool:
        """Whether any fault (armed or windowed) exists at all."""
        return bool(self._armed) or bool(self._windows)

    def partitioned(self, a: int, b: int, now: float) -> bool:
        """Whether the pair ``{a, b}`` is inside a blackout at *now*."""
        pair = (min(a, b), max(a, b))
        return any(
            start <= now < end
            for start, end in self._windows.get(pair, ())
        )

    def take(self, src: int, dst: int, now: float) -> NetworkFaultEvent | None:
        """Pop the first armed one-shot fault matching this transmission."""
        for position, event in enumerate(self._armed):
            if event.time > now:
                break
            if event.src == src and event.dst == dst:
                return self._armed.pop(position)
        return None


@dataclass
class _ChannelTransport:
    """Per-channel transport state (sender and receiver ends)."""

    next_seq: int = 0          # sender: next sequence number to assign
    delivered_seq: int = -1    # receiver: highest in-order seq released
    last_delivery: float = 0.0  # receiver: release time of that seq


@dataclass(frozen=True)
class Delivery:
    """Outcome of one reliable transmission.

    ``delivery_time`` is when the receiver releases the payload to the
    application — after CRC checks, dedup, reordering, and however many
    retransmissions the fault schedule forced. ``extra_copies`` is
    empty unless dedup is disabled, in which case it lists the arrival
    times of duplicate copies the receiver failed to suppress.
    """

    delivery_time: float
    seq: int
    attempts: int
    extra_copies: tuple[float, ...] = ()


class ReliableTransport:
    """The reliable-FIFO transport under every :class:`Network` channel."""

    def __init__(
        self,
        injector: NetworkFaultInjector | None = None,
        config: TransportConfig | None = None,
        observer=None,
    ) -> None:
        self.injector = injector if injector is not None \
            else NetworkFaultInjector()
        self.config = config if config is not None else TransportConfig()
        self.stats = TransportStats()
        self.obs = observer
        self._channels: dict[tuple[int, int, str], _ChannelTransport] = {}

    def transmit(
        self,
        src: int,
        dst: int,
        lane: str,
        value: int,
        send_time: float,
        latency: float,
    ) -> Delivery:
        """Push one payload through the lossy medium until ACKed.

        Simulates the whole exchange — transmissions, losses,
        retransmission timers with exponential backoff, receiver-side
        CRC/dedup/reordering, cumulative ACKs — and returns the
        resulting :class:`Delivery`. Raises
        :class:`~repro.errors.ChannelError` when ``max_attempts``
        transmissions all fail (an unhealed partition, in practice).
        """
        state = self._channels.setdefault(
            (src, dst, lane), _ChannelTransport()
        )
        seq = state.next_seq
        state.next_seq += 1
        if (
            self.obs is None
            and not self.injector.has_faults
            and self.config.rto_factor >= 2.0
        ):
            # Fault-free, untraced wire: exactly one attempt fires (the
            # first ACK lands at send+2·latency, before any retransmit
            # timer with rto_factor >= 2 expires), the copy arrives
            # intact, and its ACK gets through — so the whole exchange
            # collapses to one arrival plus the reorder-buffer floor,
            # with the same stats the general loop would record.
            self.stats.frames_sent += 1
            self.stats.ack_frames += 1
            arrival = send_time + latency
            delivery = (
                arrival if arrival > state.last_delivery
                else state.last_delivery
            )
            state.delivered_seq = seq
            state.last_delivery = delivery
            result = Delivery.__new__(Delivery)
            result.__dict__.update(
                delivery_time=delivery, seq=seq, attempts=1, extra_copies=()
            )
            return result
        crc = frame_checksum(seq, value)
        rto = self.config.rto_factor * latency
        attempt_time = send_time
        first_ack = math.inf
        arrivals: list[float] = []
        attempts = 0
        while attempt_time < first_ack:
            if attempts >= self.config.max_attempts:
                raise ChannelError(
                    f"reliable transport gave up on seq {seq} after "
                    f"{attempts} attempts (unhealed partition?)",
                    src=src, dst=dst, lane=lane,
                )
            attempts += 1
            self.stats.frames_sent += 1
            if attempts > 1:
                self.stats.retransmits += 1
            if self.obs is not None:
                self.obs.emit(
                    "transport", "frame", src, attempt_time,
                    dst=dst, lane=lane, seq=seq, attempt=attempts,
                )
            for arrival in self._attempt(
                src, dst, seq, value, crc, attempt_time, latency
            ):
                arrivals.append(arrival)
                # Every intact copy is (re-)ACKed cumulatively; an ACK
                # launched inside a partition window is lost and the
                # sender's timer keeps running.
                self.stats.ack_frames += 1
                if self.injector.partitioned(dst, src, arrival):
                    self.stats.acks_lost += 1
                    if self.obs is not None:
                        self.obs.emit(
                            "transport", "ack-lost", dst, arrival,
                            peer=src, lane=lane, seq=seq,
                        )
                else:
                    first_ack = min(first_ack, arrival + latency)
                    if self.obs is not None:
                        self.obs.emit(
                            "transport", "ack", dst, arrival,
                            peer=src, lane=lane, seq=seq,
                        )
            attempt_time += rto
            rto *= 2.0
        arrivals.sort()
        first, extras = arrivals[0], arrivals[1:]
        if self.config.dedup:
            self.stats.dups_suppressed += len(extras)
            extras = []
        # Reorder buffer: the payload is released to the application
        # only once every earlier seq on the channel has been, so a
        # delayed predecessor holds this frame back.
        delivery = max(first, state.last_delivery)
        state.delivered_seq = seq
        state.last_delivery = delivery
        return Delivery(
            delivery_time=delivery,
            seq=seq,
            attempts=attempts,
            extra_copies=tuple(max(e, delivery) for e in extras),
        )

    def _attempt(
        self,
        src: int,
        dst: int,
        seq: int,
        value: int,
        crc: int,
        when: float,
        latency: float,
    ) -> list[float]:
        """Arrival times of intact copies from one wire transmission."""
        if self.injector.partitioned(src, dst, when):
            self.stats.dropped_frames += 1
            self._emit_fault("drop", src, dst, seq, when, partition=1)
            return []
        fault = self.injector.take(src, dst, when)
        kind = fault.kind if fault is not None else None
        if kind is NetworkFaultKind.DROP:
            self.stats.dropped_frames += 1
            self._emit_fault("drop", src, dst, seq, when)
            return []
        if kind is NetworkFaultKind.CORRUPT:
            # Genuine corruption detection: flip one payload bit and
            # let the receiver's CRC catch the mismatch.
            corrupted = value ^ (1 << (seq % 31))
            if frame_checksum(seq, corrupted) != crc:
                self.stats.corrupt_frames += 1
                self._emit_fault("corrupt", src, dst, seq, when)
                return []
        arrival = when + latency
        if kind is NetworkFaultKind.DELAY:
            self.stats.delayed_frames += 1
            arrival += fault.delay
            self._emit_fault("delay", src, dst, seq, when, delay=fault.delay)
        copies = [arrival]
        if kind is NetworkFaultKind.DUPLICATE:
            self.stats.duplicate_frames += 1
            self._emit_fault("duplicate", src, dst, seq, when)
            copies.append(arrival + self.config.duplicate_gap)
        return copies

    def _emit_fault(
        self, name: str, src: int, dst: int, seq: int, when: float,
        **fields,
    ) -> None:
        """Publish one medium-fault event (no-op when untraced)."""
        if self.obs is not None:
            self.obs.emit(
                "transport", name, src, when, dst=dst, seq=seq, **fields
            )

    def rebase(self, key: tuple[int, int, str], restart_time: float) -> None:
        """Reset a channel's delivery floor after a rollback.

        Sequence numbers keep rising across incarnations (a number is
        never reused), so stale duplicates from before the cut can
        never be mistaken for post-rollback traffic.
        """
        state = self._channels.get(key)
        if state is not None:
            state.last_delivery = restart_time
