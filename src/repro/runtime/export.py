"""Trace serialisation.

Executions serialise to plain JSON-compatible dictionaries so traces
can be archived, diffed across runs, or consumed by external tooling.
The round-trip is exact: ``import_trace(export_trace(t))`` reproduces
every event (the test suite checks this property-style).
"""

from __future__ import annotations

import json
from typing import Any

from repro.causality.records import EventKind, TraceEvent
from repro.causality.vector_clock import VectorClock
from repro.errors import SimulationError
from repro.runtime.trace import ExecutionTrace

FORMAT_VERSION = 1


def export_trace(trace: ExecutionTrace) -> dict[str, Any]:
    """Serialise *trace* into a JSON-compatible dictionary."""
    return {
        "format": FORMAT_VERSION,
        "n_processes": trace.n_processes,
        "events": [_event_to_dict(event) for event in trace.events],
    }


def import_trace(data: dict[str, Any]) -> ExecutionTrace:
    """Rebuild an :class:`ExecutionTrace` from exported *data*."""
    if data.get("format") != FORMAT_VERSION:
        raise SimulationError(
            f"unsupported trace format {data.get('format')!r}"
        )
    trace = ExecutionTrace(n_processes=int(data["n_processes"]))
    for entry in data["events"]:
        event = _event_from_dict(entry)
        # Preserve original sequence numbers exactly rather than
        # re-deriving them through append().
        trace.events.append(event)
        trace._seq[event.process] = max(
            trace._seq.get(event.process, 0), event.seq + 1
        )
    return trace


def trace_to_json(trace: ExecutionTrace, indent: int | None = None) -> str:
    """Serialise *trace* to a JSON string."""
    return json.dumps(export_trace(trace), indent=indent)


def trace_from_json(text: str) -> ExecutionTrace:
    """Parse a trace previously produced by :func:`trace_to_json`."""
    return import_trace(json.loads(text))


def _event_to_dict(event: TraceEvent) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "kind": event.kind.value,
        "process": event.process,
        "seq": event.seq,
        "time": event.time,
        "clock": list(event.clock.components),
    }
    if event.message_id is not None:
        payload["message_id"] = event.message_id
    if event.peer is not None:
        payload["peer"] = event.peer
    if event.checkpoint_number is not None:
        payload["checkpoint_number"] = event.checkpoint_number
    if event.stmt_id is not None:
        payload["stmt_id"] = event.stmt_id
    return payload


def _event_from_dict(data: dict[str, Any]) -> TraceEvent:
    try:
        kind = EventKind(data["kind"])
        return TraceEvent(
            kind=kind,
            process=int(data["process"]),
            seq=int(data["seq"]),
            time=float(data["time"]),
            clock=VectorClock(tuple(int(c) for c in data["clock"])),
            message_id=data.get("message_id"),
            peer=data.get("peer"),
            checkpoint_number=data.get("checkpoint_number"),
            stmt_id=data.get("stmt_id"),
        )
    except (KeyError, ValueError) as error:
        raise SimulationError(f"malformed trace event: {error}") from error
