"""Execution traces: the recorded local histories of a run.

The trace is the bridge between the simulator and the causality
analyses: every traced event carries a vector clock, so straight cuts,
recovery lines, and rollback graphs are all computable offline from the
trace alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.causality.cuts import (
    CheckpointCut,
    checkpoints_by_process,
    cut_is_consistent,
    max_straight_cut_index,
    straight_cut,
)
from repro.causality.records import EventKind, TraceEvent
from repro.causality.vector_clock import VectorClock


@dataclass
class ExecutionTrace:
    """All events of one simulation, in global append order.

    ``observer`` is the optional observability bus: when set, every
    appended event is also published as a structured ``engine``
    category event (see :mod:`repro.obs`), making this single append
    point the engine's entire tap.
    """

    n_processes: int
    events: list[TraceEvent] = field(default_factory=list)
    _seq: dict[int, int] = field(default_factory=dict)
    observer: object | None = field(default=None, repr=False, compare=False)

    def append(
        self,
        kind: EventKind,
        process: int,
        time: float,
        clock: VectorClock,
        message_id: int | None = None,
        peer: int | None = None,
        checkpoint_number: int | None = None,
        stmt_id: int | None = None,
    ) -> TraceEvent:
        """Record an event, assigning its local-history sequence number."""
        seq = self._seq.get(process, 0)
        self._seq[process] = seq + 1
        # Build the frozen event through __dict__ directly: the engine
        # appends one event per traced effect, and the generated frozen
        # __init__ (object.__setattr__ per field) costs ~3x this path.
        event = TraceEvent.__new__(TraceEvent)
        event.__dict__.update(
            kind=kind,
            process=process,
            seq=seq,
            time=time,
            clock=clock,
            message_id=message_id,
            peer=peer,
            checkpoint_number=checkpoint_number,
            stmt_id=stmt_id,
        )
        self.events.append(event)
        if self.observer is not None:
            self.observer.emit_trace_event(event)
        return event

    # -- queries ---------------------------------------------------------------

    def events_for(self, process: int) -> list[TraceEvent]:
        """The local history of *process*, in order."""
        return [e for e in self.events if e.process == process]

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All events of the given *kind*."""
        return [e for e in self.events if e.kind is kind]

    def checkpoint_events(self) -> dict[int, list[TraceEvent]]:
        """Checkpoint events grouped by process."""
        return checkpoints_by_process(self.events)

    def straight_cut(self, index: int) -> CheckpointCut | None:
        """The straight cut ``R_index`` over this trace (1-based)."""
        return straight_cut(
            self.events, index, processes=list(range(self.n_processes))
        )

    def max_straight_cut_index(self) -> int:
        """The largest ``i`` for which ``R_i`` exists."""
        return max_straight_cut_index(
            self.events, list(range(self.n_processes))
        )

    def all_straight_cuts(self) -> list[CheckpointCut]:
        """Every existing straight cut, ``R_1 .. R_max``."""
        cuts = []
        for index in range(1, self.max_straight_cut_index() + 1):
            cut = self.straight_cut(index)
            if cut is not None:
                cuts.append(cut)
        return cuts

    def all_straight_cuts_consistent(self) -> bool:
        """True iff every straight cut of this trace is a recovery line.

        This is the executable form of the paper's safety guarantee
        (Theorem 3.2): after Phase III, it must hold on every trace.
        """
        return all(cut_is_consistent(cut) for cut in self.all_straight_cuts())

    def message_count(self) -> int:
        """Number of application messages received in the trace."""
        return sum(1 for e in self.events if e.kind is EventKind.RECV)

    def completion_time(self) -> float:
        """Time of the last event (0.0 for an empty trace)."""
        return max((e.time for e in self.events), default=0.0)
