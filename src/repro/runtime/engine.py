"""The discrete-event simulation engine.

Each process executes its MiniMP interpreter one effect at a time; the
engine charges simulated time per effect, routes messages over the FIFO
network, maintains vector clocks, records the trace, takes snapshots to
stable storage, injects crashes from the failure plan, and dispatches
protocol hooks (control messages, timers, forced checkpoints, pausing,
rollback).

Scheduling picks the globally earliest actionable item — a runnable
process (at its local clock), a blocked process whose awaited message
has arrived, a control-message arrival, a timer, or a crash — which
yields a causally consistent interleaving: an item executed at time
``t`` can only be affected by items at times ``<= t``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.causality.records import EventKind
from repro.causality.vector_clock import VectorClock
from repro.errors import (
    DeadlockError,
    NestedFailureError,
    RecoveryControlError,
    RecoveryError,
    SimulationError,
    StorageError,
    TransientStorageError,
    UnrecoverableError,
)
from repro.lang import ast_nodes as ast
from repro.runtime.effects import (
    BcastRecvEffect,
    BcastSendEffect,
    CheckpointEffect,
    ComputeEffect,
    Effect,
    LocalEffect,
    RecvEffect,
    SendEffect,
)
from repro.runtime.failures import (
    FailurePlan,
    FaultKind,
    NetworkFaultEvent,
    RecoveryFaultEvent,
    RecoveryFaultKind,
    StorageFaultEvent,
)
from repro.runtime.hooks import ControlMessage, NullProtocol, ProtocolHooks
from repro.runtime.inputs import InputProvider
from repro.runtime.interpreter import ProcessInterpreter, make_backend
from repro.runtime.network import Message, Network
from repro.runtime.encoding import delta_encodable
from repro.runtime.storage import (
    DELTA_CHAIN_CAP,
    CheckpointStore,
    ReplicatedCheckpointStore,
    RetentionPolicy,
    StableStorage,
    StoredCheckpoint,
)
from repro.runtime.trace import ExecutionTrace
from repro.runtime.transport import NetworkFaultInjector, TransportConfig

#: Recognised checkpoint-content modes, default first. "pruned" zeroes
#: liveness-proven dead env slots at application checkpoints; "delta"
#: stores per-rank change records against the previous published
#: checkpoint; "pruned+delta" composes both.
CHECKPOINT_MODES = ("full", "pruned", "delta", "pruned+delta")


@dataclass(frozen=True)
class RuntimeCosts:
    """Per-effect time charges, in simulated seconds.

    Defaults scale the paper's Starfish constants down so simulations
    of hundreds of iterations stay fast; the ratios are what matter.
    """

    local_statement: float = 0.01
    send_overhead: float = 0.05
    recv_overhead: float = 0.05
    compute_unit: float = 0.2
    checkpoint_overhead: float = 1.0       # the paper's o
    recovery_overhead: float = 2.0         # the paper's R
    control_latency: float = 0.05          # transit time of a control message
    storage_retry_backoff: float = 0.25    # base of the exponential backoff


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/backoff policy of the :class:`RecoverySupervisor`.

    Attributes:
        max_attempts: Recovery attempts per crash before the supervisor
            declares the rank unrecoverable.
        backoff_base: Simulated seconds charged before the second
            attempt; attempt ``k`` waits ``base * factor**(k-1)``.
        backoff_factor: Exponential growth of the backoff.
        escalate_fallback: Whether each retry asks the protocol for a
            one-number-deeper degraded cut (R_i -> R_{i-k}), on top of
            whatever degradation corruption already forces.
    """

    max_attempts: int = 4
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    escalate_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise SimulationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1:
            raise SimulationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )


@dataclass
class SimulationStats:
    """Aggregate counters of one run."""

    app_messages: int = 0
    control_messages: int = 0
    checkpoints: int = 0
    forced_checkpoints: int = 0
    failures: int = 0
    rollbacks: int = 0
    lost_work: float = 0.0
    completed: bool = False
    steps: int = 0
    # Storage-fault accounting (all zero under a fault-free plan).
    storage_write_failures: int = 0
    torn_writes: int = 0
    storage_retries: int = 0
    bit_rot_injected: int = 0
    corrupt_checkpoints: int = 0
    recovery_fallbacks: int = 0
    fallback_depths: list[int] = field(default_factory=list)
    # Recovery-supervisor accounting (all zero/False when recovery
    # never retried and never gave up).
    recovery_attempts: int = 0
    recovery_retries: int = 0
    recovery_backoff_time: float = 0.0
    nested_crashes: int = 0
    recovery_control_lost: int = 0
    recovery_read_faults: int = 0
    unrecoverable: bool = False
    # Storage occupancy and retention GC (measured at run end).
    stored_checkpoints: int = 0
    stored_bytes: int = 0
    gc_collected: int = 0
    gc_reclaimed_bytes: int = 0
    # Transport accounting (all zero under a fault-free network, except
    # the frame/ACK traffic every message generates).
    frames_sent: int = 0
    retransmits: int = 0
    dropped_frames: int = 0
    corrupt_frames: int = 0
    delayed_frames: int = 0
    duplicate_frames: int = 0
    dups_suppressed: int = 0
    ack_frames: int = 0
    acks_lost: int = 0

    @property
    def max_fallback_depth(self) -> int:
        """Deepest degraded-recovery fallback seen (0 = never degraded)."""
        return max(self.fallback_depths, default=0)

    def as_dict(self) -> dict:
        """JSON-ready form of every counter, derived properties included.

        The machine-readable shape behind the CLI's ``--stats-json``:
        all dataclass fields plus ``max_fallback_depth``, so benchmarks
        and CI never have to parse the human-oriented table output.
        """
        from dataclasses import asdict

        payload = asdict(self)
        payload["max_fallback_depth"] = self.max_fallback_depth
        return payload


@dataclass
class SimulationResult:
    """Everything a finished run exposes.

    ``verdict`` is ``"completed"`` for a clean finish, ``"incomplete"``
    for a ``max_time`` cutoff, and ``"unrecoverable"`` when the
    recovery supervisor gave up — the run still returns normally with
    full stats and storage, instead of raising out of :meth:`run`.
    """

    trace: ExecutionTrace
    stats: SimulationStats
    storage: StableStorage
    final_env: dict[int, dict[str, int]]
    completion_time: float
    verdict: str = "completed"


_INF = float("inf")


class _Status:
    READY = "ready"
    BLOCKED = "blocked"
    PAUSED = "paused"
    CRASHED = "crashed"
    DONE = "done"


@dataclass
class _Proc:
    rank: int
    interp: ProcessInterpreter
    clock: float = 0.0
    status: str = _Status.READY
    blocked_effect: Effect | None = None
    paused: bool = False
    # Bound ``interp.step_local`` when the backend provides one (the
    # compiled backend's pure-local fast path), else None. Cached here
    # because the run loop would otherwise getattr() per dispatch; the
    # interp object lives for the whole simulation (recovery restores
    # state in place), so the bound method can never go stale.
    fast_local: object = None


class RecoverySupervisor:
    """Drives every protocol recovery with bounded retry + backoff.

    The engine routes each crash's ``on_failure`` through
    :meth:`recover`, which (1) injects the failure plan's
    recovery-scoped faults — nested crashes and lost control traffic
    interrupt the restore itself, restore-read faults are armed on the
    store — keyed by **recovery operation index** (the 0-based count of
    crash-triggered recoveries) so plans stay replayable even though
    backoff shifts absolute times; (2) retries retryable failures
    (:class:`NestedFailureError`, :class:`RecoveryControlError`,
    :class:`TransientStorageError`) up to ``max_attempts`` times with
    exponential backoff charged to the simulated clock; (3) escalates
    the degraded fallback one recovery line deeper per retry; and
    (4) converts exhaustion — or a terminal storage state — into a
    clean :class:`UnrecoverableError` verdict that :meth:`Simulation.run`
    turns into ``SimulationResult.verdict == "unrecoverable"``.

    Protocol-bug errors (a plain :class:`RecoveryError` such as "not a
    recovery line") are **not** retried and propagate unchanged.
    """

    def __init__(
        self,
        sim: "Simulation",
        config: SupervisorConfig,
        recovery_faults: list[RecoveryFaultEvent],
    ) -> None:
        self.sim = sim
        self.config = config
        self._by_recovery: dict[int, list[RecoveryFaultEvent]] = {}
        for fault in recovery_faults:
            self._by_recovery.setdefault(fault.recovery, []).append(fault)
        self.recovery_index = 0
        # Extra fallback depth the current attempt asks protocols for
        # (read via Simulation.recovery_escalation).
        self.escalation = 0
        # The disruption armed against the next restore, if any.
        self._pending: RecoveryFaultEvent | None = None
        # Deterministic id sequence for recovery.attempt span events.
        self._span_seq = 0

    def _emit_attempt_span(
        self, rank: int, start: float, end: float, attempt: int, outcome: str
    ) -> None:
        """Publish one recovery attempt as a ``span`` event.

        Emitted on the simulation's bus with **simulated** times only
        (start of the attempt; duration covers the backoff it charged),
        so span records are as replayable as every other engine event.
        """
        sim = self.sim
        if sim.obs is None:
            return
        span_id = self._span_seq
        self._span_seq += 1
        sim.obs.emit(
            "span", "recovery.attempt", rank, start,
            span_id=span_id, parent=None, dur=end - start,
            attempt=attempt, outcome=outcome,
        )

    def recover(self, rank: int, time: float) -> None:
        """Run the protocol's recovery for a crash of *rank* at *time*."""
        sim = self.sim
        index = self.recovery_index
        self.recovery_index += 1
        queue: list[RecoveryFaultEvent] = []
        for fault in self._by_recovery.get(index, []):
            if fault.kind is RecoveryFaultKind.READ_FAULT:
                arm = getattr(sim.storage, "arm_read_faults", None)
                if arm is not None:
                    arm(fault.rank, fault.attempts)
            else:
                # Validation sorted faults with crash-in-recovery ahead
                # of control-lost, so nested crashes disrupt first.
                queue.extend([fault] * fault.attempts)
        now = time
        attempt = 0
        cause: Exception | None = None
        while attempt < self.config.max_attempts:
            attempt += 1
            sim.stats.recovery_attempts += 1
            self.escalation = (
                attempt - 1 if self.config.escalate_fallback else 0
            )
            if self._pending is None and queue:
                self._pending = queue.pop(0)
            start = now
            try:
                sim.protocol.on_failure(sim, rank, now)
                self._emit_attempt_span(rank, start, now, attempt, "ok")
                return
            except (
                NestedFailureError,
                RecoveryControlError,
                TransientStorageError,
            ) as error:
                cause = error
                sim.stats.recovery_retries += 1
                backoff = self.config.backoff_base * (
                    self.config.backoff_factor ** (attempt - 1)
                )
                sim.stats.recovery_backoff_time += backoff
                if sim.obs is not None:
                    sim.obs.emit(
                        "engine", "recovery-retry", rank, now,
                        attempt=attempt, backoff=backoff, cause=str(error),
                    )
                now += backoff
                self._emit_attempt_span(rank, start, now, attempt, "retry")
            except UnrecoverableError as error:
                self._emit_attempt_span(
                    rank, start, now, attempt, "unrecoverable"
                )
                self._give_up(rank, attempt, error, now)
            except StorageError as error:
                # Non-transient storage failure at restore time: no
                # intact state is reachable, retrying cannot help.
                self._emit_attempt_span(
                    rank, start, now, attempt, "unrecoverable"
                )
                self._give_up(rank, attempt, error, now)
            finally:
                self.escalation = 0
                self._pending = None
        self._give_up(rank, attempt, cause, now)

    def interrupt_restore(self, at_time: float) -> None:
        """Fire the armed mid-restore disruption, if one is pending.

        Called by the engine at the top of every restore, before any
        state is mutated — so an interrupted attempt aborts atomically
        and the supervisor can simply re-drive it.
        """
        fault = self._pending
        if fault is None:
            return
        self._pending = None
        sim = self.sim
        if fault.kind is RecoveryFaultKind.CRASH:
            sim.stats.nested_crashes += 1
            if sim.obs is not None:
                sim.obs.emit(
                    "engine", "nested-crash", fault.rank, at_time,
                    recovery=fault.recovery,
                )
            raise NestedFailureError(
                f"rank {fault.rank} crashed again while recovery "
                f"{fault.recovery} was restoring"
            )
        sim.stats.recovery_control_lost += 1
        if sim.obs is not None:
            sim.obs.emit(
                "engine", "control-lost", fault.rank, at_time,
                recovery=fault.recovery,
            )
        raise RecoveryControlError(
            f"recovery control traffic lost while recovery "
            f"{fault.recovery} was restoring (rank {fault.rank})"
        )

    def _give_up(
        self, rank: int, attempt: int, cause: Exception | None, now: float
    ) -> None:
        sim = self.sim
        sim.stats.unrecoverable = True
        if sim.obs is not None:
            sim.obs.emit(
                "engine", "unrecoverable", rank, now,
                attempts=attempt, cause=str(cause),
            )
        raise UnrecoverableError(
            f"rank {rank} is unrecoverable after {attempt} attempt(s): "
            f"{cause}"
        ) from cause


class Simulation:
    """One configured run of a MiniMP program on ``n`` processes."""

    def __init__(
        self,
        program: ast.Program,
        n_processes: int,
        params: dict[str, int] | None = None,
        costs: RuntimeCosts = RuntimeCosts(),
        protocol: ProtocolHooks | None = None,
        failure_plan: FailurePlan | None = None,
        seed: int = 0,
        base_latency: float = 0.5,
        record_compute_events: bool = False,
        max_steps: int = 2_000_000,
        storage_replicas: int = 1,
        max_storage_retries: int = 3,
        transport_config: TransportConfig | None = None,
        observer=None,
        scheduler: str = "indexed",
        recovery: SupervisorConfig | None = None,
        retain_k: int | None = None,
        backend: str = "compiled",
        checkpoint_mode: str = "full",
    ) -> None:
        if n_processes < 1:
            raise SimulationError(f"need at least one process, got {n_processes}")
        if scheduler not in ("indexed", "reference"):
            raise SimulationError(
                f"unknown scheduler {scheduler!r} "
                "(expected 'indexed' or 'reference')"
            )
        if checkpoint_mode not in CHECKPOINT_MODES:
            raise SimulationError(
                f"unknown checkpoint_mode {checkpoint_mode!r} "
                f"(expected one of {', '.join(CHECKPOINT_MODES)})"
            )
        self._scheduler = scheduler
        self.checkpoint_mode = checkpoint_mode
        # Content minimisation knobs: "pruned" zeroes provably-dead env
        # slots at app checkpoints; "delta" stores only what changed
        # since the rank's previous published checkpoint.
        self._prune_snapshots = "pruned" in checkpoint_mode
        self._delta_payloads = "delta" in checkpoint_mode
        # Raises on an unknown backend; for "compiled" this is also
        # where the program is lowered, once, shared by every rank.
        process_factory = make_backend(program, n_processes, backend)
        self.backend = backend
        self._dead_sets: dict[int, frozenset[str]] = {}
        if self._prune_snapshots:
            # Imported here: the attributes package pulls in the CFG
            # machinery, which imports lang (and transitively this
            # module) — a top-level import would be circular.
            from repro.attributes.liveness import checkpoint_dead_sets

            # One liveness pass per simulation, shared by every rank;
            # both backends consume the same per-checkpoint dead sets.
            self._dead_sets = {
                stmt_id: dead
                for stmt_id, dead in checkpoint_dead_sets(program).items()
                if dead
            }
            # The compiled backend keeps register masks on the shared
            # lowered program; the reference backend is configured
            # per-interpreter once ``self.procs`` exists below.
            compiled = getattr(process_factory, "compiled", None)
            if compiled is not None:
                compiled.configure_pruning(self._dead_sets)
        if storage_replicas < 1:
            raise SimulationError(
                f"need at least one storage replica, got {storage_replicas}"
            )
        self.program = program
        self.n = n_processes
        self.costs = costs
        self.protocol = protocol if protocol is not None else NullProtocol()
        # The base on_effect hook is a no-op; detecting that once lets
        # the per-effect loop skip the call entirely for every shipped
        # protocol (none of them override it).
        self._observes_effects = (
            type(self.protocol).on_effect is not ProtocolHooks.on_effect
        )
        # Same trick for piggyback: the base hook returns {} and has no
        # side effects, so sends can skip the call (and the empty-dict
        # copy in the network layer) unless the protocol overrides it.
        self._has_piggyback = (
            type(self.protocol).piggyback is not ProtocolHooks.piggyback
        )
        self._sees_app_messages = (
            type(self.protocol).on_app_message
            is not ProtocolHooks.on_app_message
        )
        plan = failure_plan or FailurePlan.none()
        network_faults: list[NetworkFaultEvent] = list(
            getattr(plan, "network_faults", []) or []
        )
        for net_fault in network_faults:
            if net_fault.src >= n_processes or net_fault.dst >= n_processes:
                raise SimulationError(
                    f"network fault targets channel {net_fault.src}->"
                    f"{net_fault.dst} but the simulation has only "
                    f"{n_processes} processes"
                )
        self.obs = observer
        self.network = Network(
            n_processes,
            base_latency=base_latency,
            seed=seed,
            fault_injector=NetworkFaultInjector(network_faults),
            transport_config=transport_config,
            observer=observer,
        )
        if storage_replicas == 1:
            self.storage = CheckpointStore(max_retries=max_storage_retries)
        else:
            self.storage = ReplicatedCheckpointStore(
                replicas=storage_replicas, max_retries=max_storage_retries
            )
        self.storage.obs = observer
        self.trace = ExecutionTrace(
            n_processes=n_processes, observer=observer
        )
        self.stats = SimulationStats()
        self.record_compute_events = record_compute_events
        self._max_steps = max_steps
        self._inputs = InputProvider(seed=seed)
        self._clocks = [VectorClock.zero(n_processes) for _ in range(n_processes)]
        if observer is not None:
            observer.bind_clocks(self._clocks)
        self._message_clocks: dict[int, VectorClock] = {}
        self._control_queue: list[ControlMessage] = []
        self._timers: list[tuple[float, int, int, str]] = []
        self._timer_seq = 0
        self._crashes = list(plan.effective())
        storage_faults: list[StorageFaultEvent] = list(
            getattr(plan, "storage_faults", []) or []
        )
        for fault in storage_faults:
            if fault.rank >= n_processes:
                raise SimulationError(
                    f"storage fault targets rank {fault.rank} but the "
                    f"simulation has only {n_processes} processes"
                )
            if fault.replica >= storage_replicas:
                raise SimulationError(
                    f"storage fault targets replica {fault.replica} but "
                    f"storage has only {storage_replicas} replica(s)"
                )
        # Bit rot fires through the event loop; write faults arm and
        # wait for a matching checkpoint write.
        self._rot_events = sorted(
            (f for f in storage_faults if f.kind is FaultKind.BIT_ROT),
            key=lambda f: (f.time, f.rank),
        )
        self._write_faults = sorted(
            (f for f in storage_faults if f.kind is not FaultKind.BIT_ROT),
            key=lambda f: (f.time, f.rank),
        )
        # Per-rank pointer to the most recent *published* checkpoint —
        # the delta encoder's chain parent. Reset on restore, so chains
        # always rebase onto the surviving timeline.
        self._last_stored: dict[int, StoredCheckpoint] = {}
        # Document-order ordinal per checkpoint statement: the stable
        # identifier the wire encoding carries in place of the
        # process-global AST node id (see StoredCheckpoint.stmt_label).
        self._stmt_labels = {
            node.node_id: ordinal
            for ordinal, node in enumerate(
                n for n in ast.walk(program)
                if isinstance(n, ast.Checkpoint)
            )
        }
        recovery_faults: list[RecoveryFaultEvent] = list(
            getattr(plan, "recovery_faults", []) or []
        )
        for rec_fault in recovery_faults:
            if rec_fault.rank >= n_processes:
                raise SimulationError(
                    f"recovery fault targets rank {rec_fault.rank} but the "
                    f"simulation has only {n_processes} processes"
                )
        self.supervisor = RecoverySupervisor(
            self, recovery or SupervisorConfig(), recovery_faults
        )
        if retain_k is None:
            self._retention = None
        else:
            # Protect every degraded-fallback candidate the supervisor
            # could escalate to (one number deeper per retry).
            self._retention = RetentionPolicy(
                retain_k,
                protect_depth=max(1, self.supervisor.config.max_attempts - 1),
            )
        self.procs = [
            _Proc(
                rank=rank,
                interp=process_factory(rank, params, self._inputs),
            )
            for rank in range(n_processes)
        ]
        for proc in self.procs:
            proc.fast_local = getattr(proc.interp, "step_local", None)
        if self._dead_sets and getattr(process_factory, "compiled", None) is None:
            # Reference backend: each interpreter holds its own copy of
            # the shared dead-set table (the compiled backend was
            # configured once on the shared program above).
            for proc in self.procs:
                proc.interp.configure_pruning(self._dead_sets)
        # Backend diagnostics are strictly opt-in: an unconditional
        # backend-identifying event would break the byte-identical
        # cross-backend JSONL contract, so the bus must declare
        # ``wants_backend_events`` to receive them.
        if observer is not None and getattr(
            observer, "wants_backend_events", False
        ):
            observer.emit("engine", "backend", None, 0.0, backend=backend)
            compiled = getattr(process_factory, "compiled", None)
            if compiled is not None:
                observer.emit(
                    "span", "compile.lower", None, 0.0,
                    span_id=-1, parent=None, dur=0.0,
                    **compiled.lowering_stats,
                )
        # Indexed-scheduler state: a single priority queue of actionable
        # items with lazy invalidation (per-rank version counters), plus
        # channel waiters so blocked receivers are woken by arrival
        # notifications instead of being polled every step.
        self._heap: list[tuple] = []
        self._push_seq = 0
        self._proc_version = [0] * n_processes
        self._waiters: dict[tuple[int, int, str], int] = {}
        self._ctl_seqs: dict[int, int] = {}
        self._ctl_seq = 0
        self._pending_entry: tuple | None = None
        self._n_done = 0
        if self._scheduler == "indexed":
            self.network.on_enqueue = self._on_message_enqueued
        # Checkpoint 0: the initial state of every process, so recovery
        # can always fall back to a (trivially consistent) cut.
        for proc in self.procs:
            self._store_checkpoint(proc, stmt_id=None, tag="initial", time=0.0)
        self._resync()

    @classmethod
    def from_spec(cls, spec, observer=None) -> "Simulation":
        """Build a simulation from a declarative scenario description.

        *spec* is a :class:`~repro.campaign.spec.ScenarioSpec` (or any
        object with the same attributes): program **source text**,
        protocol name, and plain-data knobs. Because everything in the
        spec is picklable and JSON-round-trippable, a spec — unlike a
        constructed ``Simulation`` — can be shipped to another process,
        which is how the campaign executor fans cells out to workers.
        """
        from repro.lang.parser import parse
        from repro.protocols import make_protocol

        return cls(
            parse(spec.program),
            spec.n_processes,
            params=dict(spec.params) if spec.params else None,
            costs=spec.costs if spec.costs is not None else RuntimeCosts(),
            protocol=make_protocol(spec.protocol, spec.period),
            failure_plan=spec.fault_plan,
            seed=spec.seed,
            base_latency=spec.base_latency,
            record_compute_events=spec.record_compute_events,
            max_steps=spec.max_steps,
            storage_replicas=spec.storage_replicas,
            max_storage_retries=spec.max_storage_retries,
            transport_config=spec.transport,
            observer=observer,
            scheduler=getattr(spec, "scheduler", "indexed"),
            retain_k=getattr(spec, "retain_k", None),
            backend=getattr(spec, "backend", "compiled"),
            checkpoint_mode=getattr(spec, "checkpoint_mode", "full"),
        )

    @property
    def recovery_escalation(self) -> int:
        """Extra fallback depth the current recovery attempt asks for."""
        return self.supervisor.escalation

    # ------------------------------------------------------------------
    # Services used by protocols
    # ------------------------------------------------------------------

    def emit(
        self, name: str, rank: int | None, time: float, **fields
    ) -> None:
        """Publish a ``protocol``-category observability event.

        No-op without an observer, so protocol call sites stay
        zero-cost when tracing is disabled.
        """
        if self.obs is not None:
            self.obs.emit("protocol", name, rank, time, **fields)

    def send_control(
        self, src: int, dst: int, tag: str, data: dict[str, int], now: float
    ) -> None:
        """Send a protocol control message; counted in the stats."""
        message = ControlMessage(
            src=src,
            dst=dst,
            tag=tag,
            data=dict(data),
            send_time=now,
            arrival_time=now + self.costs.control_latency,
        )
        self._control_queue.append(message)
        if self._scheduler == "indexed":
            seq = self._ctl_seq
            self._ctl_seq += 1
            self._ctl_seqs[id(message)] = seq
            self._push(message.arrival_time, 1, seq, "ctl", message)
        self.stats.control_messages += 1
        self.emit("control-send", src, now, dst=dst, tag=tag)

    def schedule_timer(self, rank: int, time: float, tag: str) -> None:
        """Fire ``on_timer(rank, tag)`` at the given simulation time."""
        timer = (time, self._timer_seq, rank, tag)
        self._timers.append(timer)
        self._timer_seq += 1
        if self._scheduler == "indexed":
            self._push(time, 2, timer[1], "timer", timer)

    def pause(self, rank: int) -> None:
        """Hold *rank* (it will not execute effects until resumed)."""
        self.procs[rank].paused = True
        self._reschedule(rank)

    def resume(self, rank: int, at_time: float) -> None:
        """Release *rank*; its clock advances to at least *at_time*."""
        proc = self.procs[rank]
        proc.paused = False
        proc.clock = max(proc.clock, at_time)
        self._reschedule(rank)

    def take_checkpoint(
        self, rank: int, at_time: float, tag: str, forced: bool = False
    ) -> StoredCheckpoint | None:
        """Protocol-initiated checkpoint of *rank* (legal while blocked).

        Returns ``None`` when a storage fault made the write fail — the
        checkpoint overhead is still paid, but nothing was published
        and ``on_checkpoint`` does not fire.
        """
        proc = self.procs[rank]
        if proc.status in (_Status.CRASHED, _Status.DONE):
            raise SimulationError(
                f"cannot checkpoint rank {rank} in state {proc.status}"
            )
        proc.interp.checkpoint_count += 1
        proc.clock = max(proc.clock, at_time) + self.costs.checkpoint_overhead
        stored = self._store_checkpoint(
            proc, stmt_id=None, tag=tag, time=proc.clock
        )
        self.stats.checkpoints += 1
        if forced:
            self.stats.forced_checkpoints += 1
        self._reschedule(rank)
        if stored is not None:
            self.protocol.on_checkpoint(self, rank, stored.number)
        return stored

    def restore_cut(
        self, cut: dict[int, StoredCheckpoint], at_time: float
    ) -> None:
        """Roll every process back to its checkpoint in *cut*.

        Channels are rewound exactly: the sender-side ``sent`` cursor
        and receiver-side ``delivered`` cursor of each channel come from
        the respective processes' checkpoints, and the surviving middle
        segment (in-flight across the cut) is re-queued.
        """
        self.supervisor.interrupt_restore(at_time)
        if set(cut) != set(range(self.n)):
            raise RecoveryError("restore_cut needs one checkpoint per process")
        self._refuse_corrupt(cut.values())
        cursors: dict[tuple[int, int, str], tuple[int, int]] = {}
        for rank, checkpoint in cut.items():
            for key, (sent, delivered) in checkpoint.channel_cursors.items():
                src, dst, _ = key
                old_sent, old_delivered = cursors.get(key, (0, 0))
                if src == rank:
                    cursors[key] = (sent, old_delivered)
                    old_sent = sent
                if dst == rank:
                    cursors[key] = (old_sent, delivered)
        restart = at_time + self.costs.recovery_overhead
        self.network.rollback(cursors, restart)
        for rank, checkpoint in cut.items():
            proc = self.procs[rank]
            self.stats.lost_work += max(0.0, proc.clock - checkpoint.time)
            self.storage.truncate_to(checkpoint)
            proc.interp.restore(checkpoint.snapshot)
            proc.clock = restart
            proc.paused = False
            self._last_stored[rank] = checkpoint
            self._clocks[rank] = checkpoint.clock
            if checkpoint.snapshot.pending_recv is not None:
                proc.status = _Status.BLOCKED
                proc.blocked_effect = checkpoint.blocked_effect
                if proc.blocked_effect is None:
                    raise RecoveryError(
                        f"rank {rank} snapshot is mid-receive but the "
                        "checkpoint stored no blocked effect"
                    )
            else:
                proc.status = _Status.READY
                proc.blocked_effect = None
            self._tick(rank)
            self.trace.append(
                EventKind.RESTART,
                rank,
                restart,
                self._clocks[rank],
                checkpoint_number=checkpoint.number,
            )
        self.stats.rollbacks += 1
        self._n_done = sum(
            1 for p in self.procs if p.status is _Status.DONE
        )
        # Rollback rebased channel arrivals and reset every process:
        # all outstanding scheduling keys are stale — rebuild the index.
        self._resync()
        if self.obs is not None:
            self.obs.emit(
                "engine", "rollback", None, restart,
                restored={
                    str(rank): cut[rank].number for rank in sorted(cut)
                },
            )

    def restore_single(
        self, checkpoint: StoredCheckpoint, at_time: float
    ) -> None:
        """Log-based recovery: restart ONE process from *checkpoint*.

        Survivors keep running untouched. The recovering process
        re-reads the messages it had consumed since the checkpoint from
        the channel logs (receiver-based message logging), and its
        re-executed sends are suppressed as duplicates by the network's
        replay cursors. Deterministic replay brings it back to its
        pre-crash state without any rollback of other processes.
        """
        self.supervisor.interrupt_restore(at_time)
        self._refuse_corrupt([checkpoint])
        rank = checkpoint.rank
        proc = self.procs[rank]
        restart = at_time + self.costs.recovery_overhead
        self.stats.lost_work += max(0.0, proc.clock - checkpoint.time)
        # Same single-timeline rule as restore_cut: entries stored after
        # the restore point (stale under a degraded restart, corrupt, or
        # both) would let a later recovery assemble a cut mixing the
        # replayed timeline with the discarded one.
        self.storage.truncate_to(checkpoint)
        self.network.replay_for_rank(
            rank, checkpoint.channel_cursors, restart
        )
        proc.interp.restore(checkpoint.snapshot)
        proc.clock = restart
        proc.paused = False
        self._last_stored[rank] = checkpoint
        self._clocks[rank] = checkpoint.clock
        if checkpoint.snapshot.pending_recv is not None:
            proc.status = _Status.BLOCKED
            proc.blocked_effect = checkpoint.blocked_effect
            if proc.blocked_effect is None:
                raise RecoveryError(
                    f"rank {rank} snapshot is mid-receive but the "
                    "checkpoint stored no blocked effect"
                )
        else:
            proc.status = _Status.READY
            proc.blocked_effect = None
        self._tick(rank)
        self.trace.append(
            EventKind.RESTART,
            rank,
            restart,
            self._clocks[rank],
            checkpoint_number=checkpoint.number,
        )
        self.stats.rollbacks += 1
        self._n_done = sum(
            1 for p in self.procs if p.status is _Status.DONE
        )
        self._reschedule(rank)
        if self.obs is not None:
            self.obs.emit(
                "engine", "single-restart", rank, restart,
                checkpoint_number=checkpoint.number,
            )

    def _refuse_corrupt(self, checkpoints) -> None:
        """A corrupt checkpoint must never be restored — fail loudly.

        Recovery paths are expected to have already degraded around
        corruption; reaching here with a bad checksum is a protocol
        bug, and restoring silently would resurrect rotten state.
        """
        verify = getattr(self.storage, "verify", None)
        if verify is None:
            return
        for checkpoint in checkpoints:
            if not verify(checkpoint):
                raise RecoveryError(
                    f"refusing to restore corrupt checkpoint "
                    f"{checkpoint.number} of rank {checkpoint.rank} "
                    "(checksum mismatch)"
                )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, max_time: float | None = None) -> SimulationResult:
        """Execute until every process finishes (or a guard trips).

        A terminal recovery failure does **not** raise: the supervisor's
        :class:`UnrecoverableError` is absorbed here into a normally
        returned result with ``verdict == "unrecoverable"``, so callers
        (and the chaos harness) get full stats and artifacts.
        """
        self.protocol.on_start(self)
        unrecoverable = False
        indexed = self._scheduler == "indexed"
        _READY = _Status.READY
        next_item = (
            self._next_item_indexed if indexed else self._next_item_reference
        )
        # Loop invariants of the batching fast path, hoisted: these
        # objects are mutated in place but never rebound during a run
        # (``_resync`` clears the heap rather than replacing it).
        heap = self._heap
        stats = self.stats
        max_steps = self._max_steps
        crashes = self._crashes
        rots = self._rot_events
        observes_effects = self._observes_effects
        local_cost = self.costs.local_statement
        limit = max_time if max_time is not None else _INF
        try:
            while True:
                if self._n_done == self.n:
                    break
                stats.steps += 1
                if stats.steps > max_steps:
                    raise SimulationError(
                        f"step budget exceeded ({self._max_steps}); "
                        "likely a livelock or a runaway failure plan"
                    )
                item = next_item()
                if item is None:
                    if self._n_done == self.n:
                        break
                    blocked = tuple(
                        p.rank for p in self.procs
                        if p.status is _Status.BLOCKED
                    )
                    raise DeadlockError(
                        "no actionable item but processes remain "
                        f"(blocked: {blocked})",
                        blocked=blocked,
                    )
                time, priority, payload = item
                if time > limit:
                    self._unpop_last()
                    break
                if priority == 3:
                    # Process execution is by far the most common
                    # dispatch; test for it first.
                    self._execute_process(payload)
                    if indexed:
                        # Hot-process fast path: keep executing this
                        # process while it is provably still the strict
                        # scheduler minimum, skipping the heap round
                        # trip per effect. The heap plus the fault-event
                        # heads are a conservative lower bound on every
                        # other actionable item (stale entries only ever
                        # carry earlier times), so the check can only
                        # end a run early, never reorder dispatches —
                        # the dispatch sequence (and stats.steps) is
                        # byte-identical to the unbatched loop.
                        proc = payload
                        rank = proc.rank
                        # The crash/rot schedules only mutate at their
                        # own dispatches (priorities 0/-1), never inside
                        # a process batch, so their heads can be hoisted.
                        bound = crashes[0].time if crashes else _INF
                        if rots and rots[0].time < bound:
                            bound = rots[0].time
                        # Pure-local statements skip the step()/Effect/
                        # _perform round trip entirely: step_local()
                        # executes exactly one statement and the loop
                        # below applies the same clock/step accounting
                        # _perform's LocalEffect branch would have.
                        fast_local = (
                            None if observes_effects else proc.fast_local
                        )
                        while proc.status is _READY and not proc.paused:
                            clock = proc.clock
                            if clock > limit or bound <= clock:
                                break
                            if heap:
                                top = heap[0]
                                t0 = top[0]
                                if t0 < clock or (
                                    t0 == clock
                                    and (
                                        top[1] < 3
                                        or (top[1] == 3 and top[2] <= rank)
                                    )
                                ):
                                    break
                            stats.steps += 1
                            if stats.steps > max_steps:
                                raise SimulationError(
                                    f"step budget exceeded ({self._max_steps}); "
                                    "likely a livelock or a runaway failure plan"
                                )
                            if fast_local is not None and fast_local():
                                proc.clock = clock + local_cost
                                continue
                            self._execute_process(proc)
                    self._reschedule(payload.rank)
                elif priority == -1:
                    self._apply_storage_fault(payload, time)
                elif priority == 0:
                    self._apply_crash(payload, time)
                elif priority == 1:
                    self._control_queue.remove(payload)
                    self._ctl_seqs.pop(id(payload), None)
                    self.emit(
                        "control-recv", payload.dst, payload.arrival_time,
                        src=payload.src, tag=payload.tag,
                    )
                    self.protocol.on_control(self, payload)
                elif priority == 2:
                    self._timers.remove(payload)
                    self.emit("timer", payload[2], payload[0], tag=payload[3])
                    self.protocol.on_timer(
                        self, payload[2], payload[3], payload[0]
                    )
        except UnrecoverableError:
            unrecoverable = True
        self.stats.completed = self._n_done == self.n
        self.stats.corrupt_checkpoints = getattr(
            self.storage, "corruption_detected", 0
        )
        transport = self.network.transport.stats
        self.stats.frames_sent = transport.frames_sent
        self.stats.retransmits = transport.retransmits
        self.stats.dropped_frames = transport.dropped_frames
        self.stats.corrupt_frames = transport.corrupt_frames
        self.stats.delayed_frames = transport.delayed_frames
        self.stats.duplicate_frames = transport.duplicate_frames
        self.stats.dups_suppressed = transport.dups_suppressed
        self.stats.ack_frames = transport.ack_frames
        self.stats.acks_lost = transport.acks_lost
        self.stats.stored_checkpoints = self.storage.total_count()
        # As-stored (wire) occupancy: delta entries count their delta
        # payload, so this agrees with the per-commit snapshot_bytes
        # metrics. Identical to the full-content sum outside delta mode.
        self.stats.stored_bytes = self.storage.total_bytes(incremental=True)
        self.stats.recovery_read_faults = getattr(
            self.storage, "read_faults_injected", 0
        )
        completion_time = max((p.clock for p in self.procs), default=0.0)
        if self.obs is not None:
            self.obs.emit(
                "storage", "occupancy", None, completion_time,
                count=self.stats.stored_checkpoints,
                bytes=self.stats.stored_bytes,
                gc_collected=self.stats.gc_collected,
                gc_reclaimed_bytes=self.stats.gc_reclaimed_bytes,
            )
        if unrecoverable:
            verdict = "unrecoverable"
        elif self.stats.completed:
            verdict = "completed"
        else:
            verdict = "incomplete"
        return SimulationResult(
            trace=self.trace,
            stats=self.stats,
            storage=self.storage,
            final_env={p.rank: dict(p.interp.env) for p in self.procs},
            completion_time=completion_time,
            verdict=verdict,
        )

    # -- scheduling --------------------------------------------------------------
    #
    # Two interchangeable schedulers produce byte-identical runs:
    #
    # - "indexed" (default): a single heap of actionable items keyed
    #   ``(time, priority, tiebreak, push_seq)`` with lazy invalidation.
    #   Process entries carry a per-rank version; any state change bumps
    #   the version and pushes a fresh entry, so stale entries are
    #   discarded on pop. Blocked processes whose channel is empty hold
    #   no entry at all — the network's arrival notification re-indexes
    #   them — so a step costs O(log n) instead of a scan of every
    #   process, control message, and timer.
    # - "reference": the original linear scan, kept verbatim for
    #   differential tests and the engine_hotpath benchmark.
    #
    # The tiebreaks replicate the scan's first-considered-wins order
    # exactly: control messages by send order, timers by creation order,
    # processes by rank; classes at equal times resolve by priority.

    def _next_item(self) -> tuple[float, int, object] | None:
        if self._scheduler == "reference":
            return self._next_item_reference()
        return self._next_item_indexed()

    def _next_item_reference(self) -> tuple[float, int, object] | None:
        self._pending_entry = None
        best: tuple[float, int, object] | None = None

        def consider(time: float, priority: int, payload: object) -> None:
            nonlocal best
            if best is None or (time, priority) < (best[0], best[1]):
                best = (time, priority, payload)

        if self._rot_events:
            # Bit rot sorts ahead of a same-instant crash: the most
            # adversarial interleaving corrupts storage first, so the
            # crash's recovery must already cope with it.
            rot = self._rot_events[0]
            consider(rot.time, -1, rot)
        if self._crashes:
            crash = self._crashes[0]
            consider(crash.time, 0, crash)
        for message in self._control_queue:
            consider(message.arrival_time, 1, message)
        for timer in self._timers:
            consider(timer[0], 2, timer)
        for proc in self.procs:
            if proc.paused:
                continue
            if proc.status is _Status.READY:
                consider(proc.clock, 3, proc)
            elif proc.status is _Status.BLOCKED:
                head = self._awaited_message(proc)
                if head is not None:
                    consider(max(proc.clock, head.arrival_time), 3, proc)
        return best

    def _next_item_indexed(self) -> tuple[float, int, object] | None:
        self._pending_entry = None
        resynced = False
        heap = self._heap
        heappop = heapq.heappop
        proc_version = self._proc_version
        while True:
            # Inline _pop_valid: pop until a live entry surfaces.
            entry = None
            while heap:
                candidate = heappop(heap)
                if (
                    candidate[4] == "proc"
                    and candidate[6] != proc_version[candidate[2]]
                ):
                    continue
                entry = candidate
                break
            best: tuple[float, int, object] | None = None
            if self._rot_events:
                rot = self._rot_events[0]
                best = (rot.time, -1, rot)
            if self._crashes:
                crash = self._crashes[0]
                if best is None or (crash.time, 0) < (best[0], best[1]):
                    best = (crash.time, 0, crash)
            if entry is not None:
                if best is None or (entry[0], entry[1]) < (best[0], best[1]):
                    # The heap wins: remember the popped entry so a
                    # max_time cutoff can push it back un-dispatched.
                    self._pending_entry = entry
                    return (entry[0], entry[1], entry[5])
                heapq.heappush(self._heap, entry)
            if best is not None:
                return best
            if resynced:
                return None
            # Nothing indexed as actionable. Rebuild once from scratch
            # before declaring deadlock — a defensive resync, so a missed
            # wakeup can never alter simulation outcomes.
            self._resync()
            resynced = True

    def _pop_valid(self) -> tuple | None:
        """Pop heap entries until a live one surfaces (lazy invalidation)."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[4] == "proc":
                rank = entry[2]
                if entry[6] != self._proc_version[rank]:
                    continue
            return entry
        return None

    def _unpop_last(self) -> None:
        """Undo the pop behind the last `_next_item` (max_time cutoff)."""
        if self._pending_entry is not None:
            heapq.heappush(self._heap, self._pending_entry)
            self._pending_entry = None

    def _push(
        self, time: float, priority: int, tiebreak: int, kind: str,
        payload: object, version: int | None = None,
    ) -> None:
        self._push_seq += 1
        heapq.heappush(
            self._heap,
            (time, priority, tiebreak, self._push_seq, kind, payload, version),
        )

    def _reschedule(self, rank: int) -> None:
        """Re-key one process after any scheduling-relevant state change.

        Bumps the rank's version (invalidating every outstanding entry)
        and pushes a fresh entry if the process is actionable: READY at
        its local clock, or BLOCKED behind a non-empty channel at the
        head's arrival. A BLOCKED process on an empty channel registers
        a channel waiter instead and is re-indexed on arrival.
        """
        if self._scheduler != "indexed":
            return
        version = self._proc_version[rank] + 1
        self._proc_version[rank] = version
        proc = self.procs[rank]
        if proc.paused:
            return
        status = proc.status
        if status is _Status.READY:
            self._push_seq += 1
            heapq.heappush(
                self._heap,
                (proc.clock, 3, rank, self._push_seq, "proc", proc, version),
            )
        elif status is _Status.BLOCKED:
            head = self._awaited_message(proc)
            if head is None:
                effect = proc.blocked_effect
                if isinstance(effect, RecvEffect):
                    key = (effect.source, rank, "p2p")
                else:
                    key = (effect.root, rank, "coll")
                self._waiters[key] = rank
            else:
                clock = proc.clock
                arrival = head.arrival_time
                self._push_seq += 1
                heapq.heappush(
                    self._heap,
                    (
                        arrival if arrival > clock else clock,
                        3, rank, self._push_seq, "proc", proc, version,
                    ),
                )

    def _on_message_enqueued(self, message: Message) -> None:
        """Network arrival notification: wake the channel's waiter."""
        rank = self._waiters.pop(message.channel, None)
        if rank is not None:
            self._reschedule(rank)

    def _resync(self) -> None:
        """Rebuild the scheduling index from the engine's plain state.

        Used after global rollback (every key is stale at once) and as
        the deadlock-check fallback. The queues and process records stay
        authoritative; the index is always disposable.
        """
        if self._scheduler != "indexed":
            return
        self._heap.clear()
        self._waiters.clear()
        for message in self._control_queue:
            seq = self._ctl_seqs.get(id(message))
            if seq is None:
                seq = self._ctl_seq
                self._ctl_seq += 1
                self._ctl_seqs[id(message)] = seq
            self._push(message.arrival_time, 1, seq, "ctl", message)
        for timer in self._timers:
            self._push(timer[0], 2, timer[1], "timer", timer)
        for proc in self.procs:
            self._reschedule(proc.rank)

    def _awaited_message(self, proc: _Proc) -> Message | None:
        effect = proc.blocked_effect
        cls = effect.__class__
        if cls is RecvEffect:
            return self.network.peek(effect.source, proc.rank, "p2p")
        if cls is BcastRecvEffect:
            return self.network.peek(effect.root, proc.rank, "coll")
        if isinstance(effect, RecvEffect):
            return self.network.peek(effect.source, proc.rank, "p2p")
        if isinstance(effect, BcastRecvEffect):
            return self.network.peek(effect.root, proc.rank, "coll")
        raise SimulationError(f"blocked process without a recv effect: {proc.rank}")

    # -- execution ---------------------------------------------------------------

    def _execute_process(self, proc: _Proc) -> None:
        if proc.status is _Status.BLOCKED:
            self._complete_receive(proc)
            return
        effect = proc.interp.step()
        if effect is None:
            proc.status = _Status.DONE
            self._n_done += 1
            return
        self._perform(proc, effect)
        if self._observes_effects:
            self.protocol.on_effect(self, proc.rank, effect)

    def _perform(self, proc: _Proc, effect: Effect) -> None:
        # Exact-type dispatch, ordered by observed frequency: effects are
        # closed-world frozen dataclasses, so an identity check on the
        # class beats an isinstance() chain on the hottest path in the
        # engine. Subclasses (if anyone ever makes one) fall through to
        # the isinstance-based slow path below.
        costs = self.costs
        cls = effect.__class__
        if cls is LocalEffect:
            proc.clock += costs.local_statement
            return
        if cls is SendEffect:
            proc.clock += costs.send_overhead
            self._send_app_message(
                proc, effect.dest, effect.value, "p2p",
                stmt_id=effect.stmt.node_id,
            )
            return
        if cls is RecvEffect or cls is BcastRecvEffect:
            proc.status = _Status.BLOCKED
            proc.blocked_effect = effect
            head = self._awaited_message(proc)
            if head is not None and head.arrival_time <= proc.clock:
                self._complete_receive(proc)
            return
        if cls is ComputeEffect:
            proc.clock += effect.cost * costs.compute_unit
            if self.record_compute_events:
                self._tick(proc.rank)
                self.trace.append(
                    EventKind.COMPUTE, proc.rank, proc.clock, self._clocks[proc.rank]
                )
            return
        if cls is CheckpointEffect:
            proc.clock += costs.checkpoint_overhead
            stored = self._store_checkpoint(
                proc,
                stmt_id=effect.stmt.node_id,
                tag="app",
                time=proc.clock,
            )
            self.stats.checkpoints += 1
            if stored is not None:
                self.protocol.on_checkpoint(
                    self, proc.rank, proc.interp.checkpoint_count
                )
            return
        if cls is BcastSendEffect:
            for dst in range(self.n):
                if dst == proc.rank:
                    continue
                proc.clock += costs.send_overhead
                self._send_app_message(
                    proc, dst, effect.value, "coll",
                    stmt_id=effect.stmt.node_id,
                )
            return
        self._perform_slow(proc, effect)

    def _perform_slow(self, proc: _Proc, effect: Effect) -> None:
        """isinstance-based fallback for effect subclasses."""
        costs = self.costs
        if isinstance(effect, LocalEffect):
            proc.clock += costs.local_statement
            return
        if isinstance(effect, ComputeEffect):
            proc.clock += effect.cost * costs.compute_unit
            if self.record_compute_events:
                self._tick(proc.rank)
                self.trace.append(
                    EventKind.COMPUTE, proc.rank, proc.clock, self._clocks[proc.rank]
                )
            return
        if isinstance(effect, SendEffect):
            proc.clock += costs.send_overhead
            self._send_app_message(
                proc, effect.dest, effect.value, "p2p",
                stmt_id=effect.stmt.node_id,
            )
            return
        if isinstance(effect, BcastSendEffect):
            for dst in range(self.n):
                if dst == proc.rank:
                    continue
                proc.clock += costs.send_overhead
                self._send_app_message(
                    proc, dst, effect.value, "coll",
                    stmt_id=effect.stmt.node_id,
                )
            return
        if isinstance(effect, (RecvEffect, BcastRecvEffect)):
            proc.status = _Status.BLOCKED
            proc.blocked_effect = effect
            head = self._awaited_message(proc)
            if head is not None and head.arrival_time <= proc.clock:
                self._complete_receive(proc)
            return
        if isinstance(effect, CheckpointEffect):
            proc.clock += costs.checkpoint_overhead
            stored = self._store_checkpoint(
                proc,
                stmt_id=effect.stmt.node_id,
                tag="app",
                time=proc.clock,
            )
            self.stats.checkpoints += 1
            if stored is not None:
                self.protocol.on_checkpoint(
                    self, proc.rank, proc.interp.checkpoint_count
                )
            return
        raise SimulationError(f"unknown effect {effect!r}")

    def _send_app_message(
        self, proc: _Proc, dst: int, value: int, lane: str,
        stmt_id: int | None = None,
    ) -> None:
        rank = proc.rank
        piggyback = (
            self.protocol.piggyback(self, rank)
            if self._has_piggyback else None
        )
        clocks = self._clocks
        clock = clocks[rank] = clocks[rank].tick(rank)
        message = self.network.send(
            rank, dst, value, proc.clock, lane=lane, piggyback=piggyback
        )
        self._message_clocks[message.message_id] = clock
        self.trace.append(
            EventKind.SEND,
            rank,
            proc.clock,
            clock,
            message_id=message.message_id,
            peer=dst,
            stmt_id=stmt_id,
        )
        self.stats.app_messages += 1

    def _complete_receive(self, proc: _Proc) -> None:
        effect = proc.blocked_effect
        cls = effect.__class__
        if cls is RecvEffect or isinstance(effect, RecvEffect):
            src, lane = effect.source, "p2p"
        elif cls is BcastRecvEffect or isinstance(effect, BcastRecvEffect):
            src, lane = effect.root, "coll"
        else:
            raise SimulationError(f"corrupt blocked effect on rank {proc.rank}")
        rank = proc.rank
        if self._sees_app_messages:
            head = self.network.peek(src, rank, lane)
            if head is None:
                raise SimulationError(
                    f"rank {rank} scheduled to receive but channel is empty"
                )
            self.protocol.on_app_message(self, rank, head)
            message = self.network.consume(src, rank, lane)
        else:
            # No protocol hook between peek and consume: use the fused
            # single-lookup pop.
            message = self.network.pop(src, rank, lane)
            if message is None:
                raise SimulationError(
                    f"rank {rank} scheduled to receive but channel is empty"
                )
        proc.clock = max(proc.clock, message.arrival_time) + self.costs.recv_overhead
        sender_clock = self._message_clocks.get(message.message_id)
        clocks = self._clocks
        if sender_clock is not None:
            clock = clocks[rank].receive(sender_clock, rank)
        else:
            clock = clocks[rank].tick(rank)
        clocks[rank] = clock
        proc.interp.deliver(message.value)
        proc.status = _Status.READY
        proc.blocked_effect = None
        self.trace.append(
            EventKind.RECV,
            rank,
            proc.clock,
            clock,
            message_id=message.message_id,
            peer=src,
            stmt_id=effect.stmt.node_id,
        )

    # -- checkpoints ------------------------------------------------------------

    def _store_checkpoint(
        self, proc: _Proc, stmt_id: int | None, tag: str, time: float
    ) -> StoredCheckpoint | None:
        """Write a checkpoint through the fault-aware store.

        Returns the published checkpoint, or ``None`` when an injected
        storage fault made the write fail (the process carries on — its
        checkpoint numbering keeps advancing, so the straight-cut
        structure stays globally consistent with a hole at this number).
        """
        rank = proc.rank
        clocks = self._clocks
        clock = clocks[rank] = clocks[rank].tick(rank)
        # Pruned capture applies to application checkpoints only: they
        # carry the statement the live sets were computed for. Protocol
        # and initial checkpoints (stmt_id None) always capture fully —
        # no static program point, no proof of deadness.
        if self._prune_snapshots and stmt_id is not None:
            snapshot = proc.interp.snapshot_pruned(stmt_id)
        else:
            snapshot = proc.interp.snapshot()
        # Built through __dict__ like the trace's events: checkpoints
        # are the third per-effect frozen-dataclass allocation on the
        # hot path, and the generated __init__ costs ~3x this.
        stored = StoredCheckpoint.__new__(StoredCheckpoint)
        stored.__dict__.update(
            rank=rank,
            number=proc.interp.checkpoint_count,
            snapshot=snapshot,
            clock=clock,
            time=time,
            channel_cursors=self.network.cursors_for(rank),
            stmt_id=stmt_id,
            stmt_label=(
                None if stmt_id is None else self._stmt_labels.get(stmt_id)
            ),
            tag=tag,
            blocked_effect=proc.blocked_effect,
            payload_kind="full",
            parent=None,
            delta_depth=0,
        )
        if self._delta_payloads:
            parent = self._last_stored.get(rank)
            if (
                parent is not None
                and parent.delta_depth < DELTA_CHAIN_CAP
                and delta_encodable(stored, parent)
            ):
                stored.__dict__.update(
                    payload_kind="delta",
                    parent=parent,
                    delta_depth=parent.delta_depth + 1,
                )
                # A delta must pay off: keep whichever wire form is
                # smaller, so per-entry payload <= full always holds.
                if stored.payload_bytes >= stored.full_bytes:
                    stored.__dict__.pop("_payload_bytes", None)
                    stored.__dict__.update(
                        payload_kind="full", parent=None, delta_depth=0
                    )
        fault = self._take_write_fault(rank, time, stored.number)
        receipt = self.storage.store(stored, fault=fault)
        if receipt.retries:
            # Bounded retry with exponential backoff: attempt k waits
            # backoff * 2^(k-1), charged to the writer's local clock.
            self.stats.storage_retries += receipt.retries
            proc.clock += self.costs.storage_retry_backoff * (
                2 ** receipt.retries - 1
            )
        if not receipt.published:
            self.stats.storage_write_failures += 1
            if receipt.torn:
                self.stats.torn_writes += 1
            return None
        self._last_stored[rank] = stored
        if tag != "initial":
            self.trace.append(
                EventKind.CHECKPOINT,
                proc.rank,
                time,
                clock,
                checkpoint_number=stored.number,
                stmt_id=stmt_id,
            )
            if self._retention is not None:
                collected, reclaimed = self._retention.collect(
                    self.storage, list(range(self.n))
                )
                if collected:
                    self.stats.gc_collected += collected
                    self.stats.gc_reclaimed_bytes += reclaimed
        return stored

    def _take_write_fault(
        self, rank: int, now: float, number: int
    ) -> StorageFaultEvent | None:
        """Pop the first armed write fault matching this write, if any."""
        for position, fault in enumerate(self._write_faults):
            if fault.time > now:
                break
            if fault.rank != rank:
                continue
            if fault.number is not None and fault.number != number:
                continue
            return self._write_faults.pop(position)
        return None

    # -- storage faults ----------------------------------------------------------

    def _apply_storage_fault(
        self, fault: StorageFaultEvent, time: float
    ) -> None:
        """Fire a scheduled bit-rot event: corrupt a stored checkpoint.

        Silent by construction — nothing advances any process clock and
        no trace event is recorded, so detection can only happen at
        read (recovery) time, via checksums.
        """
        self._rot_events.remove(fault)
        if self.storage.corrupt(
            fault.rank, number=fault.number, replica=fault.replica
        ):
            self.stats.bit_rot_injected += 1
            if self.obs is not None:
                self.obs.emit(
                    "storage", "bit-rot", fault.rank, time,
                    number=fault.number, replica=fault.replica,
                )

    # -- crashes ---------------------------------------------------------------------

    def _apply_crash(self, crash, time: float) -> None:
        self._crashes.pop(0)
        proc = self.procs[crash.rank]
        if proc.status is _Status.DONE:
            return
        self.stats.failures += 1
        proc.status = _Status.CRASHED
        proc.blocked_effect = None
        self._reschedule(proc.rank)
        self._tick(proc.rank)
        self.trace.append(
            EventKind.FAILURE, proc.rank, time, self._clocks[proc.rank]
        )
        self.supervisor.recover(proc.rank, time)
        if proc.status is _Status.CRASHED:
            raise RecoveryError(
                f"protocol {self.protocol.name!r} left rank {proc.rank} "
                "crashed with no recovery"
            )

    # -- clocks -----------------------------------------------------------------------

    def _tick(self, rank: int) -> None:
        self._clocks[rank] = self._clocks[rank].tick(rank)
