"""Failure injection.

A :class:`FailurePlan` is a pre-drawn list of (time, rank) crash
events. Plans are generated ahead of the run (exponential arrivals per
process, or fixed schedules in tests), so simulations stay reproducible
and independent of execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class CrashEvent:
    """One injected crash: *rank* fails at *time*."""

    time: float
    rank: int


@dataclass
class FailurePlan:
    """An ordered schedule of crashes.

    ``max_failures`` bounds how many crashes the engine will actually
    apply (the rest are ignored), which keeps adversarial plans finite.
    """

    crashes: list[CrashEvent] = field(default_factory=list)
    max_failures: int | None = None

    def __post_init__(self) -> None:
        self.crashes.sort(key=lambda c: c.time)

    @classmethod
    def none(cls) -> "FailurePlan":
        """The empty (failure-free) plan."""
        return cls()

    @classmethod
    def single(cls, time: float, rank: int) -> "FailurePlan":
        """A single crash of *rank* at *time*."""
        return cls(crashes=[CrashEvent(time=time, rank=rank)])

    def effective(self) -> list[CrashEvent]:
        """The crashes the engine will apply, capped by ``max_failures``."""
        if self.max_failures is None:
            return list(self.crashes)
        return self.crashes[: self.max_failures]


def exponential_failures(
    n_processes: int,
    failure_rate: float,
    horizon: float,
    seed: int = 0,
    max_failures: int | None = None,
) -> FailurePlan:
    """Draw per-process exponential crash times up to *horizon*.

    Each process draws independent exponential inter-failure times with
    rate *failure_rate* (the paper's per-process λ); every arrival
    before *horizon* becomes a crash event.
    """
    if failure_rate < 0:
        raise SimulationError(f"failure_rate must be >= 0, got {failure_rate}")
    if horizon <= 0:
        raise SimulationError(f"horizon must be positive, got {horizon}")
    crashes: list[CrashEvent] = []
    if failure_rate > 0:
        rng = np.random.default_rng(seed)
        for rank in range(n_processes):
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / failure_rate))
                if t >= horizon:
                    break
                crashes.append(CrashEvent(time=t, rank=rank))
    return FailurePlan(crashes=crashes, max_failures=max_failures)
