"""Failure and fault injection.

A :class:`FailurePlan` is a pre-drawn list of (time, rank) crash
events. A :class:`FaultPlan` extends it with *stable-storage* faults —
checkpoint write failures, torn (partial) writes, silent bit rot, and
transient I/O errors — and with *network* faults — dropped, duplicated,
delayed, and corrupted frames plus timed partitions between rank pairs
— so recovery itself can be stressed, not just triggered. Plans are
generated ahead of the run (exponential arrivals per process or per
channel, or fixed schedules in tests), so simulations stay reproducible
and independent of execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class CrashEvent:
    """One injected crash: *rank* fails at *time*."""

    time: float
    rank: int


class FaultKind(str, Enum):
    """Taxonomy of stable-storage faults.

    ``WRITE_FAIL``
        Every attempt to write the targeted checkpoint errors; the
        checkpoint is never published (a lost write).
    ``TORN_WRITE``
        The write lands partially: the staged bytes are truncated. The
        store's two-phase commit detects the tear at validation time
        and discards the blob — the checkpoint is never published, but
        (unlike a naive store) garbage is never visible either.
    ``BIT_ROT``
        Silent corruption of an *already stored* checkpoint at a given
        simulation time; detected only at read time by checksum.
    ``TRANSIENT``
        A retryable I/O error: the first ``attempts`` tries fail, after
        which the write succeeds (if the retry budget allows).
    """

    WRITE_FAIL = "write-fail"
    TORN_WRITE = "torn-write"
    BIT_ROT = "bit-rot"
    TRANSIENT = "transient"


@dataclass(frozen=True)
class StorageFaultEvent:
    """One injected stable-storage fault.

    Attributes:
        time: Activation time. Write-targeting faults (``WRITE_FAIL``,
            ``TORN_WRITE``, ``TRANSIENT``) arm at *time* and hit the
            first matching checkpoint write at or after it; ``BIT_ROT``
            fires at *time* through the event loop, corrupting a
            checkpoint already on storage.
        rank: The process whose checkpoint is targeted.
        kind: The fault class (see :class:`FaultKind`).
        number: Target checkpoint number, or ``None`` for "the next
            write" (write faults) / "the latest stored" (bit rot).
        replica: Which storage replica the fault hits (0 = primary);
            only meaningful with a replicated store.
        attempts: For ``TRANSIENT`` faults, how many write attempts
            fail before one succeeds.
    """

    time: float
    rank: int
    kind: FaultKind
    number: int | None = None
    replica: int = 0
    attempts: int = 1


class NetworkFaultKind(str, Enum):
    """Taxonomy of message/channel faults.

    ``DROP``
        The targeted frame transmission is lost on the wire; the
        transport's retransmission timer recovers it.
    ``DUPLICATE``
        The targeted frame arrives twice; the receiver's sequence-number
        dedup suppresses the second copy.
    ``DELAY``
        The targeted frame is held on the wire for ``delay`` extra
        seconds, arriving out of order; the receiver's reorder buffer
        withholds later frames until the gap fills.
    ``CORRUPT``
        The targeted frame's payload is bit-flipped in transit; the
        receiver's CRC rejects it and retransmission recovers it.
    ``PARTITION``
        From ``time`` on, every frame (data and ACK) between the rank
        pair ``{src, dst}`` is lost, in both directions, until a
        matching ``HEAL``.
    ``HEAL``
        Ends the open partition between ``{src, dst}``.
    """

    DROP = "drop"
    DUPLICATE = "duplicate"
    DELAY = "delay"
    CORRUPT = "corrupt"
    PARTITION = "partition"
    HEAL = "heal"


#: The one-shot kinds, each consumed by a single frame transmission.
ONE_SHOT_NETWORK_KINDS = (
    NetworkFaultKind.DROP,
    NetworkFaultKind.DUPLICATE,
    NetworkFaultKind.DELAY,
    NetworkFaultKind.CORRUPT,
)


@dataclass(frozen=True)
class NetworkFaultEvent:
    """One injected network fault.

    Attributes:
        time: Activation time. One-shot kinds (``DROP``, ``DUPLICATE``,
            ``DELAY``, ``CORRUPT``) arm at *time* and hit the first
            frame transmission on the ``src -> dst`` channel at or
            after it; ``PARTITION``/``HEAL`` open and close a blackout
            window for the unordered pair ``{src, dst}``.
        kind: The fault class (see :class:`NetworkFaultKind`).
        src: Sending rank (for partitions, one side of the pair).
        dst: Receiving rank (for partitions, the other side).
        delay: Extra in-flight seconds, ``DELAY`` faults only.
    """

    time: float
    kind: NetworkFaultKind
    src: int
    dst: int
    delay: float = 0.0

    @property
    def pair(self) -> tuple[int, int]:
        """The unordered ``{src, dst}`` pair (partition identity)."""
        return (min(self.src, self.dst), max(self.src, self.dst))


class RecoveryFaultKind(str, Enum):
    """Taxonomy of faults that strike *during recovery itself*.

    ``CRASH``
        The targeted rank crashes again while rolling back/replaying
        (a nested/cascading failure): the interrupted recovery attempt
        aborts before any state is mutated and the supervisor retries.
    ``READ_FAULT``
        Restore-time storage reads of the targeted rank fail
        transiently: the next ``attempts`` fault-aware reads
        (``latest_intact``/``intact_with_number``/``intact_history``)
        raise :class:`~repro.errors.TransientStorageError`.
    ``CONTROL_LOST``
        The restart/control traffic of a recovery round is lost on the
        wire; the round is abandoned and re-driven by the supervisor.
    """

    CRASH = "crash-in-recovery"
    READ_FAULT = "restore-read-fail"
    CONTROL_LOST = "control-lost"


@dataclass(frozen=True)
class RecoveryFaultEvent:
    """One injected recovery-time fault.

    Recovery faults are keyed by the **recovery operation index** — the
    0-based count of crash-triggered recoveries in the run — rather
    than absolute time, so a plan stays seed-deterministic and
    replayable no matter how backoff shifts the recovery's clock.

    Attributes:
        recovery: Which recovery operation the fault strikes (0 = the
            first crash's recovery).
        rank: The rank the fault targets (the nested-crash victim, the
            rank whose restore reads fail, or the rank whose control
            round is lost).
        kind: The fault class (see :class:`RecoveryFaultKind`).
        attempts: How many recovery attempts the fault disrupts
            (``CRASH``/``CONTROL_LOST``) or how many restore reads fail
            (``READ_FAULT``).
    """

    recovery: int
    rank: int
    kind: RecoveryFaultKind
    attempts: int = 1


#: Allowed per-event JSON keys (typos inside an event entry must not
#: silently drop the field they were meant to set).
_CRASH_EVENT_KEYS = frozenset({"time", "rank"})
_STORAGE_EVENT_KEYS = frozenset(
    {"time", "rank", "kind", "number", "replica", "attempts"}
)
_NETWORK_EVENT_KEYS = frozenset({"time", "kind", "src", "dst", "delay"})
_RECOVERY_EVENT_KEYS = frozenset({"recovery", "rank", "kind", "attempts"})


def _reject_unknown_keys(entry: dict, allowed: frozenset, what: str) -> dict:
    unknown = sorted(set(entry) - allowed)
    if unknown:
        raise SimulationError(
            f"unknown {what} key(s) {unknown} — "
            f"expected keys from {sorted(allowed)}"
        )
    return entry


@dataclass
class FailurePlan:
    """An ordered schedule of crashes.

    ``max_failures`` bounds how many crashes the engine will actually
    apply (the rest are ignored), which keeps adversarial plans finite.
    """

    crashes: list[CrashEvent] = field(default_factory=list)
    max_failures: int | None = None

    def __post_init__(self) -> None:
        if self.max_failures is not None and self.max_failures < 0:
            raise SimulationError(
                f"max_failures must be >= 0, got {self.max_failures}"
            )
        self.crashes = [
            crash if isinstance(crash, CrashEvent) else CrashEvent(*crash)
            for crash in self.crashes
        ]
        seen: set[tuple[float, int]] = set()
        for crash in self.crashes:
            if crash.time < 0:
                raise SimulationError(
                    f"crash time must be >= 0, got {crash.time} "
                    f"(rank {crash.rank})"
                )
            if crash.rank < 0:
                raise SimulationError(
                    f"crash rank must be >= 0, got {crash.rank}"
                )
            key = (crash.time, crash.rank)
            if key in seen:
                raise SimulationError(
                    f"duplicate crash event (time={crash.time}, "
                    f"rank={crash.rank})"
                )
            seen.add(key)
        self.crashes.sort(key=lambda c: c.time)

    @classmethod
    def none(cls) -> "FailurePlan":
        """The empty (failure-free) plan."""
        return cls()

    @classmethod
    def single(cls, time: float, rank: int) -> "FailurePlan":
        """A single crash of *rank* at *time*."""
        return cls(crashes=[CrashEvent(time=time, rank=rank)])

    def effective(self) -> list[CrashEvent]:
        """The crashes the engine will apply, capped by ``max_failures``."""
        if self.max_failures is None:
            return list(self.crashes)
        return self.crashes[: self.max_failures]


@dataclass
class FaultPlan(FailurePlan):
    """Crashes plus stable-storage faults, in one adversarial schedule.

    A :class:`FaultPlan` is accepted anywhere a :class:`FailurePlan`
    is; engines that understand storage faults additionally thread the
    ``storage_faults`` through their event loop so fault timing
    interleaves deterministically with crashes and messages, and feed
    the ``network_faults`` to the reliable transport's fault injector
    (:class:`repro.runtime.transport.NetworkFaultInjector`).
    """

    storage_faults: list[StorageFaultEvent] = field(default_factory=list)
    network_faults: list[NetworkFaultEvent] = field(default_factory=list)
    recovery_faults: list[RecoveryFaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.network_faults = _validate_network_faults(self.network_faults)
        self.recovery_faults = _validate_recovery_faults(self.recovery_faults)
        normalised: list[StorageFaultEvent] = []
        seen: set[tuple[float, int, str, int | None, int]] = set()
        for fault in self.storage_faults:
            kind = fault.kind
            if not isinstance(kind, FaultKind):
                try:
                    kind = FaultKind(kind)
                except ValueError:
                    known = ", ".join(k.value for k in FaultKind)
                    raise SimulationError(
                        f"unknown fault kind {fault.kind!r}; known: {known}"
                    ) from None
                fault = replace(fault, kind=kind)
            if fault.time < 0:
                raise SimulationError(
                    f"fault time must be >= 0, got {fault.time} "
                    f"(rank {fault.rank})"
                )
            if fault.rank < 0:
                raise SimulationError(
                    f"fault rank must be >= 0, got {fault.rank}"
                )
            if fault.replica < 0:
                raise SimulationError(
                    f"fault replica must be >= 0, got {fault.replica}"
                )
            if fault.attempts < 1:
                raise SimulationError(
                    f"fault attempts must be >= 1, got {fault.attempts}"
                )
            key = (fault.time, fault.rank, kind.value, fault.number,
                   fault.replica)
            if key in seen:
                raise SimulationError(
                    f"duplicate storage fault (time={fault.time}, "
                    f"rank={fault.rank}, kind={kind.value})"
                )
            seen.add(key)
            normalised.append(fault)
        normalised.sort(key=lambda f: (f.time, f.rank))
        self.storage_faults = normalised

    def write_faults(self) -> list[StorageFaultEvent]:
        """The write-targeting faults (armed, consumed by writes)."""
        return [f for f in self.storage_faults if f.kind is not FaultKind.BIT_ROT]

    def rot_events(self) -> list[StorageFaultEvent]:
        """The bit-rot faults (scheduled through the event loop)."""
        return [f for f in self.storage_faults if f.kind is FaultKind.BIT_ROT]

    #: Top-level keys :meth:`from_json_dict` accepts.
    JSON_KEYS = frozenset(
        {"max_failures", "crashes", "storage_faults", "network_faults",
         "recovery_faults"}
    )

    @classmethod
    def from_json_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json_dict`'s JSON schema.

        The inverse of :meth:`to_json_dict`, shared by the CLI's
        ``--fault-plan`` loader and the campaign layer's
        :class:`~repro.campaign.spec.ScenarioSpec`. Unknown top-level
        keys are rejected (a typo like ``"netwrok_faults"`` must not
        silently disable the faults it was meant to inject).
        """
        unknown = sorted(set(data) - cls.JSON_KEYS)
        if unknown:
            raise SimulationError(
                f"unknown top-level key(s) {unknown} — "
                f"expected keys from {sorted(cls.JSON_KEYS)}"
            )
        return cls(
            crashes=[
                CrashEvent(time=float(e["time"]), rank=int(e["rank"]))
                for e in (
                    _reject_unknown_keys(e, _CRASH_EVENT_KEYS, "crash")
                    for e in data.get("crashes", [])
                )
            ],
            max_failures=data.get("max_failures"),
            storage_faults=[
                StorageFaultEvent(
                    time=float(e["time"]),
                    rank=int(e["rank"]),
                    kind=e["kind"],
                    number=e.get("number"),
                    replica=int(e.get("replica", 0)),
                    attempts=int(e.get("attempts", 1)),
                )
                for e in (
                    _reject_unknown_keys(
                        e, _STORAGE_EVENT_KEYS, "storage fault"
                    )
                    for e in data.get("storage_faults", [])
                )
            ],
            network_faults=[
                NetworkFaultEvent(
                    time=float(e["time"]),
                    kind=e["kind"],
                    src=int(e["src"]),
                    dst=int(e["dst"]),
                    delay=float(e.get("delay", 0.0)),
                )
                for e in (
                    _reject_unknown_keys(
                        e, _NETWORK_EVENT_KEYS, "network fault"
                    )
                    for e in data.get("network_faults", [])
                )
            ],
            recovery_faults=[
                RecoveryFaultEvent(
                    recovery=int(e["recovery"]),
                    rank=int(e["rank"]),
                    kind=e["kind"],
                    attempts=int(e.get("attempts", 1)),
                )
                for e in (
                    _reject_unknown_keys(
                        e, _RECOVERY_EVENT_KEYS, "recovery fault"
                    )
                    for e in data.get("recovery_faults", [])
                )
            ],
        )

    def to_json_dict(self) -> dict:
        """The plan in the CLI's ``--fault-plan`` JSON schema.

        The chaos harness archives shrunk counterexamples in this form
        so any dumped schedule replays verbatim with
        ``repro simulate --fault-plan``.
        """
        payload: dict = {}
        if self.max_failures is not None:
            payload["max_failures"] = self.max_failures
        payload["crashes"] = [
            {"time": c.time, "rank": c.rank} for c in self.crashes
        ]
        payload["storage_faults"] = [
            {
                "time": f.time,
                "rank": f.rank,
                "kind": f.kind.value,
                "number": f.number,
                "replica": f.replica,
                "attempts": f.attempts,
            }
            for f in self.storage_faults
        ]
        payload["network_faults"] = [
            {
                "time": f.time,
                "kind": f.kind.value,
                "src": f.src,
                "dst": f.dst,
                "delay": f.delay,
            }
            for f in self.network_faults
        ]
        payload["recovery_faults"] = [
            {
                "recovery": f.recovery,
                "rank": f.rank,
                "kind": f.kind.value,
                "attempts": f.attempts,
            }
            for f in self.recovery_faults
        ]
        return payload


def _validate_recovery_faults(
    faults: list[RecoveryFaultEvent],
) -> list[RecoveryFaultEvent]:
    """Normalise, validate, and sort a recovery-fault schedule.

    Rejects unknown kinds, negative indices/ranks, non-positive
    attempt counts, exact duplicates, and — the nested-failure analogue
    of a double crash — a second ``CRASH`` fault targeting a
    ``(recovery, rank)`` pair that is already crashing (a rank cannot
    crash while it is already down).
    """
    normalised: list[RecoveryFaultEvent] = []
    seen: set[tuple[int, int, str]] = set()
    crashing: set[tuple[int, int]] = set()
    for fault in faults:
        kind = fault.kind
        if not isinstance(kind, RecoveryFaultKind):
            try:
                kind = RecoveryFaultKind(kind)
            except ValueError:
                known = ", ".join(k.value for k in RecoveryFaultKind)
                raise SimulationError(
                    f"unknown recovery fault kind {fault.kind!r}; "
                    f"known: {known}"
                ) from None
            fault = replace(fault, kind=kind)
        if fault.recovery < 0:
            raise SimulationError(
                f"recovery fault index must be >= 0, got {fault.recovery} "
                f"(rank {fault.rank})"
            )
        if fault.rank < 0:
            raise SimulationError(
                f"recovery fault rank must be >= 0, got {fault.rank}"
            )
        if fault.attempts < 1:
            raise SimulationError(
                f"recovery fault attempts must be >= 1, got {fault.attempts}"
            )
        if kind is RecoveryFaultKind.CRASH:
            if (fault.recovery, fault.rank) in crashing:
                raise SimulationError(
                    f"crash scheduled on already-crashed rank {fault.rank} "
                    f"in recovery {fault.recovery}"
                )
            crashing.add((fault.recovery, fault.rank))
        key = (fault.recovery, fault.rank, kind.value)
        if key in seen:
            raise SimulationError(
                f"duplicate recovery fault (recovery={fault.recovery}, "
                f"rank={fault.rank}, kind={kind.value})"
            )
        seen.add(key)
        normalised.append(fault)
    normalised.sort(key=lambda f: (f.recovery, f.rank, f.kind.value))
    return normalised


def _validate_network_faults(
    faults: list[NetworkFaultEvent],
) -> list[NetworkFaultEvent]:
    """Normalise, validate, and time-sort a network-fault schedule.

    Rejects unknown kinds, negative times/ranks, self-channels,
    non-positive delays on ``DELAY`` (or any delay elsewhere), exact
    duplicates, and heals that do not close an open partition. A
    trailing unhealed partition is allowed — it is a legitimate
    adversarial scenario (the transport eventually gives up on the
    dead pair with a :class:`~repro.errors.ChannelError`).
    """
    normalised: list[NetworkFaultEvent] = []
    seen: set[tuple[float, str, int, int]] = set()
    for fault in faults:
        kind = fault.kind
        if not isinstance(kind, NetworkFaultKind):
            try:
                kind = NetworkFaultKind(kind)
            except ValueError:
                known = ", ".join(k.value for k in NetworkFaultKind)
                raise SimulationError(
                    f"unknown network fault kind {fault.kind!r}; "
                    f"known: {known}"
                ) from None
            fault = replace(fault, kind=kind)
        if fault.time < 0:
            raise SimulationError(
                f"network fault time must be >= 0, got {fault.time} "
                f"({kind.value} {fault.src}->{fault.dst})"
            )
        if fault.src < 0 or fault.dst < 0:
            raise SimulationError(
                f"network fault ranks must be >= 0, got "
                f"{fault.src}->{fault.dst} ({kind.value})"
            )
        if fault.src == fault.dst:
            raise SimulationError(
                f"network fault targets the self-channel "
                f"{fault.src}->{fault.dst} ({kind.value}); processes "
                "do not message themselves"
            )
        if kind is NetworkFaultKind.DELAY:
            if fault.delay <= 0:
                raise SimulationError(
                    f"delay fault needs a positive delay, got "
                    f"{fault.delay} ({fault.src}->{fault.dst})"
                )
        elif fault.delay:
            raise SimulationError(
                f"delay={fault.delay} is only meaningful on "
                f"{NetworkFaultKind.DELAY.value!r} faults, not "
                f"{kind.value!r}"
            )
        key = (fault.time, kind.value, fault.src, fault.dst)
        if key in seen:
            raise SimulationError(
                f"duplicate network fault (time={fault.time}, "
                f"kind={kind.value}, {fault.src}->{fault.dst})"
            )
        seen.add(key)
        normalised.append(fault)
    normalised.sort(key=lambda f: (f.time, f.src, f.dst, f.kind.value))
    open_partitions: set[tuple[int, int]] = set()
    for fault in normalised:
        if fault.kind is NetworkFaultKind.PARTITION:
            if fault.pair in open_partitions:
                raise SimulationError(
                    f"partition of pair {fault.pair} at time "
                    f"{fault.time} is already open"
                )
            open_partitions.add(fault.pair)
        elif fault.kind is NetworkFaultKind.HEAL:
            if fault.pair not in open_partitions:
                raise SimulationError(
                    f"heal of pair {fault.pair} at time {fault.time} "
                    "closes no open partition"
                )
            open_partitions.discard(fault.pair)
    return normalised


def exponential_failures(
    n_processes: int,
    failure_rate: float,
    horizon: float,
    seed: int = 0,
    max_failures: int | None = None,
) -> FailurePlan:
    """Draw per-process exponential crash times up to *horizon*.

    Each process draws independent exponential inter-failure times with
    rate *failure_rate* (the paper's per-process λ); every arrival
    before *horizon* becomes a crash event.
    """
    if failure_rate < 0:
        raise SimulationError(f"failure_rate must be >= 0, got {failure_rate}")
    if horizon <= 0:
        raise SimulationError(f"horizon must be positive, got {horizon}")
    crashes: list[CrashEvent] = []
    if failure_rate > 0:
        rng = np.random.default_rng(seed)
        for rank in range(n_processes):
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / failure_rate))
                if t >= horizon:
                    break
                crashes.append(CrashEvent(time=t, rank=rank))
    return FailurePlan(crashes=crashes, max_failures=max_failures)


def exponential_fault_plan(
    n_processes: int,
    horizon: float,
    failure_rate: float = 0.0,
    storage_fault_rate: float = 0.0,
    seed: int = 0,
    max_failures: int | None = None,
    kinds: tuple[FaultKind, ...] = (
        FaultKind.WRITE_FAIL,
        FaultKind.TORN_WRITE,
        FaultKind.BIT_ROT,
        FaultKind.TRANSIENT,
    ),
) -> FaultPlan:
    """Draw a combined crash + storage-fault schedule up to *horizon*.

    Crashes arrive per process at *failure_rate* exactly as in
    :func:`exponential_failures`; storage faults arrive per process at
    *storage_fault_rate* with kinds cycled deterministically from
    *kinds* by the same seeded generator, so the whole adversarial
    schedule is reproducible from ``(seed, rates, horizon)``.
    """
    if storage_fault_rate < 0:
        raise SimulationError(
            f"storage_fault_rate must be >= 0, got {storage_fault_rate}"
        )
    base = exponential_failures(
        n_processes, failure_rate, horizon, seed=seed, max_failures=max_failures
    )
    faults: list[StorageFaultEvent] = []
    if storage_fault_rate > 0:
        if not kinds:
            raise SimulationError("kinds must name at least one fault kind")
        rng = np.random.default_rng(seed + 1)
        for rank in range(n_processes):
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / storage_fault_rate))
                if t >= horizon:
                    break
                kind = kinds[int(rng.integers(len(kinds)))]
                faults.append(
                    StorageFaultEvent(time=t, rank=rank, kind=kind)
                )
    return FaultPlan(
        crashes=base.crashes,
        max_failures=max_failures,
        storage_faults=faults,
    )


def exponential_network_plan(
    n_processes: int,
    horizon: float,
    failure_rate: float = 0.0,
    drop_rate: float = 0.0,
    duplicate_rate: float = 0.0,
    delay_rate: float = 0.0,
    corrupt_rate: float = 0.0,
    partition_rate: float = 0.0,
    mean_delay: float = 1.0,
    mean_partition: float = 2.0,
    seed: int = 0,
    max_failures: int | None = None,
) -> FaultPlan:
    """Draw a combined crash + network-fault schedule up to *horizon*.

    Crashes arrive per process at *failure_rate* exactly as in
    :func:`exponential_failures`. One-shot frame faults arrive
    independently per **directed channel** at their per-kind rates
    (``drop_rate``, ``duplicate_rate``, ``delay_rate``,
    ``corrupt_rate``); delays draw exponential extra latency with mean
    *mean_delay*. Partitions arrive per **unordered pair** at
    *partition_rate*, each healing after an exponential duration with
    mean *mean_partition* (clipped below the pair's next partition, so
    windows never overlap). The whole schedule is reproducible from
    ``(seed, rates, horizon)``, which is what makes fault sweeps and
    chaos replays deterministic.
    """
    for name, rate in (
        ("drop_rate", drop_rate),
        ("duplicate_rate", duplicate_rate),
        ("delay_rate", delay_rate),
        ("corrupt_rate", corrupt_rate),
        ("partition_rate", partition_rate),
    ):
        if rate < 0:
            raise SimulationError(f"{name} must be >= 0, got {rate}")
    if mean_delay <= 0:
        raise SimulationError(f"mean_delay must be positive, got {mean_delay}")
    if mean_partition <= 0:
        raise SimulationError(
            f"mean_partition must be positive, got {mean_partition}"
        )
    base = exponential_failures(
        n_processes, failure_rate, horizon, seed=seed, max_failures=max_failures
    )
    faults: list[NetworkFaultEvent] = []
    rng = np.random.default_rng(seed + 2)
    one_shot_rates = (
        (NetworkFaultKind.DROP, drop_rate),
        (NetworkFaultKind.DUPLICATE, duplicate_rate),
        (NetworkFaultKind.DELAY, delay_rate),
        (NetworkFaultKind.CORRUPT, corrupt_rate),
    )
    for src in range(n_processes):
        for dst in range(n_processes):
            if src == dst:
                continue
            for kind, rate in one_shot_rates:
                if rate <= 0:
                    continue
                t = 0.0
                while True:
                    t += float(rng.exponential(1.0 / rate))
                    if t >= horizon:
                        break
                    delay = (
                        float(rng.exponential(mean_delay))
                        if kind is NetworkFaultKind.DELAY
                        else 0.0
                    )
                    faults.append(NetworkFaultEvent(
                        time=t, kind=kind, src=src, dst=dst, delay=delay,
                    ))
    if partition_rate > 0:
        for a in range(n_processes):
            for b in range(a + 1, n_processes):
                t = 0.0
                while True:
                    t += float(rng.exponential(1.0 / partition_rate))
                    if t >= horizon:
                        break
                    gap = float(rng.exponential(1.0 / partition_rate))
                    duration = max(
                        min(float(rng.exponential(mean_partition)), gap * 0.5),
                        1e-6,
                    )
                    faults.append(NetworkFaultEvent(
                        time=t, kind=NetworkFaultKind.PARTITION, src=a, dst=b,
                    ))
                    faults.append(NetworkFaultEvent(
                        time=t + duration, kind=NetworkFaultKind.HEAL,
                        src=a, dst=b,
                    ))
                    t += gap
    return FaultPlan(
        crashes=base.crashes,
        max_failures=max_failures,
        network_faults=faults,
    )
