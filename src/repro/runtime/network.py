"""Reliable FIFO message channels with rollback support.

The system model (§2) assumes asynchronous, reliable, FIFO message
passing. Each directed channel keeps an **append-only log** of every
message ever sent on it plus two cursors: ``sent`` (log length) and
``delivered``. The undelivered suffix is the channel's current queue.

Because a channel has a single writer, rollback is exact and cheap:
checkpoints record the cursor pair per channel, and
:meth:`Network.rollback` truncates each log to the sender's cut cursor
and rewinds the delivery cursor to the receiver's — the surviving
middle segment is precisely the messages *in flight across the cut*
(Chandy-Lamport's "channel state"), which replays see again.

Latency model: ``base_latency`` plus a small deterministic per-pair
offset (derived from the seed), with FIFO delivery enforced by making
arrival times non-decreasing per channel.

Beneath the send/consume API sits a :class:`~repro.runtime.transport.
ReliableTransport`: every send is pushed through a (possibly faulty)
medium — sequence numbers, CRC, dedup/reorder, cumulative ACKs,
retransmission with exponential backoff — and the resulting delivery
time becomes the message's arrival time. With no injected network
faults the transport is a pass-through (one attempt, immediate ACK)
and behaviour is byte-identical to the bare FIFO model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ChannelError
from repro.runtime.transport import (
    NetworkFaultInjector,
    ReliableTransport,
    TransportConfig,
)

_MASK = (1 << 31) - 1


def _mix(*values: int) -> int:
    acc = 0x6A09E667
    for value in values:
        acc = (acc ^ (value & _MASK)) * 0x85EBCA6B & _MASK
        acc ^= acc >> 13
    return acc & _MASK


@dataclass(frozen=True)
class Message:
    """One application message.

    ``channel`` is ``(src, dst, lane)``; the lane separates point-to-
    point traffic (``"p2p"``) from collective traffic (``"coll"``) so a
    broadcast cannot be picked up by a plain receive.
    """

    message_id: int
    src: int
    dst: int
    lane: str
    value: int
    send_time: float
    arrival_time: float
    piggyback: dict[str, int] = field(default_factory=dict)

    @property
    def channel(self) -> tuple[int, int, str]:
        """The (src, dst, lane) channel key."""
        return (self.src, self.dst, self.lane)


@dataclass
class _Channel:
    log: list[Message] = field(default_factory=list)
    delivered: int = 0
    last_arrival: float = 0.0
    # Replay cursor for log-based single-process recovery: while
    # `replayed < len(log)`, sends on this channel are duplicates of
    # already-logged messages and are suppressed (deduplicated).
    replayed: int | None = None

    @property
    def sent(self) -> int:
        return len(self.log)

    def queue_head(self) -> Message | None:
        if self.delivered < len(self.log):
            return self.log[self.delivered]
        return None


class Network:
    """All directed channels of an ``n``-process system."""

    def __init__(
        self,
        n_processes: int,
        base_latency: float = 0.5,
        jitter: float = 0.05,
        seed: int = 0,
        fault_injector: NetworkFaultInjector | None = None,
        transport_config: TransportConfig | None = None,
        observer=None,
    ) -> None:
        if n_processes < 1:
            raise ChannelError(f"need at least one process, got {n_processes}")
        if base_latency < 0 or jitter < 0:
            raise ChannelError("latencies must be non-negative")
        self.n_processes = n_processes
        self.base_latency = base_latency
        self.jitter = jitter
        self.seed = seed
        self.transport = ReliableTransport(
            injector=fault_injector, config=transport_config,
            observer=observer,
        )
        self._channels: dict[tuple[int, int, str], _Channel] = {}
        # latency() is a pure function of (seed, src, dst); memoise it so
        # the per-send cost is one dict hit instead of a hash mix.
        self._latency_cache: dict[tuple[int, int], float] = {}
        # Per-rank channel keys (creation order), so checkpoint cursor
        # snapshots touch only a rank's own channels instead of scanning
        # every channel in the system.
        self._rank_channels: dict[int, list[tuple[int, int, str]]] = {}
        self._ids = itertools.count(1)
        # Arrival notification hook: called with each Message the moment
        # it is appended to a channel log. The engine's indexed scheduler
        # uses it to wake blocked receivers instead of polling channels.
        self.on_enqueue = None

    # -- helpers ---------------------------------------------------------------

    def _channel(self, key: tuple[int, int, str]) -> _Channel:
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channels[key] = _Channel()
            src, dst, _ = key
            self._rank_channels.setdefault(src, []).append(key)
            if dst != src:
                self._rank_channels.setdefault(dst, []).append(key)
        return channel

    def latency(self, src: int, dst: int) -> float:
        """Deterministic one-way latency for the (src, dst) pair."""
        noise = _mix(self.seed, src, dst) / _MASK  # in [0, 1]
        return self.base_latency + self.jitter * noise

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_processes:
            raise ChannelError(
                f"rank {rank} out of range [0, {self.n_processes})"
            )

    # -- sending / receiving -------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        value: int,
        send_time: float,
        lane: str = "p2p",
        piggyback: dict[str, int] | None = None,
    ) -> Message:
        """Append a message to the (src, dst, lane) channel."""
        self._check_rank(src)
        self._check_rank(dst)
        channel = self._channel((src, dst, lane))
        if channel.replayed is not None and channel.replayed < len(channel.log):
            # A recovering sender re-executing a logged send: suppress
            # the duplicate. Deterministic replay must reproduce the
            # original payload; a mismatch means non-deterministic
            # replay, which log-based recovery cannot tolerate.
            original = channel.log[channel.replayed]
            if original.value != value:
                raise ChannelError(
                    f"non-deterministic replay: "
                    f"resent {value!r}, logged {original.value!r}",
                    src=src, dst=dst, lane=lane,
                )
            channel.replayed += 1
            if channel.replayed >= len(channel.log):
                channel.replayed = None
            return original
        latency = self._latency_cache.get((src, dst))
        if latency is None:
            latency = self._latency_cache[(src, dst)] = self.latency(src, dst)
        delivery = self.transport.transmit(
            src, dst, lane, value, send_time, latency
        )
        arrival = max(delivery.delivery_time, channel.last_arrival)
        channel.last_arrival = arrival
        # Build the frozen message through __dict__ directly: one
        # message per application send, and the generated frozen
        # __init__ (object.__setattr__ per field) costs ~3x this path.
        message = Message.__new__(Message)
        message.__dict__.update(
            message_id=next(self._ids),
            src=src,
            dst=dst,
            lane=lane,
            value=value,
            send_time=send_time,
            arrival_time=arrival,
            piggyback=dict(piggyback) if piggyback else {},
        )
        channel.log.append(message)
        if self.on_enqueue is not None:
            self.on_enqueue(message)
        for extra_arrival in delivery.extra_copies:
            # Only reachable with receiver-side dedup disabled (a test
            # hook): the duplicate escapes the transport and becomes a
            # second, app-visible copy on the channel.
            arrival = max(extra_arrival, channel.last_arrival)
            channel.last_arrival = arrival
            copy = Message(
                message_id=next(self._ids),
                src=src,
                dst=dst,
                lane=lane,
                value=value,
                send_time=send_time,
                arrival_time=arrival,
                piggyback=dict(piggyback or {}),
            )
            channel.log.append(copy)
            if self.on_enqueue is not None:
                self.on_enqueue(copy)
        return message

    def peek(self, src: int, dst: int, lane: str = "p2p") -> Message | None:
        """The next undelivered message on the channel, if any.

        Read-only: unlike the writer paths it never materialises a
        channel, so polling an untouched channel allocates nothing.
        """
        channel = self._channels.get((src, dst, lane))
        return None if channel is None else channel.queue_head()

    def consume(self, src: int, dst: int, lane: str = "p2p") -> Message:
        """Deliver (pop) the next message on the channel."""
        channel = self._channel((src, dst, lane))
        head = channel.queue_head()
        if head is None:
            raise ChannelError(
                "channel is empty", src=src, dst=dst, lane=lane
            )
        channel.delivered += 1
        return head

    def pop(self, src: int, dst: int, lane: str = "p2p") -> Message | None:
        """``peek`` followed by ``consume``, fused into one lookup.

        Returns the delivered head, or ``None`` when the channel is
        absent or drained (in which case nothing is consumed). Like
        ``peek`` it never materialises a channel.
        """
        channel = self._channels.get((src, dst, lane))
        if channel is None:
            return None
        head = channel.queue_head()
        if head is not None:
            channel.delivered += 1
        return head

    # -- rollback support ------------------------------------------------------------

    def cursors_for(self, rank: int) -> dict[tuple[int, int, str], tuple[int, int]]:
        """Snapshot of (sent, delivered) cursors on *rank*'s channels.

        Outgoing channels contribute their ``sent`` cursor, incoming
        channels their ``delivered`` cursor; both are stored so a cut
        assembled from per-process checkpoints can rebuild every
        channel.
        """
        cursors: dict[tuple[int, int, str], tuple[int, int]] = {}
        for key in self._rank_channels.get(rank, ()):
            channel = self._channels[key]
            cursors[key] = (channel.sent, channel.delivered)
        return cursors

    def rollback(
        self,
        cut_cursors: dict[tuple[int, int, str], tuple[int, int]],
        restart_time: float,
    ) -> list[Message]:
        """Rewind every channel to the cut described by *cut_cursors*.

        *cut_cursors* maps channel key to ``(sent_at_cut,
        delivered_at_cut)`` where the sent cursor comes from the
        **sender's** checkpoint and the delivered cursor from the
        **receiver's**. Channels absent from the map are reset to
        empty. Messages in flight across the cut stay queued, with
        arrival times re-based at *restart_time*. Returns the in-flight
        messages (the recovered "channel state").
        """
        in_flight: list[Message] = []
        for key, channel in self._channels.items():
            sent, delivered = cut_cursors.get(key, (0, 0))
            if sent > channel.sent:
                raise ChannelError(
                    f"corrupt cut cursors: "
                    f"({sent}, {delivered}) vs log length {channel.sent}",
                    src=key[0], dst=key[1], lane=key[2],
                )
            # delivered > sent happens only for *inconsistent* cuts (the
            # receiver's checkpoint saw an orphan message the sender's
            # checkpoint has not sent). Restoring such a cut is already
            # wrong; clamp so the broken recovery can be simulated and
            # observed rather than crash the engine.
            delivered = min(delivered, sent)
            del channel.log[sent:]
            channel.delivered = min(delivered, channel.sent)
            channel.last_arrival = restart_time
            self.transport.rebase(key, restart_time)
            for position in range(channel.delivered, channel.sent):
                message = channel.log[position]
                arrival = max(
                    restart_time + self.latency(message.src, message.dst),
                    channel.last_arrival,
                )
                channel.last_arrival = arrival
                rebased = Message(
                    message_id=message.message_id,
                    src=message.src,
                    dst=message.dst,
                    lane=message.lane,
                    value=message.value,
                    send_time=message.send_time,
                    arrival_time=arrival,
                    piggyback=dict(message.piggyback),
                )
                channel.log[position] = rebased
                in_flight.append(rebased)
        return in_flight

    def replay_for_rank(
        self,
        rank: int,
        cut_cursors: dict[tuple[int, int, str], tuple[int, int]],
        restart_time: float,
    ) -> int:
        """Prepare channels for a *single-process* log-based restart.

        Unlike :meth:`rollback`, nothing is truncated and other
        processes' channels are untouched:

        - incoming channels (``* -> rank``) rewind their delivery cursor
          to the checkpoint's value, so the recovering process re-reads
          the logged messages (receiver-based message logging); their
          arrival times are re-based at *restart_time* (a stable-storage
          read, not a network transit);
        - outgoing channels (``rank -> *``) arm the replay cursor at the
          checkpoint's sent count, so re-executed sends up to the crash
          point are suppressed as duplicates.

        Returns the number of messages the process will re-consume.
        """
        replayed = 0
        for key, channel in self._channels.items():
            src, dst, _ = key
            if dst == rank:
                _, delivered = cut_cursors.get(key, (0, 0))
                delivered = min(delivered, channel.sent)
                for position in range(delivered, channel.delivered):
                    message = channel.log[position]
                    channel.log[position] = Message(
                        message_id=message.message_id,
                        src=message.src,
                        dst=message.dst,
                        lane=message.lane,
                        value=message.value,
                        send_time=message.send_time,
                        arrival_time=restart_time,
                        piggyback=dict(message.piggyback),
                    )
                    replayed += 1
                channel.delivered = delivered
            elif src == rank:
                sent, _ = cut_cursors.get(key, (0, 0))
                channel.replayed = min(sent, channel.sent)
                if channel.replayed >= channel.sent:
                    channel.replayed = None
        return replayed

    # -- introspection -----------------------------------------------------------------

    def queued_messages(self) -> list[Message]:
        """Every currently undelivered message, across all channels."""
        queued: list[Message] = []
        for channel in self._channels.values():
            queued.extend(channel.log[channel.delivered :])
        return queued

    def total_sent(self) -> int:
        """Total messages ever sent (across rollback truncations)."""
        return sum(c.sent for c in self._channels.values())
