"""Chaos-schedule harness: randomized fault schedules, replayed and shrunk.

Property-based robustness testing for the network layer. A *schedule*
is a :class:`~repro.runtime.failures.FaultPlan` of crashes plus network
faults drawn **seed-deterministically** (the same ``(seed, config)``
always yields the same plan, and replaying a plan reproduces a
byte-identical :class:`~repro.runtime.engine.SimulationResult`). The
harness runs a schedule against a checkpointing protocol and checks the
paper's end-to-end contract:

1. the run **completes** (the reliable transport absorbs every fault);
2. every surviving straight cut ``R_i`` on stable storage is a
   **recovery line** (Definition 2.1 over the stored vector clocks —
   storage is truncated on rollback, so it holds exactly the surviving
   timeline);
3. the **final state** equals the fault-free baseline (the transport
   must hide the unreliable medium from the application entirely).

When a schedule fails, :func:`shrink_schedule` delta-debugs it down to
a minimal counterexample — repeatedly dropping event chunks while the
failure persists — which is only sound because replay is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError, SimulationError, StorageError
from repro.runtime.engine import Simulation, SimulationResult, SupervisorConfig
from repro.runtime.failures import (
    ONE_SHOT_NETWORK_KINDS,
    CrashEvent,
    FaultPlan,
    NetworkFaultEvent,
    NetworkFaultKind,
    RecoveryFaultEvent,
    RecoveryFaultKind,
)
from repro.runtime.transport import TransportConfig

#: The protocols the chaos harness exercises by default.
CHAOS_PROTOCOLS = ("appl-driven", "uncoordinated", "msg-logging")


def _make_protocol(name: str):
    from repro.protocols import make_protocol

    return make_protocol(name, period=6.0)


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the chaos draw and of the simulated workload.

    Attributes:
        n_processes: System size of each run.
        steps: The workload's ``steps`` parameter.
        horizon: Fault times are drawn in ``[0, horizon)``.
        max_events: Upper bound on one-shot frame faults per schedule.
        max_delay: Upper bound of a delay fault's extra latency.
        partition_probability: Chance a schedule contains one healed
            partition window.
        partition_duration: Upper bound of that window's length.
        crash_probability: Chance a schedule contains one crash.
        recovery_fault_probability: Per-slot chance of a recovery-time
            fault (nested crash, restore-read failure, lost control
            traffic) riding along with a drawn crash. ``0.0`` (default)
            draws none **and skips the extra rng draws entirely**, so
            legacy schedules stay byte-identical.
        max_recovery_faults: Recovery-fault slots per schedule.
        retain_k: Bounded-storage retention pressure: keep at most this
            many checkpoints per rank (``None`` = unbounded, the
            legacy behaviour).
        sim_seed: Simulator seed (inputs, latencies) — *not* the
            schedule seed, so one workload meets many schedules.
        scheduler: Engine scheduler (``"indexed"`` or ``"reference"``);
            verdicts and artifacts are byte-identical for both.
        backend: Execution backend (``"compiled"`` or ``"reference"``);
            like the scheduler, verdicts and artifacts are
            byte-identical for both.
        checkpoint_mode: Checkpoint content policy (``"full"``,
            ``"pruned"``, ``"delta"``, ``"pruned+delta"``). Recovery
            must be byte-identical across modes, so the only observable
            difference under chaos is stored payload bytes.
    """

    n_processes: int = 3
    steps: int = 8
    horizon: float = 30.0
    max_events: int = 12
    max_delay: float = 2.0
    partition_probability: float = 0.5
    partition_duration: float = 3.0
    crash_probability: float = 0.5
    recovery_fault_probability: float = 0.0
    max_recovery_faults: int = 2
    retain_k: int | None = None
    sim_seed: int = 0
    scheduler: str = "indexed"
    backend: str = "compiled"
    checkpoint_mode: str = "full"


def draw_schedule(seed: int, config: ChaosConfig = ChaosConfig()) -> FaultPlan:
    """Draw one randomized, seed-deterministic fault schedule.

    The draw mixes one-shot frame faults on random directed channels,
    an optional healed partition window, and an optional crash. Exact
    duplicates (which :class:`FaultPlan` rejects) are skipped, so the
    result is always a valid plan.
    """
    rng = np.random.default_rng(seed)
    n = config.n_processes
    events: list[NetworkFaultEvent] = []
    seen: set[tuple[float, str, int, int]] = set()
    count = int(rng.integers(1, config.max_events + 1))
    for _ in range(count):
        kind = ONE_SHOT_NETWORK_KINDS[
            int(rng.integers(len(ONE_SHOT_NETWORK_KINDS)))
        ]
        src = int(rng.integers(n))
        dst = int(rng.integers(n - 1))
        if dst >= src:
            dst += 1
        time = round(float(rng.uniform(0.0, config.horizon)), 6)
        key = (time, kind.value, src, dst)
        if key in seen:
            continue
        seen.add(key)
        delay = (
            round(float(rng.uniform(0.1, config.max_delay)), 6)
            if kind is NetworkFaultKind.DELAY
            else 0.0
        )
        events.append(NetworkFaultEvent(
            time=time, kind=kind, src=src, dst=dst, delay=delay,
        ))
    if rng.random() < config.partition_probability:
        a = int(rng.integers(n))
        b = int(rng.integers(n - 1))
        if b >= a:
            b += 1
        start = round(float(rng.uniform(0.0, config.horizon * 0.6)), 6)
        length = round(float(rng.uniform(0.5, config.partition_duration)), 6)
        events.append(NetworkFaultEvent(
            time=start, kind=NetworkFaultKind.PARTITION, src=a, dst=b,
        ))
        events.append(NetworkFaultEvent(
            time=start + length, kind=NetworkFaultKind.HEAL, src=a, dst=b,
        ))
    crashes: list[CrashEvent] = []
    if rng.random() < config.crash_probability:
        crashes.append(CrashEvent(
            time=round(float(rng.uniform(1.0, config.horizon * 0.8)), 6),
            rank=int(rng.integers(n)),
        ))
    recovery_faults: list[RecoveryFaultEvent] = []
    if crashes and config.recovery_fault_probability > 0:
        # Guarded by probability > 0 so legacy configs consume exactly
        # the rng stream they always did (schedules stay byte-stable).
        kinds = (
            RecoveryFaultKind.CRASH,
            RecoveryFaultKind.READ_FAULT,
            RecoveryFaultKind.CONTROL_LOST,
        )
        taken: set[tuple[int, int, str]] = set()
        for _ in range(config.max_recovery_faults):
            if rng.random() >= config.recovery_fault_probability:
                continue
            kind = kinds[int(rng.integers(len(kinds)))]
            recovery = int(rng.integers(2))
            rank = int(rng.integers(n))
            attempts = int(rng.integers(1, 3))
            key = (recovery, rank, kind.value)
            if key in taken:
                continue
            taken.add(key)
            recovery_faults.append(RecoveryFaultEvent(
                recovery=recovery, rank=rank, kind=kind, attempts=attempts,
            ))
    return FaultPlan(
        crashes=crashes, max_failures=2, network_faults=events,
        recovery_faults=recovery_faults,
    )


@dataclass(frozen=True)
class ChaosOutcome:
    """Verdict of one schedule replay against one protocol.

    A clean ``UNRECOVERABLE`` verdict (the supervisor exhausted its
    retries or no intact line survived) counts as *ok* as long as the
    invariants that still apply hold: surviving straight cuts are
    recovery lines and retention GC never broke recoverability. The
    final-state and completion checks are vacuous for such runs.
    """

    ok: bool
    reason: str
    completed: bool
    recovery_lines_ok: bool
    state_ok: bool
    faults: int
    crashes: int
    unrecoverable: bool = False
    retention_ok: bool = True

    def describe(self) -> str:
        """One-line human-readable verdict."""
        status = "ok" if self.ok else f"FAIL ({self.reason})"
        if self.unrecoverable:
            status += " [unrecoverable]"
        return (
            f"{status}: {self.faults} network fault(s), "
            f"{self.crashes} crash(es)"
        )

    def to_json_dict(self) -> dict:
        """JSON-ready form (journalled by ``repro chaos --resume``)."""
        return {
            "ok": self.ok,
            "reason": self.reason,
            "completed": self.completed,
            "recovery_lines_ok": self.recovery_lines_ok,
            "state_ok": self.state_ok,
            "faults": self.faults,
            "crashes": self.crashes,
            "unrecoverable": self.unrecoverable,
            "retention_ok": self.retention_ok,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ChaosOutcome":
        """Rebuild a verdict from :meth:`to_json_dict`'s schema."""
        return cls(
            ok=bool(data["ok"]),
            reason=str(data["reason"]),
            completed=bool(data["completed"]),
            recovery_lines_ok=bool(data["recovery_lines_ok"]),
            state_ok=bool(data["state_ok"]),
            faults=int(data["faults"]),
            crashes=int(data["crashes"]),
            unrecoverable=bool(data.get("unrecoverable", False)),
            retention_ok=bool(data.get("retention_ok", True)),
        )


def storage_recovery_lines_consistent(
    result: SimulationResult, n_processes: int
) -> bool:
    """Whether every surviving straight cut on storage is a recovery line.

    Storage is truncated to the surviving timeline on every rollback,
    so — unlike the raw trace, which keeps discarded-timeline events —
    its per-number cuts are exactly the recovery lines a failure at
    run end could use. Checks Definition 2.1 (no member happened
    before another) over the stored vector clocks for every common
    checkpoint number.

    Only protocols claiming ``induces_recovery_lines`` are held to
    this (the application-driven protocol — it is the paper's central
    claim). Uncoordinated checkpointing may restore a dominoed
    non-straight cut and log-based recovery re-phases the restarted
    rank's timer; both legitimately leave inconsistent straight cuts
    behind while staying recoverable — their recoverability rests on
    per-rank intact checkpoints, which the retention invariant guards.
    """
    ranks = list(range(n_processes))
    storage = result.storage
    common = storage.max_common_number(ranks)
    for number in range(1, common + 1):
        try:
            members = [
                storage.latest_with_number(rank, number) for rank in ranks
            ]
        except StorageError:
            # A rank's surviving history skips this number (GC or
            # truncation) — there is no straight cut R_number to check.
            continue
        for a in members:
            for b in members:
                if a is not b and a.clock.happened_before(b.clock):
                    return False
    return True


def retention_invariant_holds(
    result: SimulationResult,
    n_processes: int,
    retain_k: int | None,
    checkpoint_mode: str = "full",
) -> bool:
    """Whether retention GC preserved recoverability and its bound.

    Two checks: (1) every rank still holds at least one *intact*
    checkpoint — GC must never collect the last restorable state, even
    while evicting under pressure; (2) with ``retain_k`` set, per-rank
    occupancy stays within ``retain_k`` plus a slack for entries the
    safe-GC invariant refuses to evict (the protected degraded-fallback
    candidates; in a delta mode additionally every kept entry's delta
    ancestors, each chain at most :data:`~repro.runtime.storage.
    DELTA_CHAIN_CAP` deep). Integrity is read via ``verify`` directly
    so the check cannot consume armed restore-read faults.
    """
    from repro.runtime.storage import DELTA_CHAIN_CAP

    storage = result.storage
    verify = getattr(storage, "verify", None)
    for rank in range(n_processes):
        history = storage.history(rank)
        if not any(verify(c) if verify is not None else True
                   for c in history):
            return False
    if retain_k is not None:
        slack = SupervisorConfig().max_attempts + 2
        if "delta" in checkpoint_mode:
            # Chain-protection can pin the ancestors of the oldest kept
            # entry and of each protected fallback candidate.
            slack += (slack + 1) * DELTA_CHAIN_CAP
        for rank in range(n_processes):
            if storage.count(rank) > retain_k + slack:
                return False
    return True


_BASELINES: dict[tuple[str, int, int, int], dict] = {}


def _workload():
    from repro.lang.programs import ring_pipeline

    return ring_pipeline()


def _baseline_env(protocol: str, config: ChaosConfig) -> dict:
    """Final environment of the fault-free run (cached per workload)."""
    key = (protocol, config.n_processes, config.steps, config.sim_seed,
           config.scheduler, config.backend, config.checkpoint_mode)
    if key not in _BASELINES:
        result = Simulation(
            _workload(),
            config.n_processes,
            params={"steps": config.steps},
            protocol=_make_protocol(protocol),
            seed=config.sim_seed,
            scheduler=config.scheduler,
            backend=config.backend,
            checkpoint_mode=config.checkpoint_mode,
        ).run()
        _BASELINES[key] = result.final_env
    return _BASELINES[key]


def run_schedule(
    plan: FaultPlan,
    protocol: str = "appl-driven",
    config: ChaosConfig = ChaosConfig(),
    transport_config: TransportConfig | None = None,
    observer=None,
) -> ChaosOutcome:
    """Replay one schedule against one protocol and judge the outcome.

    ``transport_config`` is the test hook: passing a config with
    ``dedup=False`` runs the deliberately-broken transport the harness
    must be able to catch and shrink. ``observer`` is an optional
    :class:`~repro.obs.bus.EventBus` threaded into the replay so a
    failing schedule can be re-run under full causal tracing.
    """
    faults = len(plan.network_faults)
    crashes = len(plan.effective())
    baseline = _baseline_env(protocol, config)
    sim = Simulation(
        _workload(),
        config.n_processes,
        params={"steps": config.steps},
        protocol=_make_protocol(protocol),
        failure_plan=plan,
        seed=config.sim_seed,
        transport_config=transport_config,
        observer=observer,
        scheduler=config.scheduler,
        backend=config.backend,
        checkpoint_mode=config.checkpoint_mode,
        retain_k=config.retain_k,
    )
    try:
        result = sim.run()
    except ReproError as error:
        return ChaosOutcome(
            ok=False,
            reason=f"{type(error).__name__}: {error}",
            completed=False,
            recovery_lines_ok=False,
            state_ok=False,
            faults=faults,
            crashes=crashes,
        )
    completed = bool(result.stats.completed)
    unrecoverable = result.verdict == "unrecoverable"
    lines_ok = (
        storage_recovery_lines_consistent(result, config.n_processes)
        if getattr(sim.protocol, "induces_recovery_lines", True)
        else True
    )
    retention_ok = retention_invariant_holds(
        result, config.n_processes, config.retain_k,
        checkpoint_mode=config.checkpoint_mode,
    )
    state_ok = result.final_env == baseline
    if unrecoverable:
        # The supervisor gave up cleanly: recovery terminated in bounded
        # retries with a verdict. The run cannot complete or match the
        # baseline, but the storage invariants must still hold.
        ok = lines_ok and retention_ok
    else:
        ok = completed and lines_ok and state_ok and retention_ok
    if ok:
        reason = ""
    elif not lines_ok:
        reason = "a surviving straight cut is not a recovery line"
    elif not retention_ok:
        reason = "retention GC broke recoverability (or its bound)"
    elif not completed:
        reason = "run did not complete"
    else:
        reason = "final state diverged from the fault-free baseline"
    return ChaosOutcome(
        ok=ok,
        reason=reason,
        completed=completed,
        recovery_lines_ok=lines_ok,
        state_ok=state_ok,
        faults=faults,
        crashes=crashes,
        unrecoverable=unrecoverable,
        retention_ok=retention_ok,
    )


def _chaos_cell(payload) -> ChaosOutcome:
    """Campaign-executor worker: replay one (plan, protocol) cell."""
    plan, protocol, config, transport_config = payload
    return run_schedule(
        plan, protocol=protocol, config=config,
        transport_config=transport_config,
    )


def _chaos_journal_key(key) -> str:
    """Journal key of one sweep cell: ``protocol/seedN``."""
    protocol, seed = key
    return f"{protocol}/seed{seed}"


def _chaos_cell_hash(_key, payload) -> str:
    """Content hash of one sweep cell (plan × protocol × config)."""
    import hashlib
    import json
    from dataclasses import asdict

    plan, protocol, config, transport_config = payload
    material = json.dumps(
        {
            "plan": plan.to_json_dict(),
            "protocol": protocol,
            "config": asdict(config),
            "transport": (
                None if transport_config is None else asdict(transport_config)
            ),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _encode_chaos_outcome(outcome: ChaosOutcome) -> dict:
    """Journal encoder for a sweep verdict."""
    return outcome.to_json_dict()


def _quarantined_chaos_outcome(_key, payload, message, _error):
    """Quarantine factory: a structured failing verdict for a dead cell."""
    plan = payload[0]
    return ChaosOutcome(
        ok=False,
        reason=message,
        completed=False,
        recovery_lines_ok=False,
        state_ok=False,
        faults=len(plan.network_faults),
        crashes=len(plan.effective()),
    )


def chaos_sweep(
    seeds: range,
    protocols: tuple[str, ...] = CHAOS_PROTOCOLS,
    config: ChaosConfig = ChaosConfig(),
    transport_config: TransportConfig | None = None,
    artifacts_dir=None,
    jobs: int | None = 1,
    policy=None,
    journal_path=None,
    executor_fault_plan=None,
    executor_stats=None,
) -> dict[tuple[str, int], ChaosOutcome]:
    """Run every (protocol, seed) cell and collect the verdicts.

    Cells run on the campaign executor: *jobs* worker processes
    (``None``/0 = all cores), with verdicts merged deterministically by
    ``(protocol, seed)`` key — the returned mapping (order included) is
    **byte-identical for any worker count**, because every cell is an
    independent seed-deterministic replay.

    With *artifacts_dir* set, every failing cell automatically gets a
    diagnostic bundle written there via
    :func:`dump_failure_artifacts` — the vector-clock-stamped flight
    recorder, the verbatim schedule, and the ddmin-shrunk minimal
    counterexample. Artifacts are dumped from the coordinating process
    after the sweep, in cell order, so parallel runs produce the same
    files as serial ones.

    The sweep runs on the resilient executor when *policy* (an
    :class:`~repro.campaign.executor.ExecutorPolicy`), *journal_path*
    (enabling ``repro chaos --resume``: finished cells are served from
    the journal), or *executor_fault_plan* (the deterministic
    crash/hang/raise injector, keyed by ``(protocol, seed)``) is set;
    a cell whose worker dies past its retry budget yields a structured
    failing :class:`ChaosOutcome` instead of an unhandled
    ``BrokenProcessPool``. *executor_stats* (an
    :class:`~repro.campaign.executor.ExecutorStats`) accumulates the
    resilience counters in place.
    """
    from repro.campaign.executor import run_cells
    from repro.campaign.journal import CampaignJournal

    plans = {
        (protocol, seed): draw_schedule(seed, config)
        for protocol in protocols
        for seed in seeds
    }
    items = [
        (key, (plan, key[0], config, transport_config))
        for key, plan in plans.items()
    ]
    resilient = (
        policy is not None
        or journal_path is not None
        or executor_fault_plan is not None
    )
    if not resilient:
        outcomes, _timings = run_cells(items, _chaos_cell, jobs=jobs)
    else:
        journal = (
            CampaignJournal(journal_path)
            if journal_path is not None else None
        )
        try:
            outcomes, _timings = run_cells(
                items,
                _chaos_cell,
                jobs=jobs,
                policy=policy,
                journal=journal,
                journal_key=_chaos_journal_key,
                cell_hash=_chaos_cell_hash,
                encode=_encode_chaos_outcome,
                decode=ChaosOutcome.from_json_dict,
                quarantine=_quarantined_chaos_outcome,
                fault_plan=executor_fault_plan,
                stats=executor_stats,
            )
        finally:
            if journal is not None:
                journal.close()
    if artifacts_dir is not None:
        for (protocol, seed), outcome in outcomes.items():
            # Clean UNRECOVERABLE verdicts are ok but still archived:
            # the acceptance contract wants every such schedule shrunk
            # and replayable.
            if not outcome.ok or outcome.unrecoverable:
                dump_failure_artifacts(
                    plans[(protocol, seed)],
                    protocol=protocol,
                    config=config,
                    out_dir=artifacts_dir,
                    transport_config=transport_config,
                    prefix=f"{protocol}-seed{seed}",
                )
    return outcomes


def dump_failure_artifacts(
    plan: FaultPlan,
    protocol: str,
    config: ChaosConfig,
    out_dir,
    transport_config: TransportConfig | None = None,
    prefix: str = "failure",
    shrink: bool = True,
    recorder_capacity: int = 4096,
    max_shrink_runs: int = 200,
) -> dict[str, object]:
    """Archive everything needed to diagnose a failing schedule.

    Re-runs the schedule with the observability subsystem attached and
    writes, into *out_dir* (created if needed):

    - ``<prefix>.flight.jsonl`` — the flight recorder's bounded,
      vector-clock-stamped event log of the failing replay (convertible
      with ``repro trace chrome``);
    - ``<prefix>.schedule.json`` — the schedule verbatim, replayable
      via ``repro simulate --fault-plan``;
    - ``<prefix>.shrunk.json`` — the ddmin-minimal counterexample (when
      *shrink* is set and the failure reproduces deterministically);
    - ``<prefix>.outcome.txt`` — the one-line verdict.

    Returns a dict mapping artifact names to their paths.
    """
    import json
    from pathlib import Path

    from repro.obs import Observability

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: dict[str, object] = {}

    obs = Observability(capacity=recorder_capacity, keep_events=False)
    outcome = run_schedule(
        plan, protocol=protocol, config=config,
        transport_config=transport_config, observer=obs.bus,
    )
    flight = out / f"{prefix}.flight.jsonl"
    obs.recorder.dump(flight)
    paths["flight_recorder"] = flight

    schedule = out / f"{prefix}.schedule.json"
    schedule.write_text(json.dumps(plan.to_json_dict(), indent=2) + "\n")
    paths["schedule"] = schedule

    verdict = out / f"{prefix}.outcome.txt"
    verdict.write_text(outcome.describe() + "\n")
    paths["outcome"] = verdict

    if shrink and (not outcome.ok or outcome.unrecoverable):
        if not outcome.ok:
            def still_fails(candidate: FaultPlan) -> bool:
                return not run_schedule(
                    candidate, protocol=protocol, config=config,
                    transport_config=transport_config,
                ).ok
        else:
            # An ok-but-unrecoverable schedule shrinks against "still
            # ends in the UNRECOVERABLE verdict", yielding the minimal
            # replayable terminal-recovery counterexample.
            def still_fails(candidate: FaultPlan) -> bool:
                return run_schedule(
                    candidate, protocol=protocol, config=config,
                    transport_config=transport_config,
                ).unrecoverable

        minimal = shrink_schedule(
            plan, still_fails, max_runs=max_shrink_runs
        )
        shrunk = out / f"{prefix}.shrunk.json"
        shrunk.write_text(
            json.dumps(minimal.to_json_dict(), indent=2) + "\n"
        )
        paths["shrunk"] = shrunk
    return paths


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _atoms(plan: FaultPlan) -> list[tuple[str, object]]:
    """Flatten a plan into removable atoms (tagged events)."""
    atoms: list[tuple[str, object]] = []
    atoms.extend(("crash", c) for c in plan.crashes)
    atoms.extend(("storage", f) for f in plan.storage_faults)
    atoms.extend(("network", f) for f in plan.network_faults)
    atoms.extend(("recovery", f) for f in plan.recovery_faults)
    return atoms


def _build(
    atoms: list[tuple[str, object]], max_failures: int | None
) -> FaultPlan | None:
    """Reassemble a plan from atoms; ``None`` when validation rejects it

    (e.g. a heal whose partition was removed — such candidates are
    simply skipped by the shrinker).
    """
    try:
        return FaultPlan(
            crashes=[e for tag, e in atoms if tag == "crash"],
            max_failures=max_failures,
            storage_faults=[e for tag, e in atoms if tag == "storage"],
            network_faults=[e for tag, e in atoms if tag == "network"],
            recovery_faults=[e for tag, e in atoms if tag == "recovery"],
        )
    except SimulationError:
        return None


def shrink_schedule(
    plan: FaultPlan,
    still_fails,
    max_runs: int = 500,
) -> FaultPlan:
    """Delta-debug *plan* to a locally-minimal failing schedule.

    *still_fails* is a predicate over :class:`FaultPlan`; the input
    plan must satisfy it. Works ddmin-style: first tries dropping
    large chunks of the event list, then single events, until no
    single-event removal keeps the failure — the classic 1-minimal
    guarantee. Deterministic replay makes the predicate stable, so the
    result is reproducible. ``max_runs`` bounds predicate evaluations.
    """
    current = _atoms(plan)
    runs = 0

    def failing(atoms: list[tuple[str, object]]) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        candidate = _build(atoms, plan.max_failures)
        if candidate is None:
            return False
        runs += 1
        return still_fails(candidate)

    if not still_fails(plan):
        raise SimulationError(
            "shrink_schedule needs a failing schedule to start from"
        )
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        shrunk_this_pass = True
        while shrunk_this_pass:
            shrunk_this_pass = False
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk:]
                if candidate and failing(candidate):
                    current = candidate
                    shrunk_this_pass = True
                else:
                    start += chunk
        chunk //= 2
    result = _build(current, plan.max_failures)
    assert result is not None  # current always came from a valid build
    return result
