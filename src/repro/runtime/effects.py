"""Interpreter effects.

The interpreter advances one statement at a time and *yields an effect*
describing what the statement needs from the outside world; the engine
performs it (accounting for simulated time, routing messages, taking
snapshots) and resumes the interpreter. This keeps the interpreter pure
and the engine in full control of time and interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast_nodes as ast


@dataclass(frozen=True)
class Effect:
    """Base class for effects."""


@dataclass(frozen=True)
class LocalEffect(Effect):
    """A cheap local statement (assignment, pass, branch evaluation)."""

    description: str = ""


@dataclass(frozen=True)
class ComputeEffect(Effect):
    """``compute(cost)``: opaque local work of the given duration."""

    cost: float


@dataclass(frozen=True)
class SendEffect(Effect):
    """Point-to-point send of *value* to rank *dest*."""

    dest: int
    value: int
    stmt: ast.Send


@dataclass(frozen=True)
class RecvEffect(Effect):
    """Blocking receive from rank *source* into variable *target*."""

    source: int
    target: str
    stmt: ast.Recv


@dataclass(frozen=True)
class BcastSendEffect(Effect):
    """Collective broadcast, root side: deliver *value* to every rank."""

    value: int
    stmt: ast.Bcast


@dataclass(frozen=True)
class BcastRecvEffect(Effect):
    """Collective broadcast, non-root side: blocking receive from *root*."""

    root: int
    target: str
    stmt: ast.Bcast


@dataclass(frozen=True)
class CheckpointEffect(Effect):
    """``checkpoint``: snapshot process state to stable storage."""

    stmt: ast.Checkpoint
