"""Discrete-event distributed-system simulator.

This package is the substrate replacing the paper's cluster testbed: it
executes MiniMP programs on ``n`` simulated processes connected by
reliable FIFO channels, with per-statement time accounting, stable
storage for checkpoints, failure injection, and rollback recovery. The
interpreter keeps an explicit control stack (no native coroutines), so
a checkpoint is a genuine restorable snapshot of process state.
"""

from repro.runtime.chaos import (
    ChaosConfig,
    ChaosOutcome,
    chaos_sweep,
    draw_schedule,
    dump_failure_artifacts,
    run_schedule,
    shrink_schedule,
)
from repro.runtime.effects import (
    BcastRecvEffect,
    BcastSendEffect,
    CheckpointEffect,
    ComputeEffect,
    Effect,
    LocalEffect,
    RecvEffect,
    SendEffect,
)
from repro.runtime.engine import (
    RecoverySupervisor,
    RuntimeCosts,
    Simulation,
    SimulationResult,
    SupervisorConfig,
)
from repro.runtime.failures import (
    CrashEvent,
    FailurePlan,
    FaultKind,
    FaultPlan,
    NetworkFaultEvent,
    NetworkFaultKind,
    RecoveryFaultEvent,
    RecoveryFaultKind,
    StorageFaultEvent,
    exponential_failures,
    exponential_fault_plan,
    exponential_network_plan,
)
from repro.runtime.interpreter import ProcessInterpreter, ProcessSnapshot
from repro.runtime.network import Message, Network
from repro.runtime.transport import (
    NetworkFaultInjector,
    ReliableTransport,
    TransportConfig,
    TransportStats,
)
from repro.runtime.storage import (
    CheckpointStore,
    ReplicatedCheckpointStore,
    RetentionPolicy,
    StableStorage,
    StoredCheckpoint,
)
from repro.runtime.trace import ExecutionTrace

__all__ = [
    "BcastRecvEffect",
    "BcastSendEffect",
    "CheckpointEffect",
    "ChaosConfig",
    "ChaosOutcome",
    "CheckpointStore",
    "ComputeEffect",
    "CrashEvent",
    "Effect",
    "ExecutionTrace",
    "FailurePlan",
    "FaultKind",
    "FaultPlan",
    "LocalEffect",
    "Message",
    "Network",
    "NetworkFaultEvent",
    "NetworkFaultInjector",
    "NetworkFaultKind",
    "ProcessInterpreter",
    "ProcessSnapshot",
    "RecoveryFaultEvent",
    "RecoveryFaultKind",
    "RecoverySupervisor",
    "RecvEffect",
    "ReliableTransport",
    "ReplicatedCheckpointStore",
    "RetentionPolicy",
    "RuntimeCosts",
    "SendEffect",
    "Simulation",
    "SimulationResult",
    "StableStorage",
    "StorageFaultEvent",
    "StoredCheckpoint",
    "SupervisorConfig",
    "TransportConfig",
    "TransportStats",
    "chaos_sweep",
    "draw_schedule",
    "dump_failure_artifacts",
    "exponential_failures",
    "exponential_fault_plan",
    "exponential_network_plan",
    "run_schedule",
    "shrink_schedule",
]
