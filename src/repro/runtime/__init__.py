"""Discrete-event distributed-system simulator.

This package is the substrate replacing the paper's cluster testbed: it
executes MiniMP programs on ``n`` simulated processes connected by
reliable FIFO channels, with per-statement time accounting, stable
storage for checkpoints, failure injection, and rollback recovery. The
interpreter keeps an explicit control stack (no native coroutines), so
a checkpoint is a genuine restorable snapshot of process state.
"""

from repro.runtime.effects import (
    BcastRecvEffect,
    BcastSendEffect,
    CheckpointEffect,
    ComputeEffect,
    Effect,
    LocalEffect,
    RecvEffect,
    SendEffect,
)
from repro.runtime.engine import RuntimeCosts, Simulation, SimulationResult
from repro.runtime.failures import (
    CrashEvent,
    FailurePlan,
    FaultKind,
    FaultPlan,
    StorageFaultEvent,
    exponential_failures,
    exponential_fault_plan,
)
from repro.runtime.interpreter import ProcessInterpreter, ProcessSnapshot
from repro.runtime.network import Message, Network
from repro.runtime.storage import (
    CheckpointStore,
    ReplicatedCheckpointStore,
    StableStorage,
    StoredCheckpoint,
)
from repro.runtime.trace import ExecutionTrace

__all__ = [
    "BcastRecvEffect",
    "BcastSendEffect",
    "CheckpointEffect",
    "CheckpointStore",
    "ComputeEffect",
    "CrashEvent",
    "Effect",
    "ExecutionTrace",
    "FailurePlan",
    "FaultKind",
    "FaultPlan",
    "LocalEffect",
    "Message",
    "Network",
    "ProcessInterpreter",
    "ProcessSnapshot",
    "RecvEffect",
    "ReplicatedCheckpointStore",
    "RuntimeCosts",
    "SendEffect",
    "Simulation",
    "SimulationResult",
    "StableStorage",
    "StorageFaultEvent",
    "StoredCheckpoint",
    "exponential_failures",
    "exponential_fault_plan",
]
