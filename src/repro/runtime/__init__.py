"""Discrete-event distributed-system simulator.

This package is the substrate replacing the paper's cluster testbed: it
executes MiniMP programs on ``n`` simulated processes connected by
reliable FIFO channels, with per-statement time accounting, stable
storage for checkpoints, failure injection, and rollback recovery. The
interpreter keeps an explicit control stack (no native coroutines), so
a checkpoint is a genuine restorable snapshot of process state.
"""

from repro.runtime.effects import (
    BcastRecvEffect,
    BcastSendEffect,
    CheckpointEffect,
    ComputeEffect,
    Effect,
    LocalEffect,
    RecvEffect,
    SendEffect,
)
from repro.runtime.engine import RuntimeCosts, Simulation, SimulationResult
from repro.runtime.failures import FailurePlan, exponential_failures
from repro.runtime.interpreter import ProcessInterpreter, ProcessSnapshot
from repro.runtime.network import Message, Network
from repro.runtime.storage import StableStorage
from repro.runtime.trace import ExecutionTrace

__all__ = [
    "BcastRecvEffect",
    "BcastSendEffect",
    "CheckpointEffect",
    "ComputeEffect",
    "Effect",
    "ExecutionTrace",
    "FailurePlan",
    "LocalEffect",
    "Message",
    "Network",
    "ProcessInterpreter",
    "ProcessSnapshot",
    "RecvEffect",
    "RuntimeCosts",
    "SendEffect",
    "Simulation",
    "SimulationResult",
    "StableStorage",
    "exponential_failures",
]
