"""Protocol hook interface.

Checkpointing protocols observe and steer a running simulation through
these hooks. The engine owns time, processes, channels, and storage;
a protocol reacts to hook calls and uses the engine's services
(``send_control``, ``schedule_timer``, ``take_checkpoint``,
``restore_cut``, ``pause``/``resume``) to implement its behaviour.

:class:`NullProtocol` is the do-nothing default — with it, only the
application's own ``checkpoint`` statements create checkpoints, which
is exactly the paper's application-driven setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.effects import Effect
    from repro.runtime.engine import Simulation
    from repro.runtime.network import Message


@dataclass(frozen=True)
class ControlMessage:
    """A protocol control message (separate plane from app channels)."""

    src: int
    dst: int
    tag: str
    data: dict[str, int]
    send_time: float
    arrival_time: float


class ProtocolHooks:
    """Base class: every hook is a no-op. Subclass and override."""

    name = "null"

    def on_start(self, sim: "Simulation") -> None:
        """Called once before the first effect executes."""

    def on_effect(self, sim: "Simulation", rank: int, effect: "Effect") -> None:
        """Called after *rank* executed *effect* (time already charged)."""

    def on_app_message(self, sim: "Simulation", rank: int, message: "Message") -> None:
        """Called when *rank* is about to consume an application message.

        Communication-induced protocols take forced checkpoints here —
        the call happens *before* the receive completes.
        """

    def on_control(self, sim: "Simulation", message: ControlMessage) -> None:
        """Called when a control message arrives at its destination."""

    def on_timer(self, sim: "Simulation", rank: int, tag: str, time: float) -> None:
        """Called when a timer scheduled via ``schedule_timer`` fires at *time*."""

    def piggyback(self, sim: "Simulation", rank: int) -> dict[str, int]:
        """Data to attach to an outgoing application message."""
        return {}

    def on_failure(self, sim: "Simulation", rank: int, time: float) -> None:
        """Called when *rank* crashes; must arrange recovery.

        The default performs no recovery — the process stays crashed
        (and the run will usually deadlock), so protocols that expect
        failures must override this.
        """

    def on_checkpoint(self, sim: "Simulation", rank: int, number: int) -> None:
        """Called after any checkpoint of *rank* completes."""


class NullProtocol(ProtocolHooks):
    """Explicit alias for "no protocol behaviour at all"."""

    name = "none"
