"""ASCII space-time diagrams of executions.

One row per process, time flowing left to right, with event markers:

====== ==============================
``C``  checkpoint (``#`` when it belongs to the highlighted cut)
``s``  send
``r``  receive
``X``  failure
``^``  restart
====== ==============================

Example (the Figure 2 program's unsafe execution)::

    P0 |-C-s--r-----C-s--r------|
    P1 |----r--s-C------r--s-C--|

The optional *cut* argument highlights a checkpoint cut's members with
``#`` so inconsistent straight cuts are visible at a glance. Messages
can be listed separately with :func:`render_messages`.
"""

from __future__ import annotations

from repro.causality.cuts import CheckpointCut
from repro.causality.records import EventKind, TraceEvent

_MARKERS = {
    EventKind.CHECKPOINT: "C",
    EventKind.SEND: "s",
    EventKind.RECV: "r",
    EventKind.FAILURE: "X",
    EventKind.RESTART: "^",
    EventKind.COMPUTE: "c",
}

# When two events land on the same column, the higher-priority marker wins.
_PRIORITY = {
    "X": 6,
    "^": 5,
    "#": 7,
    "C": 4,
    "r": 3,
    "s": 2,
    "c": 1,
}


def render_spacetime(
    trace,
    width: int = 72,
    cut: CheckpointCut | None = None,
    cuts: list[CheckpointCut] | None = None,
) -> str:
    """Render *trace* (an :class:`~repro.runtime.trace.ExecutionTrace`
    or any object with ``events`` and ``n_processes``) as ASCII rows.

    *cut* highlights one cut's members with ``#``; *cuts* highlights
    the members of several cuts at once (e.g. every recovery line
    ``R_i`` of a recorded run).
    """
    events: list[TraceEvent] = list(trace.events)
    n = trace.n_processes
    if not events:
        return "\n".join(f"P{rank} |" for rank in range(n)) + "\n"
    t_max = max(e.time for e in events)
    span = max(t_max, 1e-12)
    columns = max(8, width - 6)
    cut_keys = set()
    highlighted = list(cuts or [])
    if cut is not None:
        highlighted.append(cut)
    for each in highlighted:
        cut_keys |= {(m.process, m.seq) for m in each.members}

    rows = [["-"] * columns for _ in range(n)]
    for event in events:
        marker = _MARKERS.get(event.kind)
        if marker is None:
            continue
        if (event.process, event.seq) in cut_keys:
            marker = "#"
        col = min(columns - 1, int(event.time / span * (columns - 1)))
        current = rows[event.process][col]
        if _PRIORITY.get(marker, 0) >= _PRIORITY.get(current, 0):
            rows[event.process][col] = marker

    label_width = len(f"P{n - 1}")
    lines = [
        f"{f'P{rank}':<{label_width}} |" + "".join(row) + "|"
        for rank, row in enumerate(rows)
    ]
    legend = "legend: C checkpoint, s send, r recv, X failure, ^ restart"
    if cut_keys:
        legend += ", # cut member"
    lines.append(legend)
    lines.append(f"time: 0 .. {t_max:.2f}")
    return "\n".join(lines) + "\n"


def render_spacetime_from_log(source, width: int = 72) -> str:
    """Render a recorded observability event log as a space-time diagram.

    *source* is anything :func:`repro.obs.read_event_log` accepts — a
    path to a JSONL event log (e.g. a ``--trace-out`` capture or a
    flight-recorder dump) or the JSONL text itself. The engine events
    are reconstructed into an :class:`~repro.runtime.trace.ExecutionTrace`
    and every straight-cut recovery line ``R_i``'s members are marked
    ``#`` — the diagram is recoverable from the log alone, no live
    simulation needed.
    """
    from repro.obs import read_event_log, trace_from_events

    trace = trace_from_events(read_event_log(source))
    return render_spacetime(
        trace, width=width, cuts=trace.all_straight_cuts()
    )


def render_messages(trace, limit: int = 20) -> str:
    """Tabulate the first *limit* messages of *trace*: id, route, times."""
    sends = {
        e.message_id: e
        for e in trace.events
        if e.kind is EventKind.SEND and e.message_id is not None
    }
    lines = [f"{'msg':>5s} {'route':>10s} {'sent':>9s} {'recv':>9s} {'delay':>8s}"]
    count = 0
    for event in trace.events:
        if event.kind is not EventKind.RECV or event.message_id is None:
            continue
        send = sends.get(event.message_id)
        if send is None:
            continue
        lines.append(
            f"{event.message_id:>5d} "
            f"{f'P{send.process}->P{event.process}':>10s} "
            f"{send.time:>9.3f} {event.time:>9.3f} "
            f"{event.time - send.time:>8.3f}"
        )
        count += 1
        if count >= limit:
            remaining = trace.message_count() - count
            if remaining > 0:
                lines.append(f"  ... and {remaining} more")
            break
    return "\n".join(lines) + "\n"
