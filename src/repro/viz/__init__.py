"""Trace visualisation.

ASCII renderings of executions — the textual analogue of the paper's
space-time diagrams (Figure 3, the execution halves of Figures 5/6).
"""

from repro.viz.ascii_chart import Series, curves_chart, line_chart
from repro.viz.spacetime import (
    render_messages,
    render_spacetime,
    render_spacetime_from_log,
)

__all__ = [
    "Series",
    "curves_chart",
    "line_chart",
    "render_messages",
    "render_spacetime",
    "render_spacetime_from_log",
]
