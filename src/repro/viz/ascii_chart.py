"""ASCII line charts.

Terminal-friendly plots for the Figure 8/9 curves (the repo has no
plotting dependency). Each series gets a marker character; collisions
show the later series' marker. The y-axis is linear or log-10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalysisError

_MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class Series:
    """One named line of (x, y) points."""

    name: str
    points: tuple[tuple[float, float], ...]


def line_chart(
    series: list[Series],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    y_label: str = "",
) -> str:
    """Render *series* as an ASCII chart with a legend.

    All series share the x/y ranges. With ``log_y``, y values must be
    positive. Raises :class:`~repro.errors.AnalysisError` on empty
    input.
    """
    if not series or not any(s.points for s in series):
        raise AnalysisError("line_chart needs at least one non-empty series")
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    if log_y:
        if min(ys) <= 0:
            raise AnalysisError("log_y requires positive y values")
        transform = math.log10
    else:
        def transform(value: float) -> float:
            return value
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(map(transform, ys)), max(map(transform, ys))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, one in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in one.points:
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((transform(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    top = f"{y_hi:.3g}" if not log_y else f"1e{y_hi:.2f}"
    bottom = f"{y_lo:.3g}" if not log_y else f"1e{y_lo:.2f}"
    label_width = max(len(top), len(bottom), len(y_label)) + 1
    lines = []
    if y_label:
        lines.append(f"{y_label:>{label_width}}")
    for row_index, row in enumerate(grid):
        prefix = (
            top if row_index == 0
            else bottom if row_index == height - 1
            else ""
        )
        lines.append(f"{prefix:>{label_width}} |" + "".join(row))
    lines.append(
        " " * label_width + " +" + "-" * width
    )
    lines.append(
        " " * label_width + f"  {x_lo:<.4g}" + " " * max(1, width - 16)
        + f"{x_hi:>.4g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines) + "\n"


def curves_chart(curves, log_y: bool = False, **kwargs) -> str:
    """Chart a ``{ProtocolKind: ProtocolCurve}`` mapping directly."""
    series = [
        Series(
            name=kind.value,
            points=tuple(zip(curve.x_values, curve.ratios)),
        )
        for kind, curve in curves.items()
    ]
    return line_chart(series, log_y=log_y, **kwargs)
