"""Campaign-scale metric rollups: mergeable, deterministic aggregation.

A single run's :class:`~repro.obs.metrics.MetricsRegistry` serialises
to ``{name: {"type": ..., "value"/moments...}}``. A *campaign* runs
hundreds of such cells across worker processes; this module merges
their registries into one aggregate with a **deterministic merge
order** (submission order of the cell keys), so the aggregate — and
the whole deterministic section of ``campaign_metrics.json`` — is
byte-identical for any ``--jobs`` value:

- counters add;
- histograms merge their streaming moments (count/sum/min/max; the
  merge is associative and commutative, so any grouping of cells
  yields the same aggregate — a property the test suite checks);
- gauges are point-in-time readings with no meaningful sum; the
  aggregate keeps ``last`` (in merge order) plus ``min``/``max``
  across cells.

The file layout written by ``repro campaign --metrics-out`` (and the
chaos sweep's ``--metrics-out``)::

    {"rollup_schema_version": 1,
     "aggregate":  {...merged metrics...},          # deterministic
     "per_cell":   {key: {"tags": {...}, "metrics": {...}}},  # deterministic
     "diagnostics": {"jobs", "timings", "workers", "executor"}}  # NOT

Per-cell entries are tagged with the cell key and (for ``name/proto``
labels) the protocol; the worker that ran each cell is wall-clock
territory and lives in ``diagnostics.workers``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.metrics import MetricsCollector, MetricsRegistry

#: Bumped when the campaign_metrics.json layout changes.
ROLLUP_SCHEMA_VERSION = 1


def merge_metric(into: dict | None, metric: dict[str, Any]) -> dict:
    """Merge one metric's JSON form into an accumulator (returned).

    *into* is ``None`` on first sight of the name, else the
    accumulator built so far. Counters/histograms merge by their
    algebra; gauges keep last/min/max. Mixed types for one name raise
    ``ValueError`` — a rollup must not silently add a counter to a
    histogram.
    """
    kind = metric.get("type")
    if into is not None and into.get("type") != kind:
        raise ValueError(
            f"cannot merge metric type {kind!r} into {into.get('type')!r}"
        )
    if kind == "counter":
        if into is None:
            return {"type": "counter", "value": metric["value"]}
        into["value"] += metric["value"]
        return into
    if kind == "gauge":
        value = metric["value"]
        if into is None:
            return {
                "type": "gauge", "value": value, "min": value, "max": value,
            }
        into["value"] = value
        into["min"] = min(into["min"], value)
        into["max"] = max(into["max"], value)
        return into
    if kind == "histogram":
        if into is None:
            merged = {
                "type": "histogram",
                "count": metric["count"],
                "sum": metric["sum"],
                "min": metric["min"],
                "max": metric["max"],
            }
        else:
            merged = into
            merged["count"] += metric["count"]
            merged["sum"] += metric["sum"]
            for key, pick in (("min", min), ("max", max)):
                ours, theirs = merged[key], metric[key]
                if ours is None:
                    merged[key] = theirs
                elif theirs is not None:
                    merged[key] = pick(ours, theirs)
        merged["mean"] = (
            merged["sum"] / merged["count"] if merged["count"] else 0.0
        )
        return merged
    raise ValueError(f"unknown metric type {kind!r}")


def merge_registries(
    registries: Iterable[dict[str, dict]],
) -> dict[str, dict]:
    """Merge metric dicts (``MetricsRegistry.as_dict`` forms) in order.

    The iteration order of *registries* is the merge order; callers
    pass cells in submission order to get the deterministic aggregate.
    Output keys are sorted.
    """
    merged: dict[str, dict] = {}
    for registry in registries:
        for name, metric in registry.items():
            merged[name] = merge_metric(merged.get(name), metric)
    return {name: merged[name] for name in sorted(merged)}


def cell_metrics(outcome) -> dict[str, dict]:
    """Deterministic metrics of one campaign cell outcome.

    Folds the cell's :class:`~repro.runtime.engine.SimulationStats`
    into ``stats.*`` counters and, when the cell recorded an
    observability event log, replays it through a
    :class:`~repro.obs.metrics.MetricsCollector` for the full derived
    set (checkpoint latency, retransmit rate, rollback depth, ...).
    Everything here is a pure function of the cell's deterministic
    artifact, which is what makes the rollup jobs-invariant.
    """
    registry = MetricsRegistry()
    stats = outcome.stats or {}
    for name in sorted(stats):
        value = stats[name]
        if isinstance(value, bool):
            registry.counter(f"stats.{name}").inc(int(value))
        elif isinstance(value, int):
            registry.counter(f"stats.{name}").inc(value)
        elif isinstance(value, float):
            registry.gauge(f"stats.{name}").set(value)
    if getattr(outcome, "error", None) is not None:
        registry.counter("cells_errored").inc()
    if outcome.events_jsonl:
        from repro.obs.export import read_event_log

        collector = MetricsCollector(registry)
        for event in read_event_log(outcome.events_jsonl):
            collector.on_event(event)
    return registry.as_dict()


def _cell_tags(key: str) -> dict[str, str]:
    """Tags of one cell: its key plus the protocol suffix, if labelled
    ``workload/protocol`` (the campaign and chaos naming convention)."""
    tags = {"cell": key}
    if "/" in key:
        tags["protocol"] = key.rsplit("/", 1)[1]
    return tags


def campaign_rollup(result) -> dict[str, Any]:
    """Roll one :class:`~repro.campaign.executor.CampaignResult` up.

    ``aggregate`` and ``per_cell`` are pure functions of the
    deterministic campaign artifact (cells merged in submission
    order); ``diagnostics`` carries the wall-clock side channel
    (timings, jobs, worker pids, executor resilience counters) and is
    the only section allowed to differ between runs.
    """
    per_cell: dict[str, Any] = {}
    for key, outcome in result.cells.items():
        per_cell[str(key)] = {
            "tags": _cell_tags(str(key)),
            "metrics": cell_metrics(outcome),
        }
    aggregate = merge_registries(
        entry["metrics"] for entry in per_cell.values()
    )
    return {
        "rollup_schema_version": ROLLUP_SCHEMA_VERSION,
        "aggregate": aggregate,
        "per_cell": per_cell,
        "diagnostics": {
            "jobs": result.jobs,
            "timings": dict(result.timings),
            "workers": dict(getattr(result, "workers", {}) or {}),
            "executor": (
                None if result.executor is None
                else result.executor.as_dict()
            ),
        },
    }


def chaos_rollup(
    outcomes: dict, timings: dict | None = None, jobs: int = 1,
    executor=None,
) -> dict[str, Any]:
    """Roll a chaos sweep's ``{(protocol, seed): ChaosOutcome}`` up.

    Verdict fields become counters (``chaos.cells`` / ``.failures`` /
    ``.unrecoverable`` / ``.faults`` / ``.crashes``), merged in cell
    submission order, so the aggregate is jobs-invariant exactly like
    the campaign rollup's.
    """
    per_cell: dict[str, Any] = {}
    for (protocol, seed), outcome in outcomes.items():
        key = f"{protocol}/seed{seed}"
        registry = MetricsRegistry()
        registry.counter("chaos.cells").inc()
        registry.counter("chaos.failures").inc(0 if outcome.ok else 1)
        registry.counter("chaos.unrecoverable").inc(
            1 if outcome.unrecoverable else 0
        )
        registry.counter("chaos.faults").inc(outcome.faults)
        registry.counter("chaos.crashes").inc(outcome.crashes)
        per_cell[key] = {
            "tags": {"cell": key, "protocol": protocol},
            "metrics": registry.as_dict(),
        }
    aggregate = merge_registries(
        entry["metrics"] for entry in per_cell.values()
    )
    return {
        "rollup_schema_version": ROLLUP_SCHEMA_VERSION,
        "aggregate": aggregate,
        "per_cell": per_cell,
        "diagnostics": {
            "jobs": jobs,
            "timings": dict(timings or {}),
            "workers": {},
            "executor": None if executor is None else executor.as_dict(),
        },
    }


def rollup_to_json(rollup: dict[str, Any], indent: int | None = 2) -> str:
    """Serialise a rollup (sorted keys, newline-terminated)."""
    return json.dumps(rollup, indent=indent, sort_keys=True) + "\n"


def aggregate_section_bytes(rollup: dict[str, Any]) -> str:
    """The aggregate section alone, canonically serialised.

    This is the byte string the CI smoke diffs across ``--jobs``
    values — compact, sorted, a pure function of the deterministic
    campaign artifact.
    """
    return json.dumps(
        rollup["aggregate"], sort_keys=True, separators=(",", ":")
    ) + "\n"
