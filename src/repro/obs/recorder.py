"""The flight recorder: a bounded tail of the event stream.

Long chaos sweeps emit far more events than anyone wants to archive;
what diagnosis needs is the *recent causal history* leading up to a
failure. The recorder keeps the last ``capacity`` events in a ring
buffer and dumps them as JSONL on demand — the chaos harness writes
this dump next to every ddmin-shrunk counterexample, so a failing
schedule always ships with the event log that explains it.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path

from repro.obs.events import ObsEvent


class FlightRecorder:
    """Ring buffer of the most recent events on a bus."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[ObsEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def attach(self, bus) -> None:
        """Subscribe this recorder to *bus*."""
        bus.subscribe(self.record)

    def record(self, event: ObsEvent) -> None:
        """Append *event*, evicting the oldest at capacity."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def events(self) -> list[ObsEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def dump(self, path: str | Path) -> Path:
        """Write the retained events to *path* as JSONL; returns it."""
        from repro.obs.export import events_to_jsonl

        path = Path(path)
        path.write_text(events_to_jsonl(self.events()))
        return path
