"""A general metrics-diff engine: compare two metric JSON documents.

``repro metrics diff`` (and, through it, ``tools/perf_smoke.py``)
compares any two of the repository's metric artifacts:

- a :class:`~repro.obs.metrics.MetricsRegistry` dump
  (``--metrics-out`` of ``repro simulate``),
- a campaign/chaos rollup (``campaign_metrics.json``; the aggregate
  section is what gets diffed),
- a ``results/BENCH_*.json`` performance report.

Each document is first *flattened* to ``{dotted.name: float}``
(:func:`flatten_metrics` sniffs the schema), then :func:`diff_metrics`
walks the union of names and applies a ratio threshold per metric:
``min_ratio`` guards higher-is-better values (a BENCH speedup may not
fall below ``min_ratio`` × baseline), ``max_ratio`` guards
lower-is-better ones (a retransmit count may not grow past
``max_ratio`` × baseline). Thresholds attach by ``fnmatch`` pattern —
first matching rule wins — so callers can say "``*.speedup`` must keep
half its ratio, everything else is informational". The report names the
**worst regression** explicitly: the failing metric with the most
extreme ratio, with its before/after values, so a red CI line reads as
a diagnosis rather than a boolean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Iterable


@dataclass(frozen=True)
class Threshold:
    """Per-metric bounds on ``after / before``.

    ``min_ratio`` fails the diff when the ratio drops below it
    (higher-is-better metrics); ``max_ratio`` fails when the ratio
    exceeds it (lower-is-better metrics). Both ``None`` means the
    metric is reported but never fails.
    """

    min_ratio: float | None = None
    max_ratio: float | None = None


@dataclass(frozen=True)
class MetricDelta:
    """One metric's comparison outcome.

    ``ratio`` is ``after / before`` (``inf`` when a zero baseline
    grew, ``1.0`` when both sides are zero); ``ok`` is ``False`` only
    when a threshold tripped, with ``reason`` saying which bound and
    by how much. Metrics present on one side only are reported with
    ``status`` ``"added"``/``"removed"`` and never fail.
    """

    name: str
    before: float | None
    after: float | None
    ratio: float | None
    ok: bool
    status: str = "compared"
    reason: str = ""


@dataclass(frozen=True)
class DiffReport:
    """All deltas plus the headline verdict."""

    deltas: tuple[MetricDelta, ...]

    @property
    def failures(self) -> tuple[MetricDelta, ...]:
        """Deltas that tripped a threshold."""
        return tuple(d for d in self.deltas if not d.ok)

    @property
    def ok(self) -> bool:
        """True when no threshold tripped."""
        return not self.failures

    @property
    def worst(self) -> MetricDelta | None:
        """The failing delta with the most extreme ratio, if any.

        "Most extreme" means farthest from 1.0 on a log scale, so a
        metric that halved and one that doubled are equally bad.
        """
        worst: MetricDelta | None = None
        worst_badness = -1.0
        for delta in self.failures:
            ratio = delta.ratio if delta.ratio else float("inf")
            badness = (
                float("inf")
                if ratio in (0.0, float("inf"))
                else abs(ratio - 1.0) / min(ratio, 1.0)
            )
            if badness > worst_badness:
                worst, worst_badness = delta, badness
        return worst


def _flatten_metric(name: str, metric: dict, out: dict[str, float]) -> None:
    """Flatten one registry-style metric into scalar components."""
    kind = metric.get("type")
    if kind in ("counter", "gauge"):
        out[name] = float(metric["value"])
        return
    if kind == "histogram":
        for component in ("count", "sum", "mean", "min", "max"):
            value = metric.get(component)
            if value is not None:
                out[f"{name}.{component}"] = float(value)
        return
    raise ValueError(f"unknown metric type {kind!r} for {name!r}")


def flatten_metrics(doc: dict[str, Any]) -> dict[str, float]:
    """Flatten a metrics document of any supported schema to scalars.

    Recognises, in order: BENCH reports (``cases`` list → per-case
    ``case.<name>.speedup`` / ``.ops_per_sec`` / ``.identical`` plus
    ``min_speedup``), rollups (``aggregate`` section), and raw
    registry dumps (name → typed metric). A flat ``{name: number}``
    mapping passes through unchanged.
    """
    if "cases" in doc and isinstance(doc["cases"], list):
        flat: dict[str, float] = {}
        if "min_speedup" in doc:
            flat["min_speedup"] = float(doc["min_speedup"])
        for case in doc["cases"]:
            prefix = f"case.{case['name']}"
            flat[f"{prefix}.speedup"] = float(case["speedup"])
            flat[f"{prefix}.identical"] = float(bool(case.get(
                "identical", True
            )))
            if case.get("ops_per_sec") is not None:
                flat[f"{prefix}.ops_per_sec"] = float(case["ops_per_sec"])
        return flat
    if "aggregate" in doc and isinstance(doc["aggregate"], dict):
        doc = doc["aggregate"]
    flat = {}
    for name in sorted(doc):
        value = doc[name]
        if isinstance(value, dict) and "type" in value:
            _flatten_metric(name, value, flat)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = float(value)
        elif isinstance(value, bool):
            flat[name] = float(value)
        # Non-numeric entries (schema tags, labels) are not metrics.
    return flat


def load_metrics(path: str | Path) -> dict[str, float]:
    """Read and flatten a metrics JSON file."""
    return flatten_metrics(json.loads(Path(path).read_text()))


def resolve_threshold(
    name: str,
    rules: Iterable[tuple[str, Threshold]],
    default: Threshold,
) -> Threshold:
    """First ``fnmatch``-matching rule for *name*, else *default*."""
    for pattern, threshold in rules:
        if fnmatch(name, pattern):
            return threshold
    return default


def diff_metrics(
    before: dict[str, float],
    after: dict[str, float],
    rules: Iterable[tuple[str, Threshold]] = (),
    default: Threshold = Threshold(),
) -> DiffReport:
    """Compare two flattened metric mappings name by name."""
    rules = tuple(rules)
    deltas: list[MetricDelta] = []
    for name in sorted(set(before) | set(after)):
        if name not in after:
            deltas.append(MetricDelta(
                name=name, before=before[name], after=None, ratio=None,
                ok=True, status="removed",
            ))
            continue
        if name not in before:
            deltas.append(MetricDelta(
                name=name, before=None, after=after[name], ratio=None,
                ok=True, status="added",
            ))
            continue
        b, a = before[name], after[name]
        if b == 0.0:
            ratio = 1.0 if a == 0.0 else float("inf")
        else:
            ratio = a / b
        threshold = resolve_threshold(name, rules, default)
        ok, reason = True, ""
        if threshold.min_ratio is not None and ratio < threshold.min_ratio:
            ok = False
            reason = (
                f"ratio {ratio:.3f} below floor {threshold.min_ratio:.3f}"
            )
        elif threshold.max_ratio is not None and ratio > threshold.max_ratio:
            ok = False
            reason = (
                f"ratio {ratio:.3f} above ceiling {threshold.max_ratio:.3f}"
            )
        deltas.append(MetricDelta(
            name=name, before=b, after=a, ratio=ratio, ok=ok, reason=reason,
        ))
    return DiffReport(deltas=tuple(deltas))


def parse_threshold_rule(spec: str) -> tuple[str, Threshold]:
    """Parse a CLI rule ``PATTERN:min=X`` / ``PATTERN:max=Y`` (or both,
    comma-separated): ``'*.speedup:min=0.5'``."""
    pattern, sep, bounds = spec.partition(":")
    if not sep or not pattern:
        raise ValueError(
            f"threshold rule {spec!r} must look like 'PATTERN:min=0.5' "
            "or 'PATTERN:max=2.0'"
        )
    min_ratio = max_ratio = None
    for bound in bounds.split(","):
        key, sep, value = bound.partition("=")
        if not sep:
            raise ValueError(f"bad bound {bound!r} in rule {spec!r}")
        if key == "min":
            min_ratio = float(value)
        elif key == "max":
            max_ratio = float(value)
        else:
            raise ValueError(f"unknown bound {key!r} in rule {spec!r}")
    return pattern, Threshold(min_ratio=min_ratio, max_ratio=max_ratio)


def format_diff(report: DiffReport, verbose: bool = False) -> str:
    """Human-readable diff report.

    Failures always print with before/after and the tripped bound; the
    worst regression gets a dedicated headline line. With *verbose*,
    passing and added/removed metrics print too.
    """
    lines: list[str] = []
    for delta in report.deltas:
        if delta.status == "removed":
            if verbose:
                lines.append(f"  - {delta.name} removed "
                             f"(was {delta.before:g})")
            continue
        if delta.status == "added":
            if verbose:
                lines.append(f"  + {delta.name} added "
                             f"(now {delta.after:g})")
            continue
        if not delta.ok:
            lines.append(
                f"FAIL {delta.name}: {delta.before:g} -> {delta.after:g} "
                f"({delta.reason})"
            )
        elif verbose:
            lines.append(
                f"  ok {delta.name}: {delta.before:g} -> {delta.after:g} "
                f"(ratio {delta.ratio:.3f})"
            )
    worst = report.worst
    if worst is not None:
        lines.append(
            f"worst regression: {worst.name} "
            f"({worst.before:g} -> {worst.after:g}, "
            f"ratio {worst.ratio:.3f})"
        )
    compared = sum(1 for d in report.deltas if d.status == "compared")
    lines.append(
        f"{'FAIL' if not report.ok else 'OK'}: "
        f"{len(report.failures)} of {compared} compared metrics regressed"
    )
    return "\n".join(lines) + "\n"
