"""The event bus every runtime layer publishes to.

A deliberately tiny synchronous pub/sub hub. Publishers call
:meth:`EventBus.emit`; subscribers are plain callables invoked in
subscription order. The engine binds its live vector-clock array once
(:meth:`EventBus.bind_clocks`), after which every ranked event is
automatically stamped with the publisher's current vector clock —
transport and storage stay ignorant of causality metadata entirely.

Zero-cost-when-disabled is achieved one level up: layers hold
``observer: EventBus | None`` and guard each emission with a single
``is None`` test, so a disabled run executes no observability code at
all beyond that test.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.events import ObsEvent


class EventBus:
    """Synchronous dispatch of :class:`~repro.obs.events.ObsEvent`."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[ObsEvent], None]] = []
        self._clocks: list | None = None
        self._seq = 0

    def subscribe(self, handler: Callable[[ObsEvent], None]) -> None:
        """Register *handler* to receive every subsequent event."""
        self._subscribers.append(handler)

    def bind_clocks(self, clocks: list) -> None:
        """Bind the engine's live per-rank vector-clock array.

        The list is shared, not copied — the engine mutates it in
        place, so reading ``clocks[rank]`` at emission time yields the
        publisher's *current* clock.
        """
        self._clocks = clocks

    @property
    def events_emitted(self) -> int:
        """Total events emitted on this bus so far."""
        return self._seq

    def emit(
        self,
        category: str,
        name: str,
        rank: int | None,
        time: float,
        clock: tuple[int, ...] | None = None,
        **fields: Any,
    ) -> ObsEvent:
        """Publish one event to every subscriber and return it.

        When *clock* is omitted but *rank* is given and the engine has
        bound its clock array, the event is stamped with that rank's
        current vector clock.
        """
        if clock is None and rank is not None and self._clocks is not None:
            if 0 <= rank < len(self._clocks):
                clock = self._clocks[rank].components
        event = ObsEvent(
            seq=self._seq,
            category=category,
            name=name,
            rank=rank,
            time=time,
            clock=clock,
            fields=fields,
        )
        self._seq += 1
        for handler in self._subscribers:
            handler(event)
        return event

    def emit_trace_event(self, trace_event) -> ObsEvent:
        """Publish an engine :class:`~repro.causality.records.TraceEvent`.

        Called by :class:`~repro.runtime.trace.ExecutionTrace` on every
        append, so the engine's entire event stream (sends, receives,
        checkpoints, failures, restarts) reaches the bus with exactly
        the payload the causality analyses see — including the local
        sequence number needed to rebuild the trace from the log.
        """
        fields: dict[str, Any] = {"lseq": trace_event.seq}
        if trace_event.message_id is not None:
            fields["message_id"] = trace_event.message_id
        if trace_event.peer is not None:
            fields["peer"] = trace_event.peer
        if trace_event.checkpoint_number is not None:
            fields["checkpoint_number"] = trace_event.checkpoint_number
        if trace_event.stmt_id is not None:
            fields["stmt_id"] = trace_event.stmt_id
        return self.emit(
            "engine",
            trace_event.kind.value,
            trace_event.process,
            trace_event.time,
            clock=trace_event.clock.components,
            **fields,
        )
