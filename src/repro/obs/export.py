"""Event-log exporters: JSONL, Chrome trace-event format, summaries.

The JSONL log is the archival format — a schema-version header line
followed by one event per line, sorted keys, byte-identical across
replays of the same seed and fault plan. From it this module can
reconstruct a full :class:`~repro.runtime.trace.ExecutionTrace` (the
engine events carry vector clocks and local sequence numbers, so every
offline causality analysis and the space-time renderer work on recorded
logs exactly as on live traces), convert to the Chrome
``chrome://tracing`` / Perfetto trace-event JSON format, or print a
human summary.

Schema versioning: the header line is
``{"log_schema_version": N, "format": "repro-obs-jsonl"}``. Version 1
logs (pre-header, events only) are still read; a header announcing an
*unknown* version is rejected with a structured
:class:`SchemaVersionError` before any event is parsed, so consumers
(``trace_from_events`` and everything downstream of
:func:`read_event_log`) never misinterpret records from a future
schema. Version 2 added ``span``-category events.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.causality.records import EventKind, TraceEvent
from repro.causality.vector_clock import VectorClock
from repro.errors import SimulationError
from repro.obs.events import ObsEvent
from repro.runtime.trace import ExecutionTrace

#: Simulated seconds → Chrome trace microseconds.
_CHROME_US = 1_000_000.0

_ENGINE_KINDS = frozenset(kind.value for kind in EventKind)

#: The JSONL schema version this build writes.
EVENT_LOG_SCHEMA_VERSION = 2

#: Versions :func:`read_event_log` accepts (1 = legacy headerless logs).
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2})


class SchemaVersionError(SimulationError):
    """An event log announced a schema this build cannot interpret.

    Attributes:
        found: The version the header declared.
        supported: The versions this build reads.
    """

    def __init__(self, found: int) -> None:
        self.found = found
        self.supported = tuple(sorted(SUPPORTED_SCHEMA_VERSIONS))
        super().__init__(
            f"event log declares schema version {found}; this build "
            f"supports {list(self.supported)} — refusing to guess at "
            "unknown record types"
        )


def event_log_header() -> str:
    """The JSONL header line (compact, sorted keys, no newline)."""
    return json.dumps(
        {
            "format": "repro-obs-jsonl",
            "log_schema_version": EVENT_LOG_SCHEMA_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def events_to_jsonl(events: Iterable[ObsEvent]) -> str:
    """Serialise *events* as JSONL: header line + one event per line.

    Keys are sorted and separators fixed, so the bytes are a pure
    function of the event stream — the determinism contract the test
    suite checks byte-for-byte.
    """
    lines = [event_log_header()]
    lines += [
        json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + "\n"


def write_event_log(path: str | Path, events: Iterable[ObsEvent]) -> Path:
    """Write *events* to *path* as JSONL; returns the path."""
    path = Path(path)
    path.write_text(events_to_jsonl(events))
    return path


def read_event_log(source: str | Path) -> list[ObsEvent]:
    """Parse a JSONL event log from a path or a JSONL string.

    The first non-blank line may be a schema-version header (see the
    module doc); a header declaring an unsupported version raises
    :class:`SchemaVersionError`. Headerless logs are read as legacy
    version 1.
    """
    if isinstance(source, Path):
        text = source.read_text()
    elif "\n" in source or source.lstrip().startswith("{"):
        text = source
    else:
        text = Path(source).read_text()
    events = []
    header_seen = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
            if (
                not header_seen
                and not events
                and isinstance(data, dict)
                and "log_schema_version" in data
            ):
                header_seen = True
                version = int(data["log_schema_version"])
                if version not in SUPPORTED_SCHEMA_VERSIONS:
                    raise SchemaVersionError(version)
                continue
            events.append(ObsEvent.from_dict(data))
        except SchemaVersionError:
            raise
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise SimulationError(
                f"malformed event log line {lineno}: {exc}"
            ) from exc
    return events


def trace_from_events(events: Iterable[ObsEvent]) -> ExecutionTrace:
    """Rebuild an :class:`ExecutionTrace` from a recorded event log.

    Only ``engine``-category events participate (they are exactly the
    events the live trace recorded, with vector clocks and local
    sequence numbers preserved), so recovery lines, rollback graphs,
    and space-time diagrams can all be computed from a log file alone.
    """
    trace_events: list[TraceEvent] = []
    n_processes = 0
    for event in events:
        if event.category != "engine" or event.name not in _ENGINE_KINDS:
            continue
        if event.rank is None or event.clock is None:
            raise SimulationError(
                f"engine event {event.seq} lacks rank/clock stamping"
            )
        n_processes = max(n_processes, event.rank + 1, len(event.clock))
        trace_events.append(TraceEvent(
            kind=EventKind(event.name),
            process=event.rank,
            seq=int(event.fields.get("lseq", 0)),
            time=event.time,
            clock=VectorClock(tuple(event.clock)),
            message_id=event.fields.get("message_id"),
            peer=event.fields.get("peer"),
            checkpoint_number=event.fields.get("checkpoint_number"),
            stmt_id=event.fields.get("stmt_id"),
        ))
    trace = ExecutionTrace(n_processes=max(n_processes, 1))
    for trace_event in trace_events:
        trace.events.append(trace_event)
        trace._seq[trace_event.process] = max(
            trace._seq.get(trace_event.process, 0), trace_event.seq + 1
        )
    return trace


def chrome_trace(events: Iterable[ObsEvent]) -> dict[str, Any]:
    """Convert an event log to Chrome trace-event format.

    Every event becomes an instant event (``ph: "i"``) on the thread
    of its rank (rank-less events land on a synthetic "system" thread),
    timestamped in microseconds of simulated time, with the vector
    clock and payload fields attached as ``args``. ``span``-category
    events instead become complete events (``ph: "X"``) whose duration
    is the span's simulated-clock ``dur`` field, so nested spans
    (recovery attempts, pipeline phases) render as stacked bars.
    Thread-name metadata events label each rank ``P0 .. Pn-1``. The
    result loads directly into ``chrome://tracing`` or
    https://ui.perfetto.dev.
    """
    trace_events: list[dict[str, Any]] = []
    ranks: set[int] = set()
    for event in events:
        tid = event.rank if event.rank is not None else -1
        if event.rank is not None:
            ranks.add(event.rank)
        args: dict[str, Any] = dict(event.fields)
        if event.clock is not None:
            args["vector_clock"] = list(event.clock)
        if event.category == "span":
            args.pop("dur", None)
            trace_events.append({
                "name": event.name,
                "cat": event.category,
                "ph": "X",
                "ts": event.time * _CHROME_US,
                "dur": float(event.fields.get("dur", 0.0)) * _CHROME_US,
                "pid": 0,
                "tid": tid,
                "args": args,
            })
            continue
        trace_events.append({
            "name": event.name,
            "cat": event.category,
            "ph": "i",
            "s": "t",
            "ts": event.time * _CHROME_US,
            "pid": 0,
            "tid": tid,
            "args": args,
        })
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": rank,
            "args": {"name": f"P{rank}"},
        }
        for rank in sorted(ranks)
    ]
    if any(event["tid"] == -1 for event in trace_events):
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": -1,
            "args": {"name": "system"},
        })
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }


def chrome_trace_json(
    events: Iterable[ObsEvent], indent: int | None = None
) -> str:
    """Chrome trace-event JSON text for *events*."""
    return json.dumps(chrome_trace(events), indent=indent, sort_keys=True)


def summarize_events(events: list[ObsEvent]) -> str:
    """Human-readable digest of an event log.

    Reports the span, per-category/name counts, per-rank event totals,
    and whether every ranked event carries a vector clock (the
    causal-completeness property downstream analyses rely on).
    """
    if not events:
        return "empty event log\n"
    counts: dict[str, int] = {}
    per_rank: dict[int, int] = {}
    unstamped = 0
    for event in events:
        key = f"{event.category}.{event.name}"
        counts[key] = counts.get(key, 0) + 1
        if event.rank is not None:
            per_rank[event.rank] = per_rank.get(event.rank, 0) + 1
            if event.clock is None:
                unstamped += 1
    lines = [
        f"events      : {len(events)}",
        f"time span   : {events[0].time:.3f} .. "
        f"{max(e.time for e in events):.3f}",
        f"ranks       : {sorted(per_rank)}",
        "vector clock: " + (
            "every ranked event stamped"
            if unstamped == 0
            else f"{unstamped} ranked event(s) UNSTAMPED"
        ),
    ]
    lines.append("counts:")
    for key in sorted(counts):
        lines.append(f"  {key:<28s} {counts[key]}")
    return "\n".join(lines) + "\n"
