"""The structured event record and its taxonomy.

One :class:`ObsEvent` is one observable fact about a run, stamped with
the layer that produced it (``category``), a short event ``name``, the
publishing process (``rank``, where one exists), the **simulated** time
(never wall-clock — determinism depends on it), and the publisher's
vector clock at emission. Payload details ride in ``fields``, a flat
JSON-safe mapping.

Event taxonomy (category → names):

========== =========================================================
engine     ``send``, ``recv``, ``checkpoint``, ``failure``,
           ``restart``, ``compute``, ``rollback``, ``single-restart``
transport  ``frame``, ``ack``, ``ack-lost``, ``drop``, ``corrupt``,
           ``delay``, ``duplicate``
storage    ``commit``, ``write-fail``, ``torn-write``, ``bit-rot``,
           ``corrupt-detected``
protocol   ``control-send``, ``control-recv``, ``timer``,
           ``recovery``, ``degraded-fallback``, ``domino-search``,
           ``replay-restart``
span       closed :class:`~repro.obs.spans.Span` records — the span
           name is the event name (``recovery.attempt``,
           ``phase3.placement``, ...); ``fields`` carry ``span_id``,
           ``parent``, and the simulated-clock ``dur``
========== =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: The event categories, one per publishing runtime layer (plus the
#: cross-layer ``span`` records emitted by closed spans).
CATEGORIES = ("engine", "transport", "storage", "protocol", "span")


@dataclass(frozen=True)
class ObsEvent:
    """One structured observability event.

    Attributes:
        seq: Global emission order on the bus (0-based); ties on equal
            simulated times are broken by it, so replays order
            identically.
        category: Publishing layer (one of :data:`CATEGORIES`).
        name: Short event name within the category.
        rank: Publishing process, or ``None`` for system-wide events
            (e.g. a whole-cut rollback).
        time: Simulated time of the event. Never wall-clock.
        clock: The publisher's vector-clock components at emission, or
            ``None`` when no process context exists. Happened-before
            between any two stamped events is decidable from these
            alone.
        fields: Flat JSON-safe payload (ints, floats, strings, or
            small lists/dicts thereof).
    """

    seq: int
    category: str
    name: str
    rank: int | None
    time: float
    clock: tuple[int, ...] | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dictionary form (stable key set, compact)."""
        payload: dict[str, Any] = {
            "seq": self.seq,
            "cat": self.category,
            "name": self.name,
            "rank": self.rank,
            "t": self.time,
            "clock": list(self.clock) if self.clock is not None else None,
        }
        if self.fields:
            payload["fields"] = self.fields
        return payload

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ObsEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        clock = data.get("clock")
        return cls(
            seq=int(data["seq"]),
            category=str(data["cat"]),
            name=str(data["name"]),
            rank=data.get("rank"),
            time=float(data["t"]),
            clock=tuple(int(c) for c in clock) if clock is not None else None,
            fields=dict(data.get("fields", {})),
        )
