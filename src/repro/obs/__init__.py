"""Observability: causal tracing and metrics for the whole runtime.

Every runtime layer — the engine's effects/checkpoints/rollbacks, the
reliable transport's frames and ACKs, the checkpoint store's commits
and faults, and the protocols' control traffic — publishes structured
events onto one :class:`~repro.obs.bus.EventBus`. Each event is stamped
with simulated time, rank, and the publishing process's **vector
clock**, so happened-before is recoverable from the event log alone:
the log is a causal trace, not just a message log.

On top of the bus sit:

- a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  histograms (checkpoint latency, recovery-line lag, retransmit rate,
  rollback depth), fed by a :class:`~repro.obs.metrics.MetricsCollector`;
- a bounded :class:`~repro.obs.recorder.FlightRecorder` the chaos
  harness dumps automatically next to ddmin counterexamples;
- exporters to JSONL and Chrome ``chrome://tracing`` trace-event format
  (:mod:`repro.obs.export`).

The subsystem is zero-cost when disabled (``observer=None`` leaves
every hot path a single ``is None`` test away from the status quo) and
fully deterministic: events carry simulated time only, so byte-identical
replays produce byte-identical JSONL logs.
"""

from repro.obs.bus import EventBus
from repro.obs.events import CATEGORIES, ObsEvent
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    events_to_jsonl,
    read_event_log,
    summarize_events,
    trace_from_events,
    write_event_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder


class Observability:
    """Convenience bundle: bus + event log + flight recorder + metrics.

    Wires the standard subscribers onto a fresh bus. Pass ``.bus`` as
    the ``observer`` argument of
    :class:`~repro.runtime.engine.Simulation`; afterwards ``.events``
    holds the full event log, ``.recorder`` the bounded tail, and
    ``.metrics`` the aggregated registry.
    """

    def __init__(
        self, capacity: int = 4096, keep_events: bool = True
    ) -> None:
        self.bus = EventBus()
        self.events: list[ObsEvent] = []
        if keep_events:
            self.bus.subscribe(self.events.append)
        self.recorder = FlightRecorder(capacity=capacity)
        self.recorder.attach(self.bus)
        self.metrics = MetricsRegistry()
        self.collector = MetricsCollector(self.metrics)
        self.collector.attach(self.bus)

    def jsonl(self) -> str:
        """The full event log serialised as JSONL."""
        return events_to_jsonl(self.events)


__all__ = [
    "CATEGORIES",
    "Counter",
    "EventBus",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "ObsEvent",
    "Observability",
    "chrome_trace",
    "chrome_trace_json",
    "events_to_jsonl",
    "read_event_log",
    "summarize_events",
    "trace_from_events",
    "write_event_log",
]
