"""Observability: causal tracing and metrics for the whole runtime.

Every runtime layer — the engine's effects/checkpoints/rollbacks, the
reliable transport's frames and ACKs, the checkpoint store's commits
and faults, and the protocols' control traffic — publishes structured
events onto one :class:`~repro.obs.bus.EventBus`. Each event is stamped
with simulated time, rank, and the publishing process's **vector
clock**, so happened-before is recoverable from the event log alone:
the log is a causal trace, not just a message log.

On top of the bus sit:

- a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  histograms (checkpoint latency, recovery-line lag, retransmit rate,
  rollback depth), fed by a :class:`~repro.obs.metrics.MetricsCollector`;
- a bounded :class:`~repro.obs.recorder.FlightRecorder` the chaos
  harness dumps automatically next to ddmin counterexamples;
- exporters to JSONL and Chrome ``chrome://tracing`` trace-event format
  (:mod:`repro.obs.export`), with a schema-versioned log header;
- hierarchical :mod:`spans <repro.obs.spans>` (wall + simulated clock)
  over the transform phases, recovery attempts, and campaign cells;
- campaign-scale :mod:`rollups <repro.obs.rollup>` (mergeable metrics,
  deterministic aggregate), a :mod:`diff engine <repro.obs.diff>` for
  regression gating, :mod:`event queries <repro.obs.query>`, and
  :mod:`live progress <repro.obs.progress>` streaming.

The subsystem is zero-cost when disabled (``observer=None`` leaves
every hot path a single ``is None`` test away from the status quo) and
fully deterministic: events carry simulated time only, so byte-identical
replays produce byte-identical JSONL logs.
"""

from repro.obs.bus import EventBus
from repro.obs.diff import (
    DiffReport,
    MetricDelta,
    Threshold,
    diff_metrics,
    flatten_metrics,
    format_diff,
)
from repro.obs.events import CATEGORIES, ObsEvent
from repro.obs.export import (
    EVENT_LOG_SCHEMA_VERSION,
    SchemaVersionError,
    chrome_trace,
    chrome_trace_json,
    event_log_header,
    events_to_jsonl,
    read_event_log,
    summarize_events,
    trace_from_events,
    write_event_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
)
from repro.obs.progress import ProgressEvent, ProgressReporter
from repro.obs.query import filter_events
from repro.obs.recorder import FlightRecorder
from repro.obs.rollup import (
    campaign_rollup,
    chaos_rollup,
    merge_registries,
    rollup_to_json,
)
from repro.obs.spans import NULL_TRACKER, Span, SpanTracker


class Observability:
    """Convenience bundle: bus + event log + flight recorder + metrics.

    Wires the standard subscribers onto a fresh bus. Pass ``.bus`` as
    the ``observer`` argument of
    :class:`~repro.runtime.engine.Simulation`; afterwards ``.events``
    holds the full event log, ``.recorder`` the bounded tail, and
    ``.metrics`` the aggregated registry.
    """

    def __init__(
        self, capacity: int = 4096, keep_events: bool = True
    ) -> None:
        self.bus = EventBus()
        self.events: list[ObsEvent] = []
        if keep_events:
            self.bus.subscribe(self.events.append)
        self.recorder = FlightRecorder(capacity=capacity)
        self.recorder.attach(self.bus)
        self.metrics = MetricsRegistry()
        self.collector = MetricsCollector(self.metrics)
        self.collector.attach(self.bus)

    def jsonl(self) -> str:
        """The full event log serialised as JSONL."""
        return events_to_jsonl(self.events)


__all__ = [
    "CATEGORIES",
    "Counter",
    "DiffReport",
    "EVENT_LOG_SCHEMA_VERSION",
    "EventBus",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsCollector",
    "MetricsRegistry",
    "NULL_TRACKER",
    "ObsEvent",
    "Observability",
    "ProgressEvent",
    "ProgressReporter",
    "SchemaVersionError",
    "Span",
    "SpanTracker",
    "Threshold",
    "campaign_rollup",
    "chaos_rollup",
    "chrome_trace",
    "chrome_trace_json",
    "diff_metrics",
    "event_log_header",
    "events_to_jsonl",
    "filter_events",
    "flatten_metrics",
    "format_diff",
    "merge_registries",
    "read_event_log",
    "rollup_to_json",
    "summarize_events",
    "trace_from_events",
    "write_event_log",
]
