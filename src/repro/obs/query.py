"""Event-log queries: filter a recorded stream without replaying it.

``repro trace query`` answers "what did rank 2 do between t=4 and
t=6?" or "show every event inside the recovery.attempt span" straight
from a JSONL log. Filters compose conjunctively; each is optional:

- ``ranks`` — keep events published by these ranks (rank-less events
  match only when ``None`` is in the set);
- ``categories`` / ``kinds`` — event taxonomy filters
  (``category``/``name``);
- ``since`` / ``until`` — inclusive simulated-time window;
- ``span`` — keep events whose simulated time falls inside any
  recorded span of that name (span events carry ``t`` + ``dur``, so
  the interval is recoverable from the log alone; the span events
  themselves match too).

Everything operates on simulated time — queries over a log are as
deterministic as the log.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.events import ObsEvent


def span_intervals(
    events: Iterable[ObsEvent], name: str
) -> list[tuple[float, float]]:
    """The ``[sim_start, sim_end]`` intervals of every span called
    *name* in the log, in emission order."""
    intervals: list[tuple[float, float]] = []
    for event in events:
        if event.category == "span" and event.name == name:
            start = event.time
            intervals.append((
                start, start + float(event.fields.get("dur", 0.0))
            ))
    return intervals


def filter_events(
    events: Sequence[ObsEvent],
    ranks: Iterable[int | None] | None = None,
    categories: Iterable[str] | None = None,
    kinds: Iterable[str] | None = None,
    since: float | None = None,
    until: float | None = None,
    span: str | None = None,
) -> list[ObsEvent]:
    """Apply the conjunction of the given filters to *events*."""
    rank_set = None if ranks is None else set(ranks)
    cat_set = None if categories is None else set(categories)
    kind_set = None if kinds is None else set(kinds)
    intervals = None if span is None else span_intervals(events, span)
    kept: list[ObsEvent] = []
    for event in events:
        if rank_set is not None and event.rank not in rank_set:
            continue
        if cat_set is not None and event.category not in cat_set:
            continue
        if kind_set is not None and event.name not in kind_set:
            continue
        if since is not None and event.time < since:
            continue
        if until is not None and event.time > until:
            continue
        if intervals is not None:
            inside = any(
                start <= event.time <= end for start, end in intervals
            )
            matches_span = (
                event.category == "span" and event.name == span
            )
            if not inside and not matches_span:
                continue
        kept.append(event)
    return kept


def format_events(events: Iterable[ObsEvent]) -> str:
    """One aligned text line per event (seq, time, rank, kind, fields)."""
    lines = []
    for event in events:
        rank = "-" if event.rank is None else str(event.rank)
        fields = " ".join(
            f"{key}={event.fields[key]}" for key in sorted(event.fields)
        )
        lines.append(
            f"{event.seq:>6d}  t={event.time:<10.4f} r{rank:<3s} "
            f"{event.category}.{event.name}"
            + (f"  {fields}" if fields else "")
        )
    if not lines:
        return "no events matched\n"
    return "\n".join(lines) + "\n"
