"""Hierarchical spans: durations with both a wall clock and a sim clock.

A :class:`Span` is one named interval of work with a parent (spans
nest), an optional rank, a **wall-clock** duration (what the hardware
paid) and, where the work happens inside the simulator, a
**simulated-clock** duration (what the model paid). The two clocks
serve different masters and are kept strictly apart:

- simulated durations are deterministic, so span events published on an
  :class:`~repro.obs.bus.EventBus` carry *only* sim times and are safe
  inside byte-identity artifacts (campaign event logs, flight-recorder
  dumps);
- wall durations are diagnostic, live only on the
  :class:`SpanTracker`, and reach files solely through the explicitly
  non-deterministic exports (``SpanTracker.chrome_trace``, the
  ``--spans-out`` CLI flags).

Instrumented sites (see ``docs/metrics.md`` for the full catalogue):

========================== ==========================================
``phase1.insertion``        Phase I checkpoint insertion
``phase2.matching``         Phase II send/recv matching (extended CFG)
``phase3.placement``        Phase III checkpoint motion to Condition 1
``phase4.verification``     Phase IV final Condition 1 check
``cache.lookup``            transform-cache probe (``outcome`` field)
``recovery.attempt``        one RecoverySupervisor attempt (sim clock)
``cell.attempt``            one executor attempt of one campaign cell
``cell``                    a campaign cell submit → final outcome
``campaign.merge``          deterministic merge of all cell results
========================== ==========================================

The tracker is zero-cost when absent: every instrumented site holds
``tracker: SpanTracker | None`` and guards with a single ``is None``
test (or receives :data:`NULL_TRACKER`, whose ``span`` context manager
does nothing), mirroring the bus's ``observer=None`` contract. The
``spans`` case in ``results/obs_overhead.txt`` benchmarks that claim.
"""

from __future__ import annotations

import json
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Wall seconds -> Chrome trace microseconds.
_CHROME_US = 1_000_000.0


@dataclass
class Span:
    """One finished (or in-flight) interval of named work.

    Attributes:
        span_id: Tracker-local id, dense from 0 in open order.
        parent_id: Enclosing span's id, or ``None`` for a root.
        name: Span name (dotted, e.g. ``phase3.placement``).
        rank: Publishing process where one exists, else ``None``.
        wall_start / wall_end: ``perf_counter`` readings (seconds).
        sim_start / sim_end: Simulated times, or ``None`` for offline
            work that has no simulated clock.
        fields: Flat JSON-safe payload (``outcome``, ``attempt``, ...).
    """

    span_id: int
    parent_id: int | None
    name: str
    rank: int | None = None
    wall_start: float = 0.0
    wall_end: float | None = None
    sim_start: float | None = None
    sim_end: float | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds spent inside the span (0.0 while open)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def sim_duration(self) -> float | None:
        """Simulated seconds covered, or ``None`` for offline spans."""
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start


class SpanTracker:
    """Collects nested spans; optionally publishes them as events.

    ``with tracker.span("phase1.insertion"): ...`` opens a span whose
    parent is the innermost still-open span on this tracker, times it
    on the wall clock, and records it on close. Simulated times are
    supplied explicitly by the caller (``sim_start=``/``sim_end=``)
    because only the engine knows them.

    With *bus* attached, every closed span is also published as an
    :class:`~repro.obs.events.ObsEvent` of category ``"span"`` carrying
    **simulated times only** (``t`` = sim start or 0.0, ``dur`` = sim
    duration or 0.0) plus the span/parent ids — never wall clock, so
    logs stay deterministic. Wall durations are read back from
    :attr:`spans`, :meth:`wall_totals`, or :meth:`chrome_trace`.
    """

    def __init__(
        self,
        bus=None,
        wall_clock: Callable[[], float] = _time.perf_counter,
    ) -> None:
        self.bus = bus
        self._wall = wall_clock
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(
        self,
        name: str,
        rank: int | None = None,
        sim_start: float | None = None,
        sim_end: float | None = None,
        **fields: Any,
    ) -> Iterator[Span]:
        """Open a nested span; close and record it on exit.

        The yielded :class:`Span` is live — handlers may set
        ``fields`` entries or ``sim_start``/``sim_end`` before exit
        (e.g. record an outcome decided mid-span).
        """
        span = self.open(
            name, rank=rank, sim_start=sim_start, sim_end=sim_end, **fields
        )
        try:
            yield span
        finally:
            self.close(span)

    def open(
        self,
        name: str,
        rank: int | None = None,
        sim_start: float | None = None,
        sim_end: float | None = None,
        **fields: Any,
    ) -> Span:
        """Explicitly open a span (for non-lexical lifetimes)."""
        span = Span(
            span_id=len(self.spans),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            rank=rank,
            wall_start=self._wall(),
            sim_start=sim_start,
            sim_end=sim_end,
            fields=dict(fields),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def close(self, span: Span) -> Span:
        """Close *span* (and any unclosed children), publish if bound."""
        while self._stack:
            top = self._stack.pop()
            if top.wall_end is None:
                top.wall_end = self._wall()
            if top is span:
                break
        else:
            if span.wall_end is None:
                span.wall_end = self._wall()
        self._publish(span)
        return span

    def _publish(self, span: Span) -> None:
        """Emit a closed span on the bus (sim times only), if bound."""
        if self.bus is None:
            return
        self.bus.emit(
            "span",
            span.name,
            span.rank,
            span.sim_start if span.sim_start is not None else 0.0,
            span_id=span.span_id,
            parent=span.parent_id,
            dur=(
                span.sim_duration if span.sim_duration is not None else 0.0
            ),
            **span.fields,
        )

    def record(
        self,
        name: str,
        wall_start: float,
        wall_end: float,
        rank: int | None = None,
        sim_start: float | None = None,
        sim_end: float | None = None,
        **fields: Any,
    ) -> Span:
        """Record an already-finished span without touching the stack.

        For work whose lifetime the caller measured itself (e.g. a
        campaign cell that ran on a pool worker — its wall interval is
        known only at completion, and concurrent cells cannot nest).
        The span parents under the innermost open span, is published on
        the bus like any closed span, and never interferes with
        lexically-scoped ``span()`` nesting.
        """
        span = Span(
            span_id=len(self.spans),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            rank=rank,
            wall_start=wall_start,
            wall_end=wall_end,
            sim_start=sim_start,
            sim_end=sim_end,
            fields=dict(fields),
        )
        self.spans.append(span)
        self._publish(span)
        return span

    def wall_totals(self) -> dict[str, float]:
        """Total wall seconds per span name, sorted by name."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + (
                span.wall_duration
            )
        return dict(sorted(totals.items()))

    def by_name(self, name: str) -> list[Span]:
        """Every recorded span called *name*, in open order."""
        return [span for span in self.spans if span.name == name]

    def chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event document of the recorded spans.

        Spans become complete events (``ph: "X"``). Timestamps come
        from the *wall* clock, zeroed at the first span's start, so
        this export is diagnostic (never byte-identical across runs) —
        the deterministic route for spans is the event log plus
        ``repro trace chrome``. Each rank gets its own thread; rankless
        spans land on a "driver" thread.
        """
        events: list[dict[str, Any]] = []
        origin = min(
            (span.wall_start for span in self.spans), default=0.0
        )
        ranks: set[int] = set()
        for span in self.spans:
            tid = span.rank if span.rank is not None else -1
            if span.rank is not None:
                ranks.add(span.rank)
            args: dict[str, Any] = dict(span.fields)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent"] = span.parent_id
            if span.sim_duration is not None:
                args["sim_dur"] = span.sim_duration
            events.append({
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": (span.wall_start - origin) * _CHROME_US,
                "dur": span.wall_duration * _CHROME_US,
                "pid": 0,
                "tid": tid,
                "args": args,
            })
        metadata: list[dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"P{rank}"},
            }
            for rank in sorted(ranks)
        ]
        if any(event["tid"] == -1 for event in events):
            metadata.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": -1,
                "args": {"name": "driver"},
            })
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
        }

    def chrome_trace_json(self, indent: int | None = None) -> str:
        """:meth:`chrome_trace` serialised as JSON text."""
        return json.dumps(self.chrome_trace(), indent=indent, sort_keys=True)


class _NullTracker:
    """The do-nothing tracker: ``span`` costs one method call.

    Instrumented code paths that would otherwise pepper themselves with
    ``if tracker is not None`` can take :data:`NULL_TRACKER` as their
    default and call ``tracker.span(...)`` unconditionally.
    """

    __slots__ = ()

    @contextmanager
    def span(self, name, rank=None, sim_start=None, sim_end=None, **fields):
        yield Span(span_id=-1, parent_id=None, name=name)

    def open(self, name, rank=None, sim_start=None, sim_end=None, **fields):
        return Span(span_id=-1, parent_id=None, name=name)

    def close(self, span):
        return span

    def record(self, name, wall_start, wall_end, rank=None,
               sim_start=None, sim_end=None, **fields):
        return Span(span_id=-1, parent_id=None, name=name)


#: Shared no-op tracker for uninstrumented runs.
NULL_TRACKER = _NullTracker()
