"""Live campaign progress: structured events, line-oriented rendering.

A long campaign is opaque without feedback, but progress output must
never leak into deterministic artifacts — so progress is a separate
channel: the executor invokes a callback with structured
:class:`ProgressEvent` records (campaign start, each cell's final
outcome, retries, quarantines, campaign end), and the CLI's
``--progress`` flag attaches a :class:`ProgressReporter` that renders
them as plain lines on stderr. Nothing here touches the campaign
result, the event logs, or the rollup's deterministic sections; wall
clock is allowed because this channel is ephemeral by construction.

Event kinds (full field semantics in ``docs/metrics.md``):

============== ====================================================
``start``       campaign accepted; ``total`` cells, ``jobs`` workers
``cell-done``   one cell reached a final outcome (``cell``, ``ok``)
``retry``       a failed attempt will be retried (``cell``,
                ``attempt``)
``quarantine``  a cell exhausted its retry budget (``cell``)
``end``         campaign finished; summary counters
============== ====================================================
"""

from __future__ import annotations

import sys
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, TextIO

#: Signature of the executor's progress callback.
ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One structured progress fact about a running campaign.

    Attributes:
        kind: ``start`` / ``cell-done`` / ``retry`` / ``quarantine`` /
            ``end``.
        done: Cells with a final outcome so far.
        total: Cells in the campaign.
        cell: The cell key this event concerns, where one does.
        fields: Kind-specific extras (``jobs``, ``ok``, ``attempt``,
            ``failed``, ``quarantined``...).
    """

    kind: str
    done: int
    total: int
    cell: str | None = None
    fields: dict[str, Any] = field(default_factory=dict)


class ProgressReporter:
    """Renders progress events as plain lines (one per event).

    Line-oriented on purpose: no cursor tricks, so output survives CI
    log capture, ``tee``, and non-TTY pipes. Elapsed wall time and a
    naive ETA (linear extrapolation over finished cells) decorate the
    ``cell-done`` lines.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        wall_clock: Callable[[], float] = _time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._wall = wall_clock
        self._started = self._wall()

    def __call__(self, event: ProgressEvent) -> None:
        self.stream.write(self._render(event) + "\n")
        self.stream.flush()

    def _render(self, event: ProgressEvent) -> str:
        elapsed = self._wall() - self._started
        if event.kind == "start":
            self._started = self._wall()
            jobs = event.fields.get("jobs", 1)
            return (
                f"campaign: {event.total} cells, {jobs} job(s)"
            )
        if event.kind == "cell-done":
            ok = event.fields.get("ok", True)
            eta = ""
            if event.done and event.done < event.total:
                remaining = (
                    elapsed / event.done * (event.total - event.done)
                )
                eta = f" eta {remaining:.0f}s"
            return (
                f"[{event.done}/{event.total}] "
                f"{'ok  ' if ok else 'FAIL'} {event.cell}"
                f" ({elapsed:.1f}s{eta})"
            )
        if event.kind == "retry":
            attempt = event.fields.get("attempt", "?")
            return (
                f"[{event.done}/{event.total}] retry {event.cell} "
                f"(attempt {attempt})"
            )
        if event.kind == "quarantine":
            return (
                f"[{event.done}/{event.total}] QUARANTINED {event.cell}"
            )
        if event.kind == "end":
            failed = event.fields.get("failed", 0)
            quarantined = event.fields.get("quarantined", 0)
            verdict = "all ok" if not failed and not quarantined else (
                f"{failed} failed, {quarantined} quarantined"
            )
            return (
                f"campaign done: {event.done}/{event.total} cells, "
                f"{verdict} ({elapsed:.1f}s)"
            )
        return f"{event.kind}: {event.cell or ''}"
