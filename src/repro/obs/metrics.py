"""Metrics: counters, gauges, histograms, and the event-fed collector.

The registry is deliberately simulation-grade: deterministic (no
wall-clock, no sampling), allocation-light, and serialisable to plain
JSON for benchmarks and CI. :class:`MetricsCollector` subscribes to an
:class:`~repro.obs.bus.EventBus` and derives the standard checkpoint
metrics from the event stream alone:

- ``checkpoints_total`` / per-category event counters;
- ``checkpoint_latency`` — histogram of per-rank gaps between
  consecutive checkpoint completions;
- ``recovery_line_lag`` — gauge of ``i_max − i_consistent``, the
  spread between the most advanced rank's checkpoint number and the
  deepest number all ranks share (the straight cut usable for
  recovery right now);
- ``retransmit_rate`` — retransmissions per data frame put on the wire;
- ``rollback_depth`` — histogram of degraded-recovery fallback depths;
- ``storage_checkpoints`` / ``storage_bytes`` — occupancy gauges from
  the end-of-run storage event;
- ``snapshot_bytes`` / ``snapshot_bytes_dist`` — durable wire size of
  the most recently committed checkpoint payload (gauge) and its
  distribution over the run (histogram), fed by storage ``commit``
  events; the same canonical-encoding measure that
  ``StableStorage.total_bytes(incremental=True)`` sums, so per-commit
  gauges and run totals share one source of truth;
- ``storage_retries_total`` / ``gc_collected_total`` /
  ``gc_reclaimed_bytes_total`` — write-retry and retention-GC counters;
- ``recovery_retries_total`` / ``recovery_backoff`` /
  ``unrecoverable_total`` — recovery-supervisor retry accounting.

The resilient campaign executor publishes its own counters here too
(via :meth:`~repro.campaign.executor.ExecutorStats.publish`):
``executor.worker_restarts`` / ``.retries`` / ``.timeouts`` /
``.quarantines`` / ``.resume_hits`` / ``.journal_torn_entries`` — the
harness's checkpoint/restart machinery accounted for with the same
registry the simulated system uses.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.events import ObsEvent


class Counter:
    """A monotonically increasing integer."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways (last write wins)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        self.value = value

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of a distribution (count/sum/min/max/mean).

    Constant memory by construction — no reservoir, no buckets — so
    recording is O(1) and the summary is deterministic.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name* (created on first use)."""
        return self._get(name, Histogram)

    def as_dict(self) -> dict[str, Any]:
        """Every metric, keyed by name, in sorted order."""
        return {
            name: self._metrics[name].as_dict()
            for name in sorted(self._metrics)
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The registry serialised as a JSON object."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


class MetricsCollector:
    """Derives the standard metrics from the bus's event stream."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._last_checkpoint_time: dict[int, float] = {}
        self._checkpoint_numbers: dict[int, int] = {}

    def attach(self, bus) -> None:
        """Subscribe this collector to *bus*."""
        bus.subscribe(self.on_event)

    def on_event(self, event: ObsEvent) -> None:
        """Fold one event into the registry."""
        reg = self.registry
        reg.counter("events_total").inc()
        reg.counter(f"{event.category}.{event.name}").inc()
        if event.category == "engine":
            self._on_engine(event)
        elif event.category == "transport":
            self._on_transport(event)
        elif event.category == "protocol":
            self._on_protocol(event)
        elif event.category == "storage":
            self._on_storage(event)
        elif event.category == "span":
            # Simulated duration distribution per span name.
            self.registry.histogram(f"span.{event.name}.sim_dur").observe(
                float(event.fields.get("dur", 0.0))
            )

    def _on_storage(self, event: ObsEvent) -> None:
        if event.name == "commit":
            retries = event.fields.get("retries", 0)
            if retries:
                self.registry.counter("storage_retries_total").inc(retries)
            # Durable wire size of the payload just committed (delta
            # entries report their delta record, not the full state):
            # a gauge of the most recent value plus a distribution
            # across the run.
            size = float(event.fields.get("bytes", 0))
            self.registry.gauge("snapshot_bytes").set(size)
            self.registry.histogram("snapshot_bytes_dist").observe(size)
        elif event.name == "gc":
            self.registry.counter("gc_collected_total").inc()
            self.registry.counter("gc_reclaimed_bytes_total").inc(
                int(event.fields.get("bytes", 0))
            )
        elif event.name == "occupancy":
            self.registry.gauge("storage_checkpoints").set(
                float(event.fields.get("count", 0))
            )
            self.registry.gauge("storage_bytes").set(
                float(event.fields.get("bytes", 0))
            )

    def _on_engine(self, event: ObsEvent) -> None:
        if event.name == "recovery-retry":
            self.registry.counter("recovery_retries_total").inc()
            self.registry.histogram("recovery_backoff").observe(
                float(event.fields.get("backoff", 0.0))
            )
            return
        if event.name == "unrecoverable":
            self.registry.counter("unrecoverable_total").inc()
            return
        if event.name == "checkpoint" and event.rank is not None:
            previous = self._last_checkpoint_time.get(event.rank)
            if previous is not None:
                self.registry.histogram("checkpoint_latency").observe(
                    event.time - previous
                )
            self._last_checkpoint_time[event.rank] = event.time
            number = event.fields.get("checkpoint_number")
            if number is not None:
                self._checkpoint_numbers[event.rank] = number
                numbers = self._checkpoint_numbers.values()
                self.registry.gauge("recovery_line_lag").set(
                    max(numbers) - min(numbers)
                )

    def _on_transport(self, event: ObsEvent) -> None:
        if event.name != "frame":
            return
        frames = self.registry.counter("frames_total")
        frames.inc()
        retx = self.registry.counter("retransmits_total")
        if event.fields.get("attempt", 1) > 1:
            retx.inc()
        self.registry.gauge("retransmit_rate").set(
            retx.value / frames.value
        )

    def _on_protocol(self, event: ObsEvent) -> None:
        if event.name == "recovery":
            self.registry.histogram("rollback_depth").observe(
                float(event.fields.get("depth", 0))
            )
