"""repro — Application-Driven Coordination-Free Distributed Checkpointing.

A full reproduction of Agbaria & Sanders (ICDCS 2005): the offline
three-phase program transformation that makes every straight cut of
checkpoints a recovery line with zero runtime coordination, plus the
substrates needed to validate it — a MiniMP language front end, CFG and
rank-attribute analyses, a discrete-event distributed simulator with
failure injection and rollback, four baseline checkpointing protocols,
and the paper's stochastic performance model.

Quickstart::

    from repro import transform, parse, Simulation
    from repro.protocols import ApplicationDrivenProtocol

    program = parse(source_text)
    result = transform(program)          # Phases I-III + verification
    sim = Simulation(result.program, n_processes=4,
                     params={"steps": 20},
                     protocol=ApplicationDrivenProtocol())
    run = sim.run()
    assert run.trace.all_straight_cuts_consistent()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.analysis import (
    ModelParameters,
    ProtocolKind,
    figure8_series,
    figure9_series,
    gamma_closed_form,
    overhead_ratio,
)
from repro.cfg import build_cfg
from repro.lang import parse, to_source
from repro.lang.programs import load_program, program_names
from repro.phases import (
    TransformResult,
    build_extended_cfg,
    check_condition1,
    ensure_recovery_lines,
    insert_checkpoints,
    transform,
    verify_program,
)
from repro.runtime import FailurePlan, FaultPlan, RuntimeCosts, Simulation

__version__ = "1.0.0"

__all__ = [
    "FailurePlan",
    "FaultPlan",
    "ModelParameters",
    "ProtocolKind",
    "RuntimeCosts",
    "Simulation",
    "TransformResult",
    "build_cfg",
    "build_extended_cfg",
    "check_condition1",
    "ensure_recovery_lines",
    "figure8_series",
    "figure9_series",
    "gamma_closed_form",
    "insert_checkpoints",
    "load_program",
    "overhead_ratio",
    "parse",
    "program_names",
    "to_source",
    "transform",
    "verify_program",
    "__version__",
]
