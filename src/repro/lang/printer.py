"""Pretty-printer: MiniMP AST back to source text.

Phase III rewrites the AST (moving ``checkpoint`` statements); the
printer makes the transformed program inspectable and round-trippable —
``parse(to_source(parse(src)))`` yields a structurally equal AST, which
the test suite checks property-style.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast

_INDENT = "    "

# Binding strength for parenthesisation; higher binds tighter.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "//": 6,
    "%": 6,
}


def expr_to_source(expr: ast.Expr) -> str:
    """Render a single expression."""
    return _render_expr(expr, parent_prec=0)


def _render_expr(expr: ast.Expr, parent_prec: int) -> str:
    if isinstance(expr, ast.Const):
        return str(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.MyRank):
        return "myrank"
    if isinstance(expr, ast.NProcs):
        return "nprocs"
    if isinstance(expr, ast.InputData):
        return f"input({expr.label})"
    if isinstance(expr, ast.Call):
        args = ", ".join(_render_expr(a, 0) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ast.UnaryOp):
        operand = _render_expr(expr.operand, 7)
        text = f"not {operand}" if expr.op == "not" else f"-{operand}"
        return f"({text})" if parent_prec >= 7 else text
    if isinstance(expr, ast.BinOp):
        prec = _PRECEDENCE[expr.op]
        left = _render_expr(expr.left, prec - 1)
        right = _render_expr(expr.right, prec)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec <= parent_prec else text
    raise TypeError(f"unknown expression node: {expr!r}")


def _render_block(block: ast.Block, depth: int, lines: list[str]) -> None:
    prefix = _INDENT * depth
    if not block.statements:
        lines.append(f"{prefix}pass")
        return
    for stmt in block.statements:
        _render_stmt(stmt, depth, lines)


def _render_stmt(stmt: ast.Stmt, depth: int, lines: list[str]) -> None:
    prefix = _INDENT * depth
    if isinstance(stmt, ast.Assign):
        lines.append(f"{prefix}{stmt.target} = {expr_to_source(stmt.value)}")
    elif isinstance(stmt, ast.Send):
        lines.append(
            f"{prefix}send({expr_to_source(stmt.dest)}, {expr_to_source(stmt.value)})"
        )
    elif isinstance(stmt, ast.Recv):
        lines.append(f"{prefix}{stmt.target} = recv({expr_to_source(stmt.source)})")
    elif isinstance(stmt, ast.Bcast):
        lines.append(
            f"{prefix}{stmt.target} = "
            f"bcast({expr_to_source(stmt.root)}, {expr_to_source(stmt.value)})"
        )
    elif isinstance(stmt, ast.Checkpoint):
        lines.append(f"{prefix}checkpoint")
    elif isinstance(stmt, ast.Compute):
        lines.append(f"{prefix}compute({expr_to_source(stmt.cost)})")
    elif isinstance(stmt, ast.Pass):
        lines.append(f"{prefix}pass")
    elif isinstance(stmt, ast.If):
        lines.append(f"{prefix}if {expr_to_source(stmt.cond)}:")
        _render_block(stmt.then_block, depth + 1, lines)
        if stmt.else_block.statements:
            lines.append(f"{prefix}else:")
            _render_block(stmt.else_block, depth + 1, lines)
    elif isinstance(stmt, ast.While):
        lines.append(f"{prefix}while {expr_to_source(stmt.cond)}:")
        _render_block(stmt.body, depth + 1, lines)
    elif isinstance(stmt, ast.For):
        lines.append(
            f"{prefix}for {stmt.var} in range({expr_to_source(stmt.count)}):"
        )
        _render_block(stmt.body, depth + 1, lines)
    else:
        raise TypeError(f"unknown statement node: {stmt!r}")


def to_source(program: ast.Program) -> str:
    """Render *program* as MiniMP source text (ending with a newline)."""
    lines = [f"program {program.name}():"]
    _render_block(program.body, 1, lines)
    return "\n".join(lines) + "\n"


def ast_equal(a: ast._Node, b: ast._Node) -> bool:
    """Structural AST equality ignoring node ids and source lines."""
    if type(a) is not type(b):
        return False
    fields_a = {
        k: v for k, v in vars(a).items() if k not in ("node_id", "line")
    }
    fields_b = {
        k: v for k, v in vars(b).items() if k not in ("node_id", "line")
    }
    if fields_a.keys() != fields_b.keys():
        return False
    for key, value_a in fields_a.items():
        value_b = fields_b[key]
        if isinstance(value_a, ast._Node):
            if not ast_equal(value_a, value_b):
                return False
        elif isinstance(value_a, list):
            if len(value_a) != len(value_b):
                return False
            for item_a, item_b in zip(value_a, value_b):
                if isinstance(item_a, ast._Node):
                    if not ast_equal(item_a, item_b):
                        return False
                elif item_a != item_b:
                    return False
        elif value_a != value_b:
            return False
    return True
