"""Canonical MiniMP programs.

This module ships the two programs the paper uses as running examples —
the Jacobi solver of Figure 1 (all processes checkpoint at the same
program point; every straight cut is a recovery line) and the odd/even
variant of Figure 2 (parity-dependent checkpoint placement; straight
cuts are *not* recovery lines) — plus a library of realistic SPMD
workloads used by the examples, tests, and benchmarks.

All pairwise-exchange programs assume an even number of processes; ring
programs work for any ``nprocs >= 2``. Each factory returns a freshly
parsed AST so callers can mutate their copy freely.
"""

from __future__ import annotations

from repro.lang.ast_nodes import Program
from repro.lang.parser import parse

JACOBI_SOURCE = """\
program jacobi():
    x = init(myrank)
    i = 0
    while i < steps:
        checkpoint
        if myrank % 2 == 0:
            send(myrank + 1, x)
            y = recv(myrank + 1)
        else:
            y = recv(myrank - 1)
            send(myrank - 1, x)
        x = relax(x, y)
        i = i + 1
"""

JACOBI_ODD_EVEN_SOURCE = """\
program jacobi_odd_even():
    x = init(myrank)
    i = 0
    while i < steps:
        if myrank % 2 == 0:
            checkpoint
            send(myrank + 1, x)
            y = recv(myrank + 1)
        else:
            y = recv(myrank - 1)
            send(myrank - 1, x)
            checkpoint
        x = relax(x, y)
        i = i + 1
"""

RING_PIPELINE_SOURCE = """\
program ring_pipeline():
    x = init(myrank)
    i = 0
    while i < steps:
        checkpoint
        if myrank == 0:
            send(1, x)
            y = recv(nprocs - 1)
        else:
            y = recv(myrank - 1)
            send((myrank + 1) % nprocs, combine(x, y))
        x = relax(x, y)
        i = i + 1
"""

RING_UNSAFE_SOURCE = """\
program ring_unsafe():
    x = init(myrank)
    i = 0
    while i < steps:
        if myrank == 0:
            checkpoint
            send(1, x)
            y = recv(nprocs - 1)
        else:
            y = recv(myrank - 1)
            checkpoint
            send((myrank + 1) % nprocs, combine(x, y))
        x = relax(x, y)
        i = i + 1
"""

MASTER_WORKER_SOURCE = """\
program master_worker():
    i = 0
    while i < steps:
        checkpoint
        if myrank == 0:
            task = init(i)
            w = 1
            while w < nprocs:
                send(w, combine(task, w))
                w = w + 1
            w = 1
            while w < nprocs:
                res = recv(w)
                task = combine(task, res)
                w = w + 1
        else:
            job = recv(0)
            compute(5)
            send(0, relax(job, myrank))
        i = i + 1
"""

STENCIL_1D_SOURCE = """\
program stencil_1d():
    x = init(myrank)
    i = 0
    while i < steps:
        checkpoint
        if myrank % 2 == 0:
            if myrank + 1 < nprocs:
                send(myrank + 1, x)
                right = recv(myrank + 1)
                x = combine(x, right)
            if myrank > 0:
                send(myrank - 1, x)
                left = recv(myrank - 1)
                x = combine(x, left)
        else:
            left = recv(myrank - 1)
            send(myrank - 1, x)
            x = combine(x, left)
            if myrank + 1 < nprocs:
                right = recv(myrank + 1)
                send(myrank + 1, x)
                x = combine(x, right)
        compute(3)
        i = i + 1
"""

STENCIL_HALO_SOURCE = """\
program stencil_halo():
    x = init(myrank)
    i = 0
    while i < steps:
        checkpoint
        g0 = relax(x, i)
        g1 = combine(g0, myrank)
        g2 = relax(g1, i)
        g3 = combine(g2, g0)
        g4 = relax(g3, g1)
        g5 = combine(g4, g2)
        g6 = relax(g5, g3)
        g7 = combine(g6, g4)
        g8 = relax(g7, g5)
        g9 = combine(g8, g6)
        g10 = relax(g9, g7)
        g11 = combine(g10, g8)
        g12 = relax(g11, g9)
        g13 = combine(g12, g10)
        g14 = relax(g13, g11)
        g15 = combine(g14, g12)
        if myrank % 2 == 0:
            send(myrank + 1, g15)
            halo = recv(myrank + 1)
        else:
            halo = recv(myrank - 1)
            send(myrank - 1, g15)
        a0 = combine(g15, halo)
        a1 = relax(a0, g0)
        a2 = combine(a1, g1)
        a3 = relax(a2, g2)
        a4 = combine(a3, g3)
        a5 = relax(a4, g4)
        a6 = combine(a5, g5)
        a7 = relax(a6, g6)
        a8 = combine(a7, g7)
        a9 = relax(a8, g8)
        a10 = combine(a9, g9)
        a11 = relax(a10, g10)
        a12 = combine(a11, g11)
        a13 = relax(a12, g12)
        a14 = combine(a13, g13)
        a15 = relax(a14, g14)
        x = combine(a15, i)
        i = i + 1
"""

BROADCAST_REDUCE_SOURCE = """\
program broadcast_reduce():
    acc = init(myrank)
    i = 0
    while i < steps:
        checkpoint
        seed = bcast(0, acc)
        part = relax(seed, myrank)
        if myrank == 0:
            w = 1
            while w < nprocs:
                contrib = recv(w)
                acc = combine(acc, contrib)
                w = w + 1
        else:
            send(0, part)
        i = i + 1
"""

TOKEN_RING_SOURCE = """\
program token_ring():
    i = 0
    while i < steps:
        checkpoint
        if myrank == 0:
            token = init(i)
            send(1, token)
            token = recv(nprocs - 1)
        else:
            token = recv(myrank - 1)
            send((myrank + 1) % nprocs, relax(token, myrank))
        compute(2)
        i = i + 1
"""

IRREGULAR_DISPATCH_SOURCE = """\
program irregular_dispatch():
    i = 0
    while i < steps:
        checkpoint
        if myrank == 0:
            target = input(routing) % (nprocs - 1) + 1
            w = 1
            while w < nprocs:
                send(w, combine(target, w))
                w = w + 1
            w = 1
            while w < nprocs:
                r = recv(w)
                w = w + 1
        else:
            job = recv(0)
            compute(4)
            send(0, relax(job, myrank))
        i = i + 1
"""

PINGPONG_SOURCE = """\
program pingpong():
    x = init(myrank)
    i = 0
    while i < steps:
        checkpoint
        if myrank % 2 == 0:
            send(myrank + 1, x)
            x = recv(myrank + 1)
        else:
            x = recv(myrank - 1)
            send(myrank - 1, relax(x, i))
        i = i + 1
"""

GRID_STENCIL_2D_SOURCE = """\
program grid_stencil_2d():
    x = init(myrank)
    row = myrank / px
    col = myrank % px
    i = 0
    while i < steps:
        checkpoint
        if col % 2 == 0:
            if col + 1 < px:
                send(myrank + 1, x)
                e = recv(myrank + 1)
                x = combine(x, e)
            if col > 0:
                send(myrank - 1, x)
                w = recv(myrank - 1)
                x = combine(x, w)
        else:
            w = recv(myrank - 1)
            send(myrank - 1, x)
            x = combine(x, w)
            if col + 1 < px:
                e = recv(myrank + 1)
                send(myrank + 1, x)
                x = combine(x, e)
        if row % 2 == 0:
            if myrank + px < nprocs:
                send(myrank + px, x)
                s = recv(myrank + px)
                x = combine(x, s)
            if row > 0:
                send(myrank - px, x)
                t = recv(myrank - px)
                x = combine(x, t)
        else:
            t = recv(myrank - px)
            send(myrank - px, x)
            x = combine(x, t)
            if myrank + px < nprocs:
                s = recv(myrank + px)
                send(myrank + px, x)
                x = combine(x, s)
        i = i + 1
"""

TREE_REDUCE_SOURCE = """\
program tree_reduce():
    acc = init(myrank)
    r = 0
    while r < steps:
        checkpoint
        span = 1
        while span < nprocs:
            if myrank % (span * 2) == 0:
                if myrank + span < nprocs:
                    v = recv(myrank + span)
                    acc = combine(acc, v)
            else:
                if myrank % span == 0:
                    send(myrank - span, acc)
            span = span * 2
        seed = bcast(0, acc)
        acc = relax(seed, myrank)
        r = r + 1
"""

UNCHECKPOINTED_JACOBI_SOURCE = """\
program jacobi_plain():
    x = init(myrank)
    i = 0
    while i < steps:
        compute(4)
        if myrank % 2 == 0:
            send(myrank + 1, x)
            y = recv(myrank + 1)
        else:
            y = recv(myrank - 1)
            send(myrank - 1, x)
        x = relax(x, y)
        i = i + 1
"""

_SOURCES: dict[str, str] = {
    "jacobi": JACOBI_SOURCE,
    "jacobi_odd_even": JACOBI_ODD_EVEN_SOURCE,
    "ring_pipeline": RING_PIPELINE_SOURCE,
    "ring_unsafe": RING_UNSAFE_SOURCE,
    "master_worker": MASTER_WORKER_SOURCE,
    "stencil_1d": STENCIL_1D_SOURCE,
    "stencil_halo": STENCIL_HALO_SOURCE,
    "broadcast_reduce": BROADCAST_REDUCE_SOURCE,
    "token_ring": TOKEN_RING_SOURCE,
    "irregular_dispatch": IRREGULAR_DISPATCH_SOURCE,
    "pingpong": PINGPONG_SOURCE,
    "tree_reduce": TREE_REDUCE_SOURCE,
    "grid_stencil_2d": GRID_STENCIL_2D_SOURCE,
    "jacobi_plain": UNCHECKPOINTED_JACOBI_SOURCE,
}


# Extra parameters (besides `steps`) some programs require to run.
_EXTRA_PARAMS: dict[str, dict[str, int]] = {
    "grid_stencil_2d": {"px": 2},
}


def program_names() -> tuple[str, ...]:
    """Names of all shipped programs, in declaration order."""
    return tuple(_SOURCES)


def default_params(name: str, steps: int = 3) -> dict[str, int]:
    """Parameters making the shipped program *name* runnable.

    Always includes ``steps``; programs with additional free parameters
    (e.g. the 2-D stencil's grid width ``px``) get safe defaults.
    """
    params = {"steps": steps}
    params.update(_EXTRA_PARAMS.get(name, {}))
    return params


def program_source(name: str) -> str:
    """Return the source text of the shipped program *name*."""
    try:
        return _SOURCES[name]
    except KeyError:
        known = ", ".join(sorted(_SOURCES))
        raise KeyError(f"unknown program {name!r}; known programs: {known}") from None


def load_program(name: str) -> Program:
    """Parse and return a fresh AST of the shipped program *name*."""
    return parse(program_source(name))


def jacobi() -> Program:
    """The Jacobi solver of paper Figure 1 (safe placement)."""
    return load_program("jacobi")


def jacobi_odd_even() -> Program:
    """The odd/even Jacobi variant of paper Figure 2 (unsafe placement)."""
    return load_program("jacobi_odd_even")


def ring_pipeline() -> Program:
    """A ring pipeline with a safe loop-head checkpoint."""
    return load_program("ring_pipeline")


def ring_unsafe() -> Program:
    """A ring pipeline whose mid-iteration checkpoints break straight cuts."""
    return load_program("ring_unsafe")


def master_worker() -> Program:
    """A master/worker farm: rank 0 scatters tasks and gathers results."""
    return load_program("master_worker")


def stencil_1d() -> Program:
    """A 1-D stencil with boundary handling (rank-range branches)."""
    return load_program("stencil_1d")


def stencil_halo() -> Program:
    """A 1-D stencil whose halo/update pipeline lives in scratch slots.

    The unrolled ``g*``/``a*`` temporaries model a kernel's working set:
    every one is recomputed from ``x`` each iteration before it is read,
    so at the loop-head checkpoint only ``x`` and ``i`` are live. This
    is the workload where application-driven content minimisation pays:
    liveness pruning zeroes the scratch block and delta encoding then
    drops it from the wire entirely.
    """
    return load_program("stencil_halo")


def broadcast_reduce() -> Program:
    """A collective broadcast followed by a gather-style reduction."""
    return load_program("broadcast_reduce")


def token_ring() -> Program:
    """A token circulating around the ring once per iteration."""
    return load_program("token_ring")


def irregular_dispatch() -> Program:
    """A dispatcher whose routing depends on input data (irregular pattern)."""
    return load_program("irregular_dispatch")


def pingpong() -> Program:
    """A two-way ping-pong between rank pairs."""
    return load_program("pingpong")


def tree_reduce() -> Program:
    """A binary-tree reduction per round, redistributed by broadcast.

    The tree levels use loop-carried spans, so the send/receive
    endpoints are statically *irregular* — the workload exercising
    Algorithm 3.1's liberal-matching rule on a realistic collective.
    """
    return load_program("tree_reduce")


def grid_stencil_2d() -> Program:
    """A 2-D stencil on a ``px × py`` grid (pass ``px`` as a parameter).

    Requires even grid dimensions (parity-paired handshakes per
    dimension). The row/column attributes are derived from ``myrank``
    with division and modulo against a run-time parameter, so this
    workload exercises liberal matching under partially-unknown
    endpoint expressions.
    """
    return load_program("grid_stencil_2d")


def jacobi_plain() -> Program:
    """The Jacobi solver with NO checkpoint statements (Phase I input)."""
    return load_program("jacobi_plain")
