"""Compile MiniMP ASTs to pre-bound closure programs.

The reference :class:`~repro.runtime.interpreter.ProcessInterpreter`
walks AST nodes on every step: each statement pays an ``isinstance``
dispatch chain, each expression node a recursive ``_eval`` call, and
each snapshot a frame-by-frame copy of the control stack. This module
lowers a validated program once into a flat *register program* — a list
of pre-bound Python closures indexed by a program counter — and executes
that instead:

- **Slotted frames.** Variables live in a flat register list indexed by
  a per-program symbol table instead of a dict environment. A separate
  first-binding order list reproduces the reference interpreter's dict
  insertion order exactly, so ``env`` (and every JSON artifact derived
  from it) is byte-identical.
- **Pre-resolved builtins and endpoints.** Builtin functions are looked
  up at bind time; ``myrank``/``nprocs`` are constant-folded per rank,
  so rank arithmetic (neighbour computation, root tests) disappears at
  bind time and statically-known effects are allocated once and reused.
- **Flattened control flow.** ``if``/``while``/``for`` become jump
  targets; loop bookkeeping is a small stack of counters, not frames.
- **Snapshot templates.** Every effectful instruction carries the exact
  control-stack shape the reference interpreter would have at that
  point (including its lazily-unpopped exhausted frames), so
  :meth:`CompiledProcess.snapshot` rebuilds a bit-identical
  :class:`~repro.runtime.interpreter.ProcessSnapshot` in O(depth), and
  :meth:`CompiledProcess.restore` maps any snapshot back to a program
  counter through a precomputed static-key table.

The compiled backend is behaviourally indistinguishable from the
reference interpreter — same effects (including shared ``stmt`` AST
references), same error messages at the same execution points, same
evaluation order (``input()`` streams included), same snapshots — which
is enforced by ``tests/runtime/test_backend_differential.py``.

Bind-time errors never replace run-time errors: folding is attempted
opportunistically and abandoned on any failure (division by zero,
out-of-range constant endpoint, unknown builtin), leaving a closure
that raises the reference interpreter's exact error when — and only
when — the statement actually executes.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.lang import ast_nodes as ast
from repro.lang.builtins import BUILTINS, call_builtin
from repro.runtime.effects import (
    BcastRecvEffect,
    BcastSendEffect,
    CheckpointEffect,
    ComputeEffect,
    LocalEffect,
    RecvEffect,
    SendEffect,
)
from repro.runtime.inputs import InputProvider
from repro.runtime.interpreter import FrameState, ProcessSnapshot

#: Version of the lowering scheme. Bump on any change that could alter
#: compiled-program behaviour; cache keys (``campaign/cache.py``)
#: incorporate it so stale transforms can't be served across compiler
#: changes. 2: per-checkpoint register masks for pruned snapshots.
COMPILER_VERSION = 2

#: Register value marking a never-bound variable slot.
_UNBOUND = object()

#: ``_staged`` sentinel: nothing staged by :meth:`CompiledProcess.step_local`.
#: (``None`` itself is a legal staged value — it means "program finished".)
_NO_STAGE = object()

_EMPTY_TMPL: tuple = ()


def _tmpl_key(tmpl: tuple) -> tuple:
    """Static restore key of a snapshot template (node ids + indexes)."""
    parts = []
    for entry in tmpl:
        kind = entry[0]
        if kind == "block":
            parts.append(("b", entry[1].node_id, entry[2]))
        elif kind == "while":
            parts.append(("w", entry[1].node_id))
        else:
            parts.append(("f", entry[1].node_id))
    return tuple(parts)


def _frames_key(frames: tuple) -> tuple:
    """Static restore key of a snapshot's frame tuple."""
    parts = []
    for frame in frames:
        kind = frame.kind
        if kind == "block":
            parts.append(("b", frame.block.node_id, frame.index))
        elif kind == "while":
            parts.append(("w", frame.stmt.node_id))
        elif kind == "for":
            parts.append(("f", frame.stmt.node_id))
        else:
            raise SimulationError(f"corrupt frame kind {kind!r}")
    return tuple(parts)


_EFFECT_STMTS = (
    ast.Assign, ast.Pass, ast.Compute, ast.Send, ast.Recv, ast.Bcast,
    ast.Checkpoint,
)


class CompiledProgram:
    """The rank-independent lowering of one program.

    Holds the flat instruction descriptors (with jump targets resolved
    and jump chains threaded away), the symbol table, the per-effect
    snapshot templates, and the restore table. :meth:`bind` specialises
    it into a :class:`CompiledProcess` for one rank.
    """

    def __init__(self, program: ast.Program, n_processes: int) -> None:
        if n_processes < 1:
            raise SimulationError(
                f"need at least one process, got {n_processes}"
            )
        self.program = program
        self.nprocs = n_processes
        self.symtab: dict[str, int] = {}
        self.names: list[str] = []
        # Descriptors: mutable lists so jump targets can be patched.
        #   ["eff", stmt, tmpl, cont]
        #   ["branch", cond, then_pc, else_pc]
        #   ["jump", target]
        #   ["wenter", next_pc] / ["whead", stmt, body_pc, exit_pc]
        #   ["fenter", stmt, next_pc] / ["fhead", stmt, body_pc, exit_pc]
        self._descs: list[list] = []
        # Static frame key -> (resume pc, template).
        self._restore: dict[tuple, tuple[int, tuple]] = {}
        self.init_tmpl = (("block", program.body, 0),)

        for node in ast.walk(program):
            node_type = type(node)
            if node_type is ast.Name:
                self.ensure_slot(node.ident)
            elif node_type in (ast.Assign, ast.Recv, ast.Bcast):
                self.ensure_slot(node.target)
            elif node_type is ast.For:
                self.ensure_slot(node.var)

        self._lower_block(program.body, ())
        self._resolve()
        self.entry_pc = self._thread(0)
        self._restore[_tmpl_key(self.init_tmpl)] = (
            self.entry_pc, self.init_tmpl
        )
        self._restore[()] = (-1, _EMPTY_TMPL)
        # Checkpoint statement node_id -> register slots provably dead
        # there (installed by configure_pruning; empty = prune nothing).
        self.checkpoint_dead_slots: dict[int, frozenset[int]] = {}

    # -- pruned snapshots -------------------------------------------------------

    def configure_pruning(
        self, dead_sets: dict[int, frozenset[str]]
    ) -> None:
        """Translate per-checkpoint dead-*name* sets into register masks.

        *dead_sets* maps checkpoint statement ``node_id`` to the names
        :mod:`repro.attributes.liveness` proved dead there; the mask
        holds their register slots so :meth:`CompiledProcess.\
snapshot_pruned` zeroes by slot without per-capture name lookups.
        Names outside the symbol table are ignored (they can only come
        from a mismatched program, and an unknown name has no slot to
        prune). Shared by every bound rank, like the lowering itself.
        """
        masks: dict[int, frozenset[int]] = {}
        symtab = self.symtab
        for stmt_id, dead in dead_sets.items():
            slots = frozenset(
                symtab[name] for name in dead if name in symtab
            )
            if slots:
                masks[stmt_id] = slots
        self.checkpoint_dead_slots = masks

    # -- symbol table ----------------------------------------------------------

    def ensure_slot(self, name: str) -> int:
        """The register slot of *name* (allocated on first use)."""
        slot = self.symtab.get(name)
        if slot is None:
            slot = len(self.names)
            self.symtab[name] = slot
            self.names.append(name)
        return slot

    # -- diagnostics -----------------------------------------------------------

    @property
    def lowering_stats(self) -> dict[str, int]:
        """Deterministic size counters for the ``compile.lower`` span."""
        return {
            "instructions": len(self._descs),
            "slots": len(self.names),
            "restore_keys": len(self._restore),
        }

    # -- lowering --------------------------------------------------------------

    def _emit(self, desc: list) -> int:
        self._descs.append(desc)
        return len(self._descs) - 1

    def _lower_block(self, block: ast.Block, ctx: tuple) -> None:
        for position, stmt in enumerate(block.statements):
            entry = ("block", block, position + 1)
            stmt_type = type(stmt)
            if stmt_type is ast.If:
                branch = self._emit(["branch", stmt.cond, None, None])
                self._descs[branch][2] = len(self._descs)
                self._lower_block(stmt.then_block, ctx + (entry,))
                jump = self._emit(["jump", None])
                self._descs[branch][3] = len(self._descs)
                self._lower_block(stmt.else_block, ctx + (entry,))
                self._descs[jump][1] = len(self._descs)
            elif stmt_type is ast.While:
                self._emit(["wenter", None])
                head = self._emit(["whead", stmt, None, None])
                self._descs[head][2] = len(self._descs)
                self._lower_block(
                    stmt.body, ctx + (entry, ("while", stmt))
                )
                self._emit(["jump", head])
                self._descs[head][3] = len(self._descs)
            elif stmt_type is ast.For:
                self._emit(["fenter", stmt, None])
                head = self._emit(["fhead", stmt, None, None])
                self._descs[head][2] = len(self._descs)
                self._lower_block(
                    stmt.body, ctx + (entry, ("for", stmt))
                )
                self._emit(["jump", head])
                self._descs[head][3] = len(self._descs)
            else:
                # Effectful (or unknown) statement: one instruction, one
                # snapshot template describing the reference stack —
                # enclosing frames plus this block at position+1.
                tmpl = ctx + (entry,)
                self._emit(["eff", stmt, tmpl, None])

    def _thread(self, pc: int) -> int:
        """Resolve *pc* through jump chains to a real instruction."""
        descs = self._descs
        total = len(descs)
        hops = 0
        while 0 <= pc < total:
            desc = descs[pc]
            if desc[0] != "jump":
                return pc
            pc = desc[1]
            hops += 1
            if hops > total:
                raise SimulationError("jump cycle in lowered program")
        return -1

    def _resolve(self) -> None:
        """Thread every control target and register the restore table."""
        for pc, desc in enumerate(self._descs):
            kind = desc[0]
            if kind == "eff":
                cont = self._thread(pc + 1)
                desc[3] = cont
                key = _tmpl_key(desc[2])
                existing = self._restore.get(key)
                if existing is not None and existing[0] != cont:
                    raise SimulationError(
                        "ambiguous control snapshot: two statements share "
                        f"frame coordinates {key!r} (duplicated node ids?)"
                    )
                self._restore[key] = (cont, desc[2])
            elif kind == "branch":
                desc[2] = self._thread(desc[2])
                desc[3] = self._thread(desc[3])
            elif kind in ("whead", "fhead"):
                desc[2] = self._thread(desc[2])
                desc[3] = self._thread(desc[3])
            elif kind == "wenter":
                desc[1] = self._thread(pc + 1)
            elif kind == "fenter":
                desc[2] = self._thread(pc + 1)

    # -- binding ---------------------------------------------------------------

    def bind(
        self,
        rank: int,
        params: dict[str, int] | None = None,
        inputs: InputProvider | None = None,
    ) -> "CompiledProcess":
        """Specialise this program for one rank."""
        return CompiledProcess(self, rank, params=params, inputs=inputs)


def compile_program(program: ast.Program, n_processes: int) -> CompiledProgram:
    """Lower *program* for an ``n_processes``-rank simulation."""
    return CompiledProgram(program, n_processes)


class CompiledProcess:
    """One rank's pre-bound closure program.

    Drop-in replacement for
    :class:`~repro.runtime.interpreter.ProcessInterpreter`: same driving
    protocol (``step``/``deliver``), same snapshot/restore contract,
    same attribute surface (``env``, ``checkpoint_count``, ``finished``,
    ``awaiting_delivery``), bit-identical behaviour.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        rank: int,
        params: dict[str, int] | None = None,
        inputs: InputProvider | None = None,
    ) -> None:
        nprocs = compiled.nprocs
        if not 0 <= rank < nprocs:
            raise SimulationError(
                f"rank {rank} out of range for {nprocs} processes"
            )
        self.compiled = compiled
        self.program = compiled.program
        self.rank = rank
        self.nprocs = nprocs
        self.inputs = inputs if inputs is not None else InputProvider()
        self.checkpoint_count = 0
        for name in (params or {}):
            compiled.ensure_slot(name)
        self._names = compiled.names
        self._symtab = compiled.symtab
        self._regs: list = [_UNBOUND] * len(compiled.names)
        self._order: list[int] = []
        for name, value in (params or {}).items():
            slot = compiled.symtab[name]
            self._regs[slot] = value
            self._order.append(slot)
        self._loops: list[list[int]] = []
        self._pending: tuple[int, str] | None = None
        self._staged = _NO_STAGE
        self._pc = compiled.entry_pc
        self._tmpl = compiled.init_tmpl
        self._code = self._build_code()

    # -- state queries --------------------------------------------------------

    @property
    def env(self) -> dict[str, int]:
        """The variable environment, in reference insertion order."""
        names = self._names
        regs = self._regs
        return {names[slot]: regs[slot] for slot in self._order}

    @property
    def finished(self) -> bool:
        """True once the program has run to completion."""
        return self._pc < 0 and not self._tmpl

    @property
    def awaiting_delivery(self) -> bool:
        """True while blocked at a receive awaiting deliver()."""
        return self._pending is not None

    @property
    def pending_recv(self) -> str | None:
        """Name of the variable awaiting a delivery, if any."""
        pending = self._pending
        return None if pending is None else pending[1]

    # -- snapshot / restore -----------------------------------------------------

    def snapshot(self) -> ProcessSnapshot:
        """Capture current state (legal even while blocked at a recv)."""
        frames = []
        loops = self._loops
        loop_index = 0
        for entry in self._tmpl:
            kind = entry[0]
            if kind == "block":
                frames.append(
                    FrameState("block", entry[1], entry[2], None, 0, 0)
                )
            elif kind == "while":
                trip = loops[loop_index][0]
                loop_index += 1
                frames.append(
                    FrameState("while", None, 0, entry[1], 0, trip)
                )
            else:
                remaining, trip = loops[loop_index]
                loop_index += 1
                frames.append(
                    FrameState("for", None, 0, entry[1], remaining, trip)
                )
        pending = self._pending
        names = self._names
        regs = self._regs
        # Built through __dict__ (see the engine's trace events): one
        # snapshot per checkpoint, and the generated frozen __init__
        # costs ~3x this path.
        snap = ProcessSnapshot.__new__(ProcessSnapshot)
        snap.__dict__.update(
            env={names[slot]: regs[slot] for slot in self._order},
            frames=tuple(frames),
            checkpoint_count=self.checkpoint_count,
            input_counters=self.inputs.snapshot(self.rank),
            pending_recv=None if pending is None else pending[1],
        )
        return snap

    def configure_pruning(
        self, dead_sets: dict[int, frozenset[str]]
    ) -> None:
        """Install pruning masks on the shared lowering (idempotent)."""
        self.compiled.configure_pruning(dead_sets)

    def snapshot_pruned(self, stmt_id: int | None) -> ProcessSnapshot:
        """Snapshot with dead register slots zeroed for *stmt_id*.

        Same contract as the reference interpreter's ``snapshot_pruned``:
        every bound slot keeps its entry and insertion position, but
        slots in the checkpoint's precomputed dead mask store a
        deterministic 0. Falls back to a plain snapshot when no mask is
        installed for this statement.
        """
        mask = self.compiled.checkpoint_dead_slots.get(stmt_id)
        snap = self.snapshot()
        if mask:
            names = self._names
            regs = self._regs
            snap.__dict__["env"] = {
                names[slot]: (0 if slot in mask else regs[slot])
                for slot in self._order
            }
        return snap

    def restore(self, snap: ProcessSnapshot) -> None:
        """Rewind to *snap* (rollback or restart after a failure)."""
        entry = self.compiled._restore.get(_frames_key(snap.frames))
        if entry is None:
            raise SimulationError(
                "snapshot does not correspond to any control point of "
                "the compiled program"
            )
        self._pc, self._tmpl = entry
        regs = self._regs
        for slot in range(len(regs)):
            regs[slot] = _UNBOUND
        order = self._order
        order.clear()
        symtab = self._symtab
        for name, value in snap.env.items():
            slot = symtab.get(name)
            if slot is None:
                raise SimulationError(
                    f"snapshot variable {name!r} is unknown to the "
                    "compiled program"
                )
            regs[slot] = value
            order.append(slot)
        loops = self._loops
        loops.clear()
        for frame in snap.frames:
            if frame.kind == "while":
                loops.append([frame.trip])
            elif frame.kind == "for":
                loops.append([frame.remaining, frame.trip])
        self.checkpoint_count = snap.checkpoint_count
        self.inputs.restore(self.rank, dict(snap.input_counters))
        name = snap.pending_recv
        self._pending = None if name is None else (symtab[name], name)
        self._staged = _NO_STAGE

    # -- execution ----------------------------------------------------------------

    def step(self):
        """Advance to the next effect; ``None`` when the program is done.

        Raises if called while a receive is awaiting its delivery.
        """
        staged = self._staged
        if staged is not _NO_STAGE:
            # step_local() already executed the statement and staged its
            # effect (possibly None for "finished"); hand it over without
            # re-executing anything. The pending check is skipped on
            # purpose: a staged RecvEffect has already set _pending.
            self._staged = _NO_STAGE
            return staged
        if self._pending is not None:
            raise SimulationError("step() called while awaiting a delivery")
        pc = self._pc
        if pc < 0:
            # Finished (or an empty program finishing its first step):
            # the reference interpreter pops exhausted frames lazily, so
            # the control stack empties only now.
            self._tmpl = _EMPTY_TMPL
            self._loops.clear()
            return None
        code = self._code
        while True:
            result = code[pc]()
            if result.__class__ is int:
                pc = result
                if pc < 0:
                    self._pc = -1
                    self._tmpl = _EMPTY_TMPL
                    self._loops.clear()
                    return None
            else:
                self._pc = result[0]
                self._tmpl = result[2]
                return result[1]

    def step_local(self):
        """Execute the next statement only if it yields a ``LocalEffect``.

        Engine fast path: returns True when one local statement ran (the
        caller owns the clock/step accounting the normal
        ``step()``/``_perform`` pair would have done), False when the
        next effect is anything else — in that case the statement has
        still been executed and its effect is *staged*, to be returned
        by the next ``step()`` call. Either way the statement executes
        exactly once, so the effect stream is unchanged.
        """
        if self._staged is not _NO_STAGE or self._pending is not None:
            return False
        pc = self._pc
        if pc < 0:
            return False
        code = self._code
        while True:
            result = code[pc]()
            if result.__class__ is int:
                pc = result
                if pc < 0:
                    self._pc = -1
                    self._tmpl = _EMPTY_TMPL
                    self._loops.clear()
                    self._staged = None
                    return False
            else:
                self._pc = result[0]
                self._tmpl = result[2]
                effect = result[1]
                if effect.__class__ is LocalEffect:
                    return True
                self._staged = effect
                return False

    def deliver(self, value: int) -> None:
        """Complete a pending receive with *value*."""
        pending = self._pending
        if pending is None:
            raise SimulationError("deliver() without a pending receive")
        slot = pending[0]
        regs = self._regs
        if regs[slot] is _UNBOUND:
            self._order.append(slot)
        regs[slot] = value
        self._pending = None

    # -- expression compilation -------------------------------------------------
    #
    # _compile_expr returns (is_const, value_or_closure). Folding is
    # opportunistic: anything that cannot be proven to evaluate without
    # error (or that has input() side effects) stays a closure, so
    # run-time errors fire exactly where the reference interpreter's
    # would.

    def _thunk(self, const: bool, value):
        """A zero-argument callable for a compiled expression."""
        if not const:
            return value
        return lambda: value

    def _compile_expr(self, expr):
        expr_type = type(expr)
        if expr_type is ast.Const:
            return True, expr.value
        if expr_type is ast.MyRank:
            return True, self.rank
        if expr_type is ast.NProcs:
            return True, self.nprocs
        if expr_type is ast.Name:
            slot = self.compiled.ensure_slot(expr.ident)
            if slot >= len(self._regs):
                self._regs.extend(
                    [_UNBOUND] * (len(self.compiled.names) - len(self._regs))
                )
            regs = self._regs
            rank, ident, line = self.rank, expr.ident, expr.line

            def read_name():
                value = regs[slot]
                if value is _UNBOUND:
                    raise SimulationError(
                        f"P{rank}: unbound variable {ident!r} at line {line}"
                    )
                return value

            return False, read_name
        if expr_type is ast.InputData:
            inputs, label, rank = self.inputs, expr.label, self.rank
            return False, lambda: inputs.value(label, rank)
        if expr_type is ast.UnaryOp:
            const, operand = self._compile_expr(expr.operand)
            if expr.op == "-":
                if const:
                    return True, -operand
                return False, lambda: -operand()
            # The reference interpreter treats every non-"-" unary op as
            # logical not; mirror that exactly.
            if const:
                return True, int(not operand)
            return False, lambda: int(not operand())
        if expr_type is ast.Call:
            return self._compile_call(expr)
        if expr_type is ast.BinOp:
            return self._compile_binop(expr)
        # Unknown expression node: the reference raises only when the
        # expression is actually evaluated.
        message = f"unknown expression {expr!r}"

        def unknown_expr():
            raise SimulationError(message)

        return False, unknown_expr

    def _compile_call(self, expr: ast.Call):
        parts = [self._compile_expr(arg) for arg in expr.args]
        func = BUILTINS.get(expr.func)
        if func is not None and all(const for const, _ in parts):
            try:
                return True, int(func(*[value for _, value in parts]))
            except Exception:
                pass  # fold failed: evaluate (and fail) at run time
        thunks = [self._thunk(const, value) for const, value in parts]
        if func is None:
            # Unknown builtin: args still evaluate first (input() side
            # effects), then call_builtin raises the reference error.
            name = expr.func

            def unknown_builtin():
                return call_builtin(name, [thunk() for thunk in thunks])

            return False, unknown_builtin
        if len(thunks) == 1:
            arg0 = thunks[0]
            return False, lambda: int(func(arg0()))
        if len(thunks) == 2:
            arg0, arg1 = thunks
            return False, lambda: int(func(arg0(), arg1()))
        return False, lambda: int(func(*[thunk() for thunk in thunks]))

    def _compile_binop(self, expr: ast.BinOp):
        op = expr.op
        left_const, left = self._compile_expr(expr.left)
        if op == "and":
            if left_const:
                # Constant truthy left: the expression IS the right
                # side; constant falsy left: right never evaluates.
                return self._compile_expr(expr.right) if left != 0 \
                    else (True, 0)
            right = self._thunk(*self._compile_expr(expr.right))
            return False, lambda: right() if left() != 0 else 0
        if op == "or":
            if left_const:
                return (True, left) if left != 0 \
                    else self._compile_expr(expr.right)
            right = self._thunk(*self._compile_expr(expr.right))

            def lazy_or():
                value = left()
                return value if value != 0 else right()

            return False, lazy_or
        right_const, right = self._compile_expr(expr.right)
        if left_const and right_const:
            try:
                return True, self._fold_binop(op, left, right, expr.line)
            except SimulationError:
                pass  # e.g. constant division by zero: raise at run time
        left_fn = self._thunk(left_const, left)
        right_fn = self._thunk(right_const, right)
        if op == "+":
            return False, lambda: left_fn() + right_fn()
        if op == "-":
            return False, lambda: left_fn() - right_fn()
        if op == "*":
            return False, lambda: left_fn() * right_fn()
        if op in ("/", "//"):
            rank, line = self.rank, expr.line

            def divide():
                divisor = right_fn()
                if divisor == 0:
                    raise SimulationError(
                        f"P{rank}: division by zero at line {line}"
                    )
                return left_fn() // divisor

            return False, divide
        if op == "%":
            rank, line = self.rank, expr.line

            def modulo():
                divisor = right_fn()
                if divisor == 0:
                    raise SimulationError(
                        f"P{rank}: modulo by zero at line {line}"
                    )
                return left_fn() % divisor

            return False, modulo
        if op == "==":
            return False, lambda: int(left_fn() == right_fn())
        if op == "!=":
            return False, lambda: int(left_fn() != right_fn())
        if op == "<":
            return False, lambda: int(left_fn() < right_fn())
        if op == "<=":
            return False, lambda: int(left_fn() <= right_fn())
        if op == ">":
            return False, lambda: int(left_fn() > right_fn())
        if op == ">=":
            return False, lambda: int(left_fn() >= right_fn())
        message = f"unknown operator {op!r}"

        def unknown_op():
            raise SimulationError(message)

        return False, unknown_op

    def _fold_binop(self, op: str, left: int, right: int, line: int) -> int:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op in ("/", "//"):
            if right == 0:
                raise SimulationError(
                    f"P{self.rank}: division by zero at line {line}"
                )
            return left // right
        if op == "%":
            if right == 0:
                raise SimulationError(
                    f"P{self.rank}: modulo by zero at line {line}"
                )
            return left % right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        raise SimulationError(f"unknown operator {op!r}")

    # -- instruction binding ----------------------------------------------------

    def _raiser(self, message: str):
        def raise_error():
            raise SimulationError(message)

        return raise_error

    def _endpoint_error(self, value: int, line: int) -> str:
        return (
            f"P{self.rank}: endpoint rank {value} out of range "
            f"[0, {self.nprocs}) at line {line}"
        )

    def _build_code(self) -> list:
        code = []
        for desc in self.compiled._descs:
            kind = desc[0]
            if kind == "eff":
                code.append(self._bind_effect(desc[1], desc[2], desc[3]))
            elif kind == "branch":
                const, cond = self._compile_expr(desc[1])
                then_pc, else_pc = desc[2], desc[3]
                if const:
                    target = then_pc if cond != 0 else else_pc
                    code.append(lambda target=target: target)
                else:
                    code.append(
                        lambda cond=cond, t=then_pc, e=else_pc:
                            t if cond() != 0 else e
                    )
            elif kind == "jump":
                # Unreachable after threading; a guard, not a hot path.
                code.append(self._raiser("jump instruction executed"))
            elif kind == "wenter":
                loops, next_pc = self._loops, desc[1]

                def while_enter(loops=loops, next_pc=next_pc):
                    loops.append([0])
                    return next_pc

                code.append(while_enter)
            elif kind == "whead":
                code.append(self._bind_while_head(desc[1], desc[2], desc[3]))
            elif kind == "fenter":
                const, count = self._compile_expr(desc[1].count)
                loops, next_pc = self._loops, desc[2]
                if const:
                    initial = count if count > 0 else 0

                    def for_enter_const(
                        loops=loops, initial=initial, next_pc=next_pc
                    ):
                        loops.append([initial, 0])
                        return next_pc

                    code.append(for_enter_const)
                else:

                    def for_enter(
                        loops=loops, count=count, next_pc=next_pc
                    ):
                        value = count()
                        loops.append([value if value > 0 else 0, 0])
                        return next_pc

                    code.append(for_enter)
            elif kind == "fhead":
                code.append(self._bind_for_head(desc[1], desc[2], desc[3]))
            else:
                raise SimulationError(f"unknown instruction {kind!r}")
        return code

    def _bind_while_head(self, stmt: ast.While, body_pc: int, exit_pc: int):
        const, cond = self._compile_expr(stmt.cond)
        loops = self._loops
        if const:
            if cond != 0:

                def spin(loops=loops, body_pc=body_pc):
                    loops[-1][0] += 1
                    return body_pc

                return spin

            def exit_loop(loops=loops, exit_pc=exit_pc):
                loops.pop()
                return exit_pc

            return exit_loop

        def while_head(
            loops=loops, cond=cond, body_pc=body_pc, exit_pc=exit_pc
        ):
            if cond() != 0:
                loops[-1][0] += 1
                return body_pc
            loops.pop()
            return exit_pc

        return while_head

    def _bind_for_head(self, stmt: ast.For, body_pc: int, exit_pc: int):
        slot = self.compiled.ensure_slot(stmt.var)
        loops, regs, order = self._loops, self._regs, self._order

        def for_head(
            loops=loops, regs=regs, order=order, slot=slot,
            body_pc=body_pc, exit_pc=exit_pc,
        ):
            top = loops[-1]
            remaining = top[0]
            if remaining > 0:
                trip = top[1]
                if regs[slot] is _UNBOUND:
                    order.append(slot)
                regs[slot] = trip
                top[0] = remaining - 1
                top[1] = trip + 1
                return body_pc
            loops.pop()
            return exit_pc

        return for_head

    def _bind_effect(self, stmt, tmpl: tuple, cont: int):
        stmt_type = type(stmt)
        regs, order = self._regs, self._order
        if stmt_type is ast.Assign:
            slot = self.compiled.ensure_slot(stmt.target)
            const, value = self._compile_expr(stmt.value)
            done = (cont, LocalEffect(description=stmt.target), tmpl)
            if const:

                def assign_const(
                    regs=regs, order=order, slot=slot, value=value, done=done
                ):
                    if regs[slot] is _UNBOUND:
                        order.append(slot)
                    regs[slot] = value
                    return done

                return assign_const

            def assign(
                regs=regs, order=order, slot=slot, value=value, done=done
            ):
                result = value()
                if regs[slot] is _UNBOUND:
                    order.append(slot)
                regs[slot] = result
                return done

            return assign
        if stmt_type is ast.Pass:
            done = (cont, LocalEffect(description="pass"), tmpl)
            return lambda done=done: done
        if stmt_type is ast.Compute:
            const, cost = self._compile_expr(stmt.cost)
            if const:
                done = (cont, ComputeEffect(cost=float(cost)), tmpl)
                return lambda done=done: done
            return lambda cost=cost, cont=cont, tmpl=tmpl: (
                cont, ComputeEffect(cost=float(cost())), tmpl
            )
        if stmt_type is ast.Send:
            return self._bind_send(stmt, tmpl, cont)
        if stmt_type is ast.Recv:
            return self._bind_recv(stmt, tmpl, cont)
        if stmt_type is ast.Bcast:
            return self._bind_bcast(stmt, tmpl, cont)
        if stmt_type is ast.Checkpoint:
            done = (cont, CheckpointEffect(stmt=stmt), tmpl)

            def checkpoint(proc=self, done=done):
                proc.checkpoint_count += 1
                return done

            return checkpoint
        return self._raiser(f"unknown statement {stmt!r}")

    def _bind_send(self, stmt: ast.Send, tmpl: tuple, cont: int):
        dest_const, dest = self._compile_expr(stmt.dest)
        if dest_const and not 0 <= dest < self.nprocs:
            return self._raiser(self._endpoint_error(dest, stmt.line))
        value_const, value = self._compile_expr(stmt.value)
        if dest_const:
            if value_const:
                done = (
                    cont,
                    SendEffect(dest=dest, value=value, stmt=stmt),
                    tmpl,
                )
                return lambda done=done: done
            return lambda dest=dest, value=value, stmt=stmt, \
                cont=cont, tmpl=tmpl: (
                    cont,
                    SendEffect(dest=dest, value=value(), stmt=stmt),
                    tmpl,
                )
        # Dynamic destination: evaluate, range-check, THEN evaluate the
        # value — the reference order, observable through input().
        value_fn = self._thunk(value_const, value)
        nprocs, rank, line = self.nprocs, self.rank, stmt.line

        def send(
            dest=dest, value_fn=value_fn, stmt=stmt, cont=cont, tmpl=tmpl,
            nprocs=nprocs, rank=rank, line=line,
        ):
            target = dest()
            if not 0 <= target < nprocs:
                raise SimulationError(
                    f"P{rank}: endpoint rank {target} out of range "
                    f"[0, {nprocs}) at line {line}"
                )
            return (
                cont,
                SendEffect(dest=target, value=value_fn(), stmt=stmt),
                tmpl,
            )

        return send

    def _bind_recv(self, stmt: ast.Recv, tmpl: tuple, cont: int):
        source_const, source = self._compile_expr(stmt.source)
        if source_const and not 0 <= source < self.nprocs:
            return self._raiser(self._endpoint_error(source, stmt.line))
        slot = self.compiled.ensure_slot(stmt.target)
        pending = (slot, stmt.target)
        if source_const:
            done = (
                cont,
                RecvEffect(source=source, target=stmt.target, stmt=stmt),
                tmpl,
            )

            def recv_const(proc=self, pending=pending, done=done):
                proc._pending = pending
                return done

            return recv_const
        nprocs, rank, line = self.nprocs, self.rank, stmt.line

        def recv(
            proc=self, source=source, pending=pending, stmt=stmt,
            cont=cont, tmpl=tmpl, nprocs=nprocs, rank=rank, line=line,
        ):
            origin = source()
            if not 0 <= origin < nprocs:
                raise SimulationError(
                    f"P{rank}: endpoint rank {origin} out of range "
                    f"[0, {nprocs}) at line {line}"
                )
            proc._pending = pending
            return (
                cont,
                RecvEffect(source=origin, target=stmt.target, stmt=stmt),
                tmpl,
            )

        return recv

    def _bind_bcast(self, stmt: ast.Bcast, tmpl: tuple, cont: int):
        root_const, root = self._compile_expr(stmt.root)
        if root_const and not 0 <= root < self.nprocs:
            return self._raiser(self._endpoint_error(root, stmt.line))
        slot = self.compiled.ensure_slot(stmt.target)
        regs, order = self._regs, self._order
        pending = (slot, stmt.target)
        if root_const:
            if root == self.rank:
                value_const, value = self._compile_expr(stmt.value)
                if value_const:
                    done = (
                        cont,
                        BcastSendEffect(value=value, stmt=stmt),
                        tmpl,
                    )

                    def bcast_root_const(
                        regs=regs, order=order, slot=slot, value=value,
                        done=done,
                    ):
                        if regs[slot] is _UNBOUND:
                            order.append(slot)
                        regs[slot] = value
                        return done

                    return bcast_root_const

                def bcast_root(
                    regs=regs, order=order, slot=slot, value=value,
                    stmt=stmt, cont=cont, tmpl=tmpl,
                ):
                    result = value()
                    if regs[slot] is _UNBOUND:
                        order.append(slot)
                    regs[slot] = result
                    return (
                        cont,
                        BcastSendEffect(value=result, stmt=stmt),
                        tmpl,
                    )

                return bcast_root
            done = (
                cont,
                BcastRecvEffect(root=root, target=stmt.target, stmt=stmt),
                tmpl,
            )

            def bcast_leaf(proc=self, pending=pending, done=done):
                proc._pending = pending
                return done

            return bcast_leaf
        value_const, value = self._compile_expr(stmt.value)
        value_fn = self._thunk(value_const, value)
        nprocs, rank, line = self.nprocs, self.rank, stmt.line

        def bcast(
            proc=self, root=root, value_fn=value_fn, regs=regs, order=order,
            slot=slot, pending=pending, stmt=stmt, cont=cont, tmpl=tmpl,
            nprocs=nprocs, rank=rank, line=line,
        ):
            origin = root()
            if not 0 <= origin < nprocs:
                raise SimulationError(
                    f"P{rank}: endpoint rank {origin} out of range "
                    f"[0, {nprocs}) at line {line}"
                )
            if origin == rank:
                result = value_fn()
                if regs[slot] is _UNBOUND:
                    order.append(slot)
                regs[slot] = result
                return (
                    cont,
                    BcastSendEffect(value=result, stmt=stmt),
                    tmpl,
                )
            proc._pending = pending
            return (
                cont,
                BcastRecvEffect(root=origin, target=stmt.target, stmt=stmt),
                tmpl,
            )

        return bcast
