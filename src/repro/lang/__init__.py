"""MiniMP: a small SPMD message-passing language.

MiniMP is the concrete "application level" this reproduction analyses.
It is deliberately small — the paper's offline analysis only consumes
control flow (``if``/``while``/``for``), message statements
(``send``/``recv``/``bcast``), ``checkpoint`` statements, and branch
conditions over process IDs — but it is a real language with a lexer, a
recursive-descent parser, an AST, and a pretty-printer, so the analysis
pipeline operates on source code exactly as the paper prescribes.

Typical use::

    from repro.lang import parse
    program = parse(source_text)

The :mod:`repro.lang.programs` module ships the canonical programs from
the paper (the Jacobi solver of Figure 1, the odd/even variant of
Figure 2) plus a library of realistic SPMD workloads.
"""

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Block,
    Bcast,
    Call,
    Checkpoint,
    Compute,
    Const,
    Expr,
    For,
    If,
    InputData,
    MyRank,
    NProcs,
    Name,
    Pass,
    Program,
    Recv,
    Send,
    Stmt,
    UnaryOp,
    While,
    walk,
)
from repro.lang.parser import parse
from repro.lang.printer import to_source
from repro.lang.tokens import Token, TokenKind, tokenize

# Imported last: repro.lang.compile pulls in repro.runtime modules that
# themselves import repro.lang submodules, which is safe only once the
# names above are bound on this (still-initialising) package.
from repro.lang.compile import (  # noqa: E402
    COMPILER_VERSION,
    CompiledProcess,
    CompiledProgram,
    compile_program,
)

__all__ = [
    "COMPILER_VERSION",
    "CompiledProcess",
    "CompiledProgram",
    "compile_program",
    "Assign",
    "BinOp",
    "Block",
    "Bcast",
    "Call",
    "Checkpoint",
    "Compute",
    "Const",
    "Expr",
    "For",
    "If",
    "InputData",
    "MyRank",
    "NProcs",
    "Name",
    "Pass",
    "Program",
    "Recv",
    "Send",
    "Stmt",
    "Token",
    "TokenKind",
    "UnaryOp",
    "While",
    "parse",
    "to_source",
    "tokenize",
    "walk",
]
