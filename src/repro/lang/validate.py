"""Static program validation (a lint front end for MiniMP).

Catches the mistakes that would otherwise surface as runtime
:class:`~repro.errors.SimulationError` or as confusing Phase II/III
failures, and reports them all at once with line numbers:

- **use-before-assignment** of variables (modulo parameters the caller
  declares);
- **definitely-out-of-range endpoints** (e.g. ``send(nprocs, ...)`` or
  a negative constant destination) — checked conservatively: a
  diagnostic is raised only when the endpoint is out of range for
  *every* system size in the universe;
- **unbalanced checkpoint placement** (paths with differing checkpoint
  counts), reported as a warning since Phase I/III can repair it;
- **self-sends** (``send(myrank, ...)``), which deadlock under blocking
  receive semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attributes.expressions import abstract_eval
from repro.lang import ast_nodes as ast


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding."""

    severity: str  # "error" | "warning"
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: line {self.line}: {self.message}"


def validate_program(
    program: ast.Program,
    params: tuple[str, ...] = ("steps",),
    universe_sizes: tuple[int, ...] = tuple(range(2, 18)),
) -> list[Diagnostic]:
    """Validate *program*; returns all diagnostics (empty = clean).

    *params* names the run-time parameters considered pre-bound (free
    names outside this set are use-before-assignment errors).
    """
    diagnostics: list[Diagnostic] = []
    _check_bindings(program.body, set(params), diagnostics)
    _check_endpoints(program, universe_sizes, diagnostics)
    _check_balance(program, diagnostics)
    diagnostics.sort(key=lambda d: (d.line, d.message))
    return diagnostics


# ---------------------------------------------------------------------------
# Use-before-assignment
# ---------------------------------------------------------------------------


def _expr_names(expr: ast.Expr) -> list[tuple[str, int]]:
    return [
        (node.ident, node.line)
        for node in ast.walk(expr)
        if isinstance(node, ast.Name)
    ]


def _check_bindings(
    block: ast.Block, bound: set[str], diagnostics: list[Diagnostic]
) -> set[str]:
    """Flow-sensitive binding check; returns bindings live after *block*.

    Branch joins keep only names bound on **both** arms; loop bodies are
    analysed with their entry bindings (a name first bound inside the
    body counts as bound for later statements of the same iteration).
    """
    live = set(bound)
    for stmt in block.statements:
        for expr in _statement_exprs(stmt):
            for name, line in _expr_names(expr):
                if name not in live:
                    diagnostics.append(
                        Diagnostic(
                            "error",
                            line,
                            f"variable {name!r} may be used before assignment",
                        )
                    )
        if isinstance(stmt, (ast.Assign, ast.Recv, ast.Bcast)):
            live.add(stmt.target)
        elif isinstance(stmt, ast.If):
            then_live = _check_bindings(stmt.then_block, live, diagnostics)
            else_live = _check_bindings(stmt.else_block, live, diagnostics)
            live = then_live & else_live
        elif isinstance(stmt, ast.While):
            _check_bindings(stmt.body, live, diagnostics)
        elif isinstance(stmt, ast.For):
            _check_bindings(stmt.body, live | {stmt.var}, diagnostics)
    return live


def _statement_exprs(stmt: ast.Stmt) -> list[ast.Expr]:
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.Send):
        return [stmt.dest, stmt.value]
    if isinstance(stmt, ast.Recv):
        return [stmt.source]
    if isinstance(stmt, ast.Bcast):
        return [stmt.root, stmt.value]
    if isinstance(stmt, ast.Compute):
        return [stmt.cost]
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.cond]
    if isinstance(stmt, ast.For):
        return [stmt.count]
    return []


# ---------------------------------------------------------------------------
# Endpoint range and self-send checks
# ---------------------------------------------------------------------------


def _check_endpoints(
    program: ast.Program,
    universe_sizes: tuple[int, ...],
    diagnostics: list[Diagnostic],
) -> None:
    for node in ast.walk(program):
        if isinstance(node, ast.Send):
            _check_endpoint(node.dest, node.line, "destination",
                            universe_sizes, diagnostics)
            _check_self_send(node, universe_sizes, diagnostics)
        elif isinstance(node, ast.Recv):
            _check_endpoint(node.source, node.line, "source",
                            universe_sizes, diagnostics)
        elif isinstance(node, ast.Bcast):
            _check_endpoint(node.root, node.line, "broadcast root",
                            universe_sizes, diagnostics)


def _check_endpoint(
    expr: ast.Expr,
    line: int,
    role: str,
    universe_sizes: tuple[int, ...],
    diagnostics: list[Diagnostic],
) -> None:
    """Flag endpoints out of range for EVERY rank in EVERY size."""
    ever_valid = False
    ever_known = False
    for nprocs in universe_sizes:
        for rank in range(nprocs):
            value = abstract_eval(expr, rank, nprocs)
            if value is None:
                return  # not statically decidable: no diagnostic
            ever_known = True
            if 0 <= value < nprocs:
                ever_valid = True
    if ever_known and not ever_valid:
        diagnostics.append(
            Diagnostic(
                "error",
                line,
                f"{role} is out of range [0, nprocs) for every system size",
            )
        )


def _check_self_send(
    node: ast.Send,
    universe_sizes: tuple[int, ...],
    diagnostics: list[Diagnostic],
) -> None:
    """Flag sends whose destination always equals the sender's rank."""
    always_self = True
    ever_known = False
    for nprocs in universe_sizes:
        for rank in range(nprocs):
            value = abstract_eval(node.dest, rank, nprocs)
            if value is None:
                return
            ever_known = True
            if value != rank:
                always_self = False
    if ever_known and always_self:
        diagnostics.append(
            Diagnostic(
                "error",
                node.line,
                "send targets the sender itself (deadlocks under "
                "blocking receives)",
            )
        )


# ---------------------------------------------------------------------------
# Checkpoint balance
# ---------------------------------------------------------------------------


def _check_balance(
    program: ast.Program, diagnostics: list[Diagnostic]
) -> None:
    from repro.cfg.builder import build_cfg
    from repro.cfg.paths import enumerate_checkpoints

    enumeration = enumerate_checkpoints(build_cfg(program))
    if not enumeration.balanced:
        counts = sorted({len(seq) for seq in enumeration.per_path})
        diagnostics.append(
            Diagnostic(
                "warning",
                program.line,
                "checkpoint counts differ across paths "
                f"{counts}; straight cuts are undefined until Phase I/III "
                "balance them",
            )
        )
