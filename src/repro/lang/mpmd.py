"""MPMD support (paper §3: "if all the files of the source code of a
message-passing program are presented for offline analysis, our
approach works for MPMD as well").

A *Multiple Program Multiple Data* application assigns different source
programs to different rank ranges (e.g. a coordinator program on rank 0
and a worker program on ranks 1..n-1). We make the existing SPMD
pipeline handle MPMD by **synthesis**: the per-role programs are merged
into a single SPMD program whose top level dispatches on an
ID-dependent rank predicate::

    if <rank in role-0 ranks>:
        <role-0 body>
    else:
        if <rank in role-1 ranks>:
            <role-1 body>
        ...

Because the dispatch branches are ID-dependent, Phase II's attribute
machinery automatically confines each role's sends/receives to its rank
set, and Phases I/III apply unchanged. This is a faithful realisation
of the paper's claim: the offline analysis only ever needed *all* the
code plus rank attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LanguageError
from repro.lang import ast_nodes as ast


@dataclass(frozen=True)
class RankSet:
    """A set of ranks defined relative to the system size.

    ``kind``:

    - ``"exact"``: ranks listed in ``values``;
    - ``"range"``: ``lo <= rank`` and (if ``hi`` is not None)
      ``rank < hi``, where negative bounds count from ``nprocs``
      (-1 = nprocs-1);
    - ``"rest"``: every rank not claimed by another role (must be last).
    """

    kind: str
    values: tuple[int, ...] = ()
    lo: int = 0
    hi: int | None = None

    @classmethod
    def exact(cls, *ranks: int) -> "RankSet":
        if not ranks:
            raise LanguageError("exact rank set needs at least one rank")
        return cls(kind="exact", values=tuple(sorted(set(ranks))))

    @classmethod
    def range(cls, lo: int, hi: int | None = None) -> "RankSet":
        return cls(kind="range", lo=lo, hi=hi)

    @classmethod
    def rest(cls) -> "RankSet":
        return cls(kind="rest")

    def predicate(self) -> ast.Expr:
        """The MiniMP condition testing membership of ``myrank``."""
        if self.kind == "exact":
            expr: ast.Expr | None = None
            for rank in self.values:
                test = ast.BinOp(
                    op="==", left=ast.MyRank(), right=ast.Const(value=rank)
                )
                expr = test if expr is None else ast.BinOp(
                    op="or", left=expr, right=test
                )
            assert expr is not None
            return expr
        if self.kind == "range":
            low = ast.BinOp(
                op=">=", left=ast.MyRank(), right=_bound_expr(self.lo)
            )
            if self.hi is None:
                return low
            high = ast.BinOp(
                op="<", left=ast.MyRank(), right=_bound_expr(self.hi)
            )
            return ast.BinOp(op="and", left=low, right=high)
        raise LanguageError("the 'rest' rank set has no explicit predicate")

    def members(self, nprocs: int) -> frozenset[int]:
        """Concrete members for a system of *nprocs* processes."""
        if self.kind == "exact":
            return frozenset(r for r in self.values if 0 <= r < nprocs)
        if self.kind == "range":
            lo = self.lo if self.lo >= 0 else nprocs + self.lo
            hi = nprocs if self.hi is None else (
                self.hi if self.hi >= 0 else nprocs + self.hi
            )
            return frozenset(range(max(0, lo), min(nprocs, hi)))
        return frozenset(range(nprocs))  # refined by combine_mpmd


def _bound_expr(bound: int) -> ast.Expr:
    if bound >= 0:
        return ast.Const(value=bound)
    return ast.BinOp(
        op="-", left=ast.NProcs(), right=ast.Const(value=-bound)
    )


@dataclass(frozen=True)
class Role:
    """One MPMD role: a program and the ranks that run it."""

    program: ast.Program
    ranks: RankSet


def combine_mpmd(roles: list[Role], name: str = "mpmd") -> ast.Program:
    """Merge MPMD *roles* into one analysable SPMD program.

    Roles are tried in order; at most one ``rest`` role is allowed and
    it must come last. Role bodies are deep-copied, so the inputs stay
    usable. The result feeds directly into ``transform()`` /
    ``Simulation`` like any SPMD program.

    If the last role is explicit (no ``rest``), ranks outside every
    role fall through to a synthesized else branch padded with the
    per-path checkpoint count of the first role, so the combined CFG
    keeps the balance property Phases II/III require. (At run time no
    such rank exists in a correctly sized system; the padding is a
    static-analysis artifact, mirroring Phase I's "add/remove
    checkpoints to balance paths".)
    """
    if not roles:
        raise LanguageError("combine_mpmd needs at least one role")
    rest_roles = [r for r in roles if r.ranks.kind == "rest"]
    if len(rest_roles) > 1:
        raise LanguageError("at most one 'rest' role is allowed")
    if rest_roles and roles[-1].ranks.kind != "rest":
        raise LanguageError("the 'rest' role must come last")

    from repro.phases.insertion import _path_checkpoints

    pad_count = _path_checkpoints(roles[0].program.body)

    def build(remaining: list[Role]) -> list[ast.Stmt]:
        role = remaining[0]
        body = ast.clone(role.program.body)
        if len(remaining) == 1:
            if role.ranks.kind == "rest":
                return list(body.statements)
            # Last explicit role: guard it, and pad the fall-through so
            # every static path carries the same checkpoint count.
            padding = ast.Block(
                statements=[ast.Checkpoint() for _ in range(pad_count)]
            )
            return [
                ast.If(
                    cond=role.ranks.predicate(),
                    then_block=body,
                    else_block=padding,
                )
            ]
        return [
            ast.If(
                cond=role.ranks.predicate(),
                then_block=body,
                else_block=ast.Block(statements=build(remaining[1:])),
            )
        ]

    return ast.Program(name=name, body=ast.Block(statements=build(list(roles))))


def role_of_rank(roles: list[Role], rank: int, nprocs: int) -> int | None:
    """Index of the role *rank* executes, or None if unassigned."""
    claimed: set[int] = set()
    for position, role in enumerate(roles):
        if role.ranks.kind == "rest":
            members = frozenset(range(nprocs)) - claimed
        else:
            members = role.ranks.members(nprocs)
        if rank in members:
            return position
        claimed |= members
    return None
