"""Builtin functions callable from MiniMP programs.

Builtins are pure, deterministic integer functions. Determinism matters:
the paper assumes "different executions of the same program are
identical for the same input" (Section 2), and the empirical safety
validation replays programs, so every builtin must be a pure function
of its arguments.

``init``/``combine``/``relax`` stand in for the numerical kernels of the
paper's Jacobi example — the analysis never looks inside them, only at
their cost, so small integer mixers are a faithful substitute.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError

_MASK = (1 << 31) - 1


def _mix(*values: int) -> int:
    """Deterministic integer mixer (a small multiplicative hash)."""
    acc = 0x9E3779B9
    for value in values:
        acc = (acc ^ (value & _MASK)) * 0x85EBCA6B & _MASK
        acc ^= acc >> 13
    return acc & _MASK


def _init(*args: int) -> int:
    return _mix(0x12345678, *args)


def _combine(*args: int) -> int:
    return _mix(0x5EED, *args)


def _relax(*args: int) -> int:
    return _mix(0xFACE, *args)


BUILTINS: dict[str, Callable[..., int]] = {
    "min": lambda *args: min(args),
    "max": lambda *args: max(args),
    "abs": lambda x: abs(x),
    "init": _init,
    "combine": _combine,
    "relax": _relax,
}


def call_builtin(name: str, args: list[int]) -> int:
    """Evaluate builtin *name* on integer *args*.

    Raises :class:`~repro.errors.SimulationError` for unknown builtins so
    interpreter failures carry the library's error type.
    """
    try:
        func = BUILTINS[name]
    except KeyError:
        raise SimulationError(f"unknown builtin function {name!r}") from None
    return int(func(*args))
