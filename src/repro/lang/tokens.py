"""Lexer for MiniMP.

MiniMP uses Python-style significant indentation. The lexer converts
source text into a flat token stream including synthetic ``INDENT`` and
``DEDENT`` tokens, which keeps the parser a plain recursive-descent
parser with no layout logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexerError


class TokenKind(enum.Enum):
    """Lexical categories of MiniMP tokens."""

    NUMBER = "number"
    NAME = "name"
    KEYWORD = "keyword"
    OP = "op"
    NEWLINE = "newline"
    INDENT = "indent"
    DEDENT = "dedent"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "program",
        "if",
        "else",
        "elif",
        "while",
        "for",
        "in",
        "range",
        "send",
        "recv",
        "bcast",
        "checkpoint",
        "compute",
        "pass",
        "and",
        "or",
        "not",
        "myrank",
        "nprocs",
        "input",
        "True",
        "False",
    }
)

# Multi-character operators must be listed before their prefixes so the
# scanner prefers the longest match.
_OPERATORS = (
    "==",
    "!=",
    "<=",
    ">=",
    "//",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "(",
    ")",
    ",",
    ":",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.column})"


def _scan_line(text: str, line_no: int, start_col: int) -> list[Token]:
    """Scan the code portion of one physical line into tokens."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        col = start_col + i
        if ch in " \t":
            i += 1
            continue
        if ch == "#":
            break
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token(TokenKind.NUMBER, text[i:j], line_no, col))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.NAME
            tokens.append(Token(kind, word, line_no, col))
            i = j
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, line_no, col))
                i += len(op)
                break
        else:
            raise LexerError(f"unexpected character {ch!r}", line_no, col)
    return tokens


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniMP *source* into a token list ending with ``EOF``.

    Blank lines and comment-only lines are skipped; indentation changes
    produce ``INDENT``/``DEDENT`` tokens. Tabs count as a single space of
    indentation, so sources should indent with spaces (as all shipped
    programs do).
    """
    tokens: list[Token] = []
    indent_stack = [0]
    line_no = 0
    for raw_line in source.splitlines():
        line_no += 1
        stripped = raw_line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        indent = len(raw_line) - len(raw_line.lstrip(" \t"))
        if indent > indent_stack[-1]:
            indent_stack.append(indent)
            tokens.append(Token(TokenKind.INDENT, "", line_no, 0))
        else:
            while indent < indent_stack[-1]:
                indent_stack.pop()
                tokens.append(Token(TokenKind.DEDENT, "", line_no, 0))
            if indent != indent_stack[-1]:
                raise LexerError("inconsistent dedent", line_no, indent)
        line_tokens = _scan_line(raw_line.lstrip(" \t"), line_no, indent)
        if line_tokens:
            tokens.extend(line_tokens)
            tokens.append(Token(TokenKind.NEWLINE, "", line_no, len(raw_line)))
    while indent_stack[-1] > 0:
        indent_stack.pop()
        tokens.append(Token(TokenKind.DEDENT, "", line_no + 1, 0))
    tokens.append(Token(TokenKind.EOF, "", line_no + 1, 0))
    return tokens
