"""Recursive-descent parser for MiniMP.

The grammar (statements end at NEWLINE; suites are INDENT ... DEDENT)::

    program    := "program" NAME "(" ")" ":" suite
    suite      := NEWLINE INDENT stmt+ DEDENT
    stmt       := simple NEWLINE | if | while | for
    simple     := assign | send | checkpoint | compute | "pass"
    assign     := NAME "=" (expr | recv_call | bcast_call)
    recv_call  := "recv" "(" expr ")"
    bcast_call := "bcast" "(" expr "," expr ")"
    send       := "send" "(" expr "," expr ")"
    compute    := "compute" "(" expr ")"
    if         := "if" expr ":" suite ("elif" expr ":" suite)*
                  ("else" ":" suite)?
    while      := "while" expr ":" suite
    for        := "for" NAME "in" "range" "(" expr ")" ":" suite

    expr       := or_expr
    or_expr    := and_expr ("or" and_expr)*
    and_expr   := not_expr ("and" not_expr)*
    not_expr   := "not" not_expr | comparison
    comparison := arith (("=="|"!="|"<"|"<="|">"|">=") arith)?
    arith      := term (("+"|"-") term)*
    term       := unary (("*"|"/"|"//"|"%") unary)*
    unary      := "-" unary | atom
    atom       := NUMBER | "True" | "False" | "myrank" | "nprocs"
                | "input" "(" NAME ")" | NAME ("(" args ")")?
                | "(" expr ")"
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.tokens import Token, TokenKind, tokenize

_COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
_ADD_OPS = ("+", "-")
_MUL_OPS = ("*", "/", "//", "%")


class _Parser:
    """Stateful cursor over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(message, token.line, token.column)

    def _check(self, kind: TokenKind, value: str | None = None) -> bool:
        token = self.current
        return token.kind is kind and (value is None or token.value == value)

    def _match(self, kind: TokenKind, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: str | None = None) -> Token:
        token = self._match(kind, value)
        if token is None:
            expected = value if value is not None else kind.name
            raise self._error(
                f"expected {expected!r}, found {self.current.value!r}"
            )
        return token

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        self._expect(TokenKind.KEYWORD, "program")
        name = self._expect(TokenKind.NAME).value
        self._expect(TokenKind.OP, "(")
        self._expect(TokenKind.OP, ")")
        self._expect(TokenKind.OP, ":")
        body = self._parse_suite()
        self._expect(TokenKind.EOF)
        return ast.Program(name=name, body=body, line=1)

    def _parse_suite(self) -> ast.Block:
        self._expect(TokenKind.NEWLINE)
        indent = self._expect(TokenKind.INDENT)
        statements: list[ast.Stmt] = []
        while not self._check(TokenKind.DEDENT):
            statements.append(self._parse_statement())
        self._expect(TokenKind.DEDENT)
        return ast.Block(statements=statements, line=indent.line)

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind is TokenKind.KEYWORD:
            if token.value == "if":
                return self._parse_if()
            if token.value == "while":
                return self._parse_while()
            if token.value == "for":
                return self._parse_for()
            if token.value == "send":
                return self._finish_simple(self._parse_send())
            if token.value == "checkpoint":
                self._advance()
                return self._finish_simple(ast.Checkpoint(line=token.line))
            if token.value == "compute":
                return self._finish_simple(self._parse_compute())
            if token.value == "pass":
                self._advance()
                return self._finish_simple(ast.Pass(line=token.line))
            raise self._error(f"unexpected keyword {token.value!r}")
        if token.kind is TokenKind.NAME:
            return self._finish_simple(self._parse_assignment())
        raise self._error(f"unexpected token {token.value!r}")

    def _finish_simple(self, stmt: ast.Stmt) -> ast.Stmt:
        self._expect(TokenKind.NEWLINE)
        return stmt

    def _parse_send(self) -> ast.Send:
        token = self._expect(TokenKind.KEYWORD, "send")
        self._expect(TokenKind.OP, "(")
        dest = self._parse_expr()
        self._expect(TokenKind.OP, ",")
        value = self._parse_expr()
        self._expect(TokenKind.OP, ")")
        return ast.Send(dest=dest, value=value, line=token.line)

    def _parse_compute(self) -> ast.Compute:
        token = self._expect(TokenKind.KEYWORD, "compute")
        self._expect(TokenKind.OP, "(")
        cost = self._parse_expr()
        self._expect(TokenKind.OP, ")")
        return ast.Compute(cost=cost, line=token.line)

    def _parse_assignment(self) -> ast.Stmt:
        target = self._expect(TokenKind.NAME)
        self._expect(TokenKind.OP, "=")
        if self._check(TokenKind.KEYWORD, "recv"):
            self._advance()
            self._expect(TokenKind.OP, "(")
            source = self._parse_expr()
            self._expect(TokenKind.OP, ")")
            return ast.Recv(target=target.value, source=source, line=target.line)
        if self._check(TokenKind.KEYWORD, "bcast"):
            self._advance()
            self._expect(TokenKind.OP, "(")
            root = self._parse_expr()
            self._expect(TokenKind.OP, ",")
            value = self._parse_expr()
            self._expect(TokenKind.OP, ")")
            return ast.Bcast(
                target=target.value, root=root, value=value, line=target.line
            )
        value = self._parse_expr()
        return ast.Assign(target=target.value, value=value, line=target.line)

    def _parse_if(self) -> ast.If:
        token = self._expect(TokenKind.KEYWORD, "if")
        cond = self._parse_expr()
        self._expect(TokenKind.OP, ":")
        then_block = self._parse_suite()
        else_block = ast.Block(line=token.line)
        if self._check(TokenKind.KEYWORD, "elif"):
            # Desugar `elif` into a nested If inside the else block.
            elif_token = self.current
            # Rewrite the token in place so _parse_if sees a plain `if`.
            self._tokens[self._pos] = Token(
                TokenKind.KEYWORD, "if", elif_token.line, elif_token.column
            )
            nested = self._parse_if()
            else_block = ast.Block(statements=[nested], line=elif_token.line)
        elif self._match(TokenKind.KEYWORD, "else"):
            self._expect(TokenKind.OP, ":")
            else_block = self._parse_suite()
        return ast.If(
            cond=cond, then_block=then_block, else_block=else_block, line=token.line
        )

    def _parse_while(self) -> ast.While:
        token = self._expect(TokenKind.KEYWORD, "while")
        cond = self._parse_expr()
        self._expect(TokenKind.OP, ":")
        body = self._parse_suite()
        return ast.While(cond=cond, body=body, line=token.line)

    def _parse_for(self) -> ast.For:
        token = self._expect(TokenKind.KEYWORD, "for")
        var = self._expect(TokenKind.NAME).value
        self._expect(TokenKind.KEYWORD, "in")
        self._expect(TokenKind.KEYWORD, "range")
        self._expect(TokenKind.OP, "(")
        count = self._parse_expr()
        self._expect(TokenKind.OP, ")")
        self._expect(TokenKind.OP, ":")
        body = self._parse_suite()
        return ast.For(var=var, count=count, body=body, line=token.line)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._check(TokenKind.KEYWORD, "or"):
            token = self._advance()
            right = self._parse_and()
            left = ast.BinOp(op="or", left=left, right=right, line=token.line)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._check(TokenKind.KEYWORD, "and"):
            token = self._advance()
            right = self._parse_not()
            left = ast.BinOp(op="and", left=left, right=right, line=token.line)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._check(TokenKind.KEYWORD, "not"):
            token = self._advance()
            operand = self._parse_not()
            return ast.UnaryOp(op="not", operand=operand, line=token.line)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_arith()
        if self.current.kind is TokenKind.OP and self.current.value in _COMPARISON_OPS:
            token = self._advance()
            right = self._parse_arith()
            return ast.BinOp(op=token.value, left=left, right=right, line=token.line)
        return left

    def _parse_arith(self) -> ast.Expr:
        left = self._parse_term()
        while self.current.kind is TokenKind.OP and self.current.value in _ADD_OPS:
            token = self._advance()
            right = self._parse_term()
            left = ast.BinOp(op=token.value, left=left, right=right, line=token.line)
        return left

    def _parse_term(self) -> ast.Expr:
        left = self._parse_unary()
        while self.current.kind is TokenKind.OP and self.current.value in _MUL_OPS:
            token = self._advance()
            right = self._parse_unary()
            left = ast.BinOp(op=token.value, left=left, right=right, line=token.line)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._check(TokenKind.OP, "-"):
            token = self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op="-", operand=operand, line=token.line)
        return self._parse_atom()

    def _parse_atom(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Const(value=int(token.value), line=token.line)
        if token.kind is TokenKind.KEYWORD:
            if token.value == "True":
                self._advance()
                return ast.Const(value=1, line=token.line)
            if token.value == "False":
                self._advance()
                return ast.Const(value=0, line=token.line)
            if token.value == "myrank":
                self._advance()
                return ast.MyRank(line=token.line)
            if token.value == "nprocs":
                self._advance()
                return ast.NProcs(line=token.line)
            if token.value == "input":
                self._advance()
                self._expect(TokenKind.OP, "(")
                label = self._expect(TokenKind.NAME).value
                self._expect(TokenKind.OP, ")")
                return ast.InputData(label=label, line=token.line)
            raise self._error(f"unexpected keyword {token.value!r} in expression")
        if token.kind is TokenKind.NAME:
            self._advance()
            if self._match(TokenKind.OP, "("):
                args: list[ast.Expr] = []
                if not self._check(TokenKind.OP, ")"):
                    args.append(self._parse_expr())
                    while self._match(TokenKind.OP, ","):
                        args.append(self._parse_expr())
                self._expect(TokenKind.OP, ")")
                return ast.Call(func=token.value, args=args, line=token.line)
            return ast.Name(ident=token.value, line=token.line)
        if self._match(TokenKind.OP, "("):
            expr = self._parse_expr()
            self._expect(TokenKind.OP, ")")
            return expr
        raise self._error(f"unexpected token {token.value!r} in expression")


def parse(source: str) -> ast.Program:
    """Parse MiniMP *source* text into a :class:`~repro.lang.Program`."""
    return _Parser(tokenize(source)).parse_program()
