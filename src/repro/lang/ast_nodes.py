"""Abstract syntax tree for MiniMP.

All nodes are frozen-ish dataclasses (mutable only where the offline
transformation phases need to rewrite statement lists, i.e. ``Block``
bodies). Every node carries its source ``line`` so diagnostics and the
pretty-printer can refer back to the original program.

Expression nodes
    :class:`Const`, :class:`Name`, :class:`MyRank`, :class:`NProcs`,
    :class:`InputData`, :class:`BinOp`, :class:`UnaryOp`, :class:`Call`

Statement nodes
    :class:`Assign`, :class:`Send`, :class:`Recv`, :class:`Bcast`,
    :class:`Checkpoint`, :class:`Compute`, :class:`Pass`, :class:`If`,
    :class:`While`, :class:`For`

A program is a :class:`Program` wrapping a single top-level
:class:`Block` (MiniMP is SPMD: one source file executed by every
process, exactly the setting of the paper's Section 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Union

_NODE_IDS = itertools.count(1)


def _next_node_id() -> int:
    return next(_NODE_IDS)


@dataclass
class _Node:
    """Common base: source line plus a process-wide unique node id.

    The unique id lets the CFG builder and the phase transformations
    refer to AST statements stably even after blocks are rewritten.
    """

    line: int = field(default=0, kw_only=True)
    node_id: int = field(default_factory=_next_node_id, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Const(_Node):
    """Integer or boolean literal."""

    value: int


@dataclass
class Name(_Node):
    """Reference to a program variable."""

    ident: str


@dataclass
class MyRank(_Node):
    """The executing process's rank (``myrank``)."""


@dataclass
class NProcs(_Node):
    """The number of processes in the system (``nprocs``)."""


@dataclass
class InputData(_Node):
    """An input-dependent value (``input(label)``).

    The paper calls computation patterns that depend on input data
    *irregular*; this node is how MiniMP programs introduce them.
    """

    label: str


@dataclass
class BinOp(_Node):
    """Binary operation. ``op`` is the surface operator token."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(_Node):
    """Unary operation (``-`` or ``not``)."""

    op: str
    operand: Expr


@dataclass
class Call(_Node):
    """Call to a named builtin (e.g. ``min``, ``max``, ``abs``)."""

    func: str
    args: list[Expr]


Expr = Union[Const, Name, MyRank, NProcs, InputData, BinOp, UnaryOp, Call]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Block(_Node):
    """A sequence of statements (a suite)."""

    statements: list[Stmt] = field(default_factory=list)

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


@dataclass
class Assign(_Node):
    """``target = expr``."""

    target: str
    value: Expr


@dataclass
class Send(_Node):
    """``send(dest, value)`` — point-to-point, asynchronous."""

    dest: Expr
    value: Expr


@dataclass
class Recv(_Node):
    """``target = recv(source)`` — point-to-point, blocking."""

    target: str
    source: Expr


@dataclass
class Bcast(_Node):
    """``target = bcast(root, value)`` — collective broadcast.

    Every process executes the statement; the process whose rank equals
    *root* supplies *value* and all others receive it, mirroring
    ``MPI_Bcast``. The CFG builder lowers it to send/receive nodes whose
    message edges are trivially matched (paper §3.2, collective case).
    """

    target: str
    root: Expr
    value: Expr


@dataclass
class Checkpoint(_Node):
    """``checkpoint`` — save local process state to stable storage."""


@dataclass
class Compute(_Node):
    """``compute(cost)`` — opaque local work costing *cost* time units."""

    cost: Expr


@dataclass
class Pass(_Node):
    """``pass`` — no-op."""


@dataclass
class If(_Node):
    """``if cond: then_block [else: else_block]``."""

    cond: Expr
    then_block: Block
    else_block: Block


@dataclass
class While(_Node):
    """``while cond: body``."""

    cond: Expr
    body: Block


@dataclass
class For(_Node):
    """``for var in range(count): body`` — a bounded loop."""

    var: str
    count: Expr
    body: Block


Stmt = Union[Assign, Send, Recv, Bcast, Checkpoint, Compute, Pass, If, While, For]


@dataclass
class Program(_Node):
    """A complete MiniMP program: ``program name(): <block>``."""

    name: str
    body: Block


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def children(node: _Node) -> Iterator[_Node]:
    """Yield the direct AST children of *node* (expressions and blocks)."""
    if isinstance(node, Program):
        yield node.body
    elif isinstance(node, Block):
        yield from node.statements
    elif isinstance(node, Assign):
        yield node.value
    elif isinstance(node, Send):
        yield node.dest
        yield node.value
    elif isinstance(node, Recv):
        yield node.source
    elif isinstance(node, Bcast):
        yield node.root
        yield node.value
    elif isinstance(node, Compute):
        yield node.cost
    elif isinstance(node, If):
        yield node.cond
        yield node.then_block
        yield node.else_block
    elif isinstance(node, While):
        yield node.cond
        yield node.body
    elif isinstance(node, For):
        yield node.count
        yield node.body
    elif isinstance(node, BinOp):
        yield node.left
        yield node.right
    elif isinstance(node, UnaryOp):
        yield node.operand
    elif isinstance(node, Call):
        yield from node.args
    # Const / Name / MyRank / NProcs / InputData / Checkpoint / Pass: leaves.


def walk(node: _Node) -> Iterator[_Node]:
    """Yield *node* and all its descendants in pre-order."""
    yield node
    for child in children(node):
        yield from walk(child)


def count_statements(program: Program, kind: type | tuple[type, ...]) -> int:
    """Count statements of the given type(s) anywhere in *program*."""
    return sum(1 for node in walk(program) if isinstance(node, kind))


# ---------------------------------------------------------------------------
# Structural cloning
# ---------------------------------------------------------------------------


def clone(node: _Node) -> _Node:
    """A structural copy of *node*, preserving ``node_id`` and ``line``.

    Drop-in replacement for ``copy.deepcopy`` on ASTs (which are strict
    trees — no aliasing, no cycles — so deepcopy's memo machinery is
    pure overhead): the transformation phases copy whole programs on
    every invocation, and this direct recursive rebuild is an order of
    magnitude faster. Because node ids are preserved, a clone is
    indistinguishable from a deepcopy to the CFG builder, the statement
    indexes, and the pretty-printer.
    """
    try:
        return _CLONERS[type(node)](node)
    except KeyError:
        raise TypeError(f"cannot clone non-AST node {node!r}") from None


def _clone_block(node: Block) -> Block:
    return Block(
        statements=[clone(s) for s in node.statements],
        line=node.line,
        node_id=node.node_id,
    )


_CLONERS = {
    Const: lambda n: Const(value=n.value, line=n.line, node_id=n.node_id),
    Name: lambda n: Name(ident=n.ident, line=n.line, node_id=n.node_id),
    MyRank: lambda n: MyRank(line=n.line, node_id=n.node_id),
    NProcs: lambda n: NProcs(line=n.line, node_id=n.node_id),
    InputData: lambda n: InputData(
        label=n.label, line=n.line, node_id=n.node_id
    ),
    BinOp: lambda n: BinOp(
        op=n.op, left=clone(n.left), right=clone(n.right),
        line=n.line, node_id=n.node_id,
    ),
    UnaryOp: lambda n: UnaryOp(
        op=n.op, operand=clone(n.operand), line=n.line, node_id=n.node_id
    ),
    Call: lambda n: Call(
        func=n.func, args=[clone(a) for a in n.args],
        line=n.line, node_id=n.node_id,
    ),
    Block: _clone_block,
    Assign: lambda n: Assign(
        target=n.target, value=clone(n.value), line=n.line, node_id=n.node_id
    ),
    Send: lambda n: Send(
        dest=clone(n.dest), value=clone(n.value),
        line=n.line, node_id=n.node_id,
    ),
    Recv: lambda n: Recv(
        target=n.target, source=clone(n.source),
        line=n.line, node_id=n.node_id,
    ),
    Bcast: lambda n: Bcast(
        target=n.target, root=clone(n.root), value=clone(n.value),
        line=n.line, node_id=n.node_id,
    ),
    Checkpoint: lambda n: Checkpoint(line=n.line, node_id=n.node_id),
    Compute: lambda n: Compute(
        cost=clone(n.cost), line=n.line, node_id=n.node_id
    ),
    Pass: lambda n: Pass(line=n.line, node_id=n.node_id),
    If: lambda n: If(
        cond=clone(n.cond),
        then_block=_clone_block(n.then_block),
        else_block=_clone_block(n.else_block),
        line=n.line,
        node_id=n.node_id,
    ),
    While: lambda n: While(
        cond=clone(n.cond), body=_clone_block(n.body),
        line=n.line, node_id=n.node_id,
    ),
    For: lambda n: For(
        var=n.var, count=clone(n.count), body=_clone_block(n.body),
        line=n.line, node_id=n.node_id,
    ),
    Program: lambda n: Program(
        name=n.name, body=_clone_block(n.body),
        line=n.line, node_id=n.node_id,
    ),
}
