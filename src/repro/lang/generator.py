"""Random MiniMP program generation for property-based testing.

Generates *iteration-aligned exchange programs*: SPMD loops whose body
performs a parity-paired neighbour exchange (the communication skeleton
of the paper's Jacobi example), with randomised local computation,
optional nested rank branches, and a checkpoint statement placed at a
random legal-or-illegal position. This is the program family over which
the paper's Theorem 3.2 claims hold, so the property tests can assert:

- programs whose checkpoint placement passes Condition 1 yield traces
  where **every straight cut is consistent** (soundness, V1);
- programs failing Condition 1 yield at least one trace with an
  inconsistent straight cut (the necessity direction, V2); and
- Phase III repairs every generated program into a verified one whose
  traces are always safe.

Randomness is fully seed-driven; the same seed yields the same program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.lang.ast_nodes import Program
from repro.lang.parser import parse


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random program family."""

    max_compute_cost: int = 6
    max_extra_locals: int = 2
    allow_nested_branch: bool = True
    allow_irregular_payload: bool = True


def generate_exchange_program(
    seed: int,
    checkpoint_position: str = "random",
    config: GeneratorConfig = GeneratorConfig(),
) -> Program:
    """Generate one random exchange program.

    ``checkpoint_position``:

    - ``"head"``: checkpoint at the loop head (safe — Figure 1 shape);
    - ``"split"``: checkpoint before the exchange on the even branch
      and after it on the odd branch (unsafe — Figure 2 shape);
    - ``"random"``: one of the above, chosen by the seed.
    """
    rng = random.Random(seed)
    if checkpoint_position == "random":
        checkpoint_position = rng.choice(["head", "split"])
    if checkpoint_position not in ("head", "split"):
        raise ValueError(f"unknown checkpoint_position {checkpoint_position!r}")

    local_lines = _local_work(rng, config, indent=8)
    payload = _payload(rng, config)
    nested = (
        _nested_branch(rng, indent=12)
        if config.allow_nested_branch and rng.random() < 0.4
        else []
    )

    lines = [f"program generated_{seed}():", "    x = init(myrank)", "    i = 0"]
    lines.append("    while i < steps:")
    if checkpoint_position == "head":
        lines.append("        checkpoint")
    lines.append("        if myrank % 2 == 0:")
    if checkpoint_position == "split":
        lines.append("            checkpoint")
    lines.append(f"            send(myrank + 1, {payload})")
    lines.append("            y = recv(myrank + 1)")
    lines.extend(nested)
    lines.append("        else:")
    lines.append("            y = recv(myrank - 1)")
    lines.append(f"            send(myrank - 1, {payload})")
    if checkpoint_position == "split":
        lines.append("            checkpoint")
    lines.extend(local_lines)
    lines.append("        x = relax(x, y)")
    lines.append("        i = i + 1")
    return parse("\n".join(lines) + "\n")


def generate_ring_program(
    seed: int,
    checkpoint_position: str = "random",
    config: GeneratorConfig = GeneratorConfig(),
) -> Program:
    """Generate a random ring-circulation program.

    Rank 0 injects a token each iteration; every other rank forwards it
    to its successor, with randomised local work. ``checkpoint_position``:

    - ``"head"``: loop-head checkpoint shared by all ranks (safe);
    - ``"split"``: rank 0 checkpoints before injecting, the others
      after forwarding (unsafe — the token's causality chain crosses
      the same-index checkpoints);
    - ``"random"``: seed-chosen.

    Works for any ``nprocs >= 2``. Together with
    :func:`generate_exchange_program` this gives the property tests two
    structurally different communication skeletons.
    """
    rng = random.Random(seed ^ 0x5A5A)
    if checkpoint_position == "random":
        checkpoint_position = rng.choice(["head", "split"])
    if checkpoint_position not in ("head", "split"):
        raise ValueError(f"unknown checkpoint_position {checkpoint_position!r}")

    payload = _payload(rng, config)
    local = _local_work(rng, config, indent=8)

    lines = [f"program ring_{seed}():", "    x = init(myrank)", "    i = 0"]
    lines.append("    while i < steps:")
    if checkpoint_position == "head":
        lines.append("        checkpoint")
    lines.append("        if myrank == 0:")
    if checkpoint_position == "split":
        lines.append("            checkpoint")
    lines.append(f"            send(1, {payload})")
    lines.append("            y = recv(nprocs - 1)")
    lines.append("        else:")
    lines.append("            y = recv(myrank - 1)")
    lines.append("            send((myrank + 1) % nprocs, relax(y, myrank))")
    if checkpoint_position == "split":
        lines.append("            checkpoint")
    lines.extend(local)
    lines.append("        x = combine(x, y)")
    lines.append("        i = i + 1")
    return parse("\n".join(lines) + "\n")


def _payload(rng: random.Random, config: GeneratorConfig) -> str:
    choices = ["x", "combine(x, i)", "relax(x, myrank)"]
    if config.allow_irregular_payload:
        choices.append("combine(x, input(noise))")
    return rng.choice(choices)


def _local_work(
    rng: random.Random, config: GeneratorConfig, indent: int
) -> list[str]:
    prefix = " " * indent
    lines = []
    if rng.random() < 0.7:
        cost = rng.randint(1, config.max_compute_cost)
        lines.append(f"{prefix}compute({cost})")
    for index in range(rng.randint(0, config.max_extra_locals)):
        lines.append(f"{prefix}t{index} = combine(x, {rng.randint(0, 99)})")
    return lines


def _nested_branch(rng: random.Random, indent: int) -> list[str]:
    """A nested rank-range branch inside the even arm (no messaging)."""
    prefix = " " * indent
    threshold = rng.randint(1, 6)
    return [
        f"{prefix}if myrank < {threshold}:",
        f"{prefix}    compute({rng.randint(1, 4)})",
        f"{prefix}else:",
        f"{prefix}    compute({rng.randint(1, 4)})",
    ]
