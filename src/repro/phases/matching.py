"""Phase II: generating the extended CFG (paper §3.2, Algorithm 3.1).

For every receive node we determine, per enumerated path, its *source
attribute* (path constraints + source parameter) and compare it against
the *destination attribute* of every send node occurrence. Pairs whose
attributes do not contradict — decided exactly over a finite universe
of system sizes — become message edges of the extended CFG.

Two deliberate engineering choices, both documented in DESIGN.md:

- **Collective statements** are pre-matched: the builder lowers
  ``bcast`` to a collective send/recv pair from the same statement, and
  the paper notes such matches are trivially determined.
- **We keep every compatible match**, not just the first unmatched one.
  Lemma 3.1 only needs the true sender to be *among* the matches; a
  superset of message edges can only make Phase III more conservative,
  never unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attributes.contradiction import (
    CompatibilityReport,
    ContextTable,
    Universe,
    tables_compatible,
)
from repro.attributes.dataflow import classify_variables, single_assignments
from repro.attributes.domain import node_contexts
from repro.cfg.builder import build_cfg
from repro.cfg.graph import CFG, ExtendedCFG
from repro.cfg.nodes import NodeKind
from repro.cfg.paths import acyclic_paths
from repro.errors import MatchingError
from repro.lang import ast_nodes as ast


@dataclass
class MatchingResult:
    """The extended CFG plus diagnostics from the matching pass."""

    extended: ExtendedCFG
    report: CompatibilityReport = field(default_factory=CompatibilityReport)
    unmatched_recv_ids: tuple[int, ...] = ()


def build_extended_cfg(
    program: ast.Program,
    cfg: CFG | None = None,
    universe: Universe = Universe(),
    require_complete: bool = True,
) -> ExtendedCFG:
    """Run Algorithm 3.1 on *program*; return its extended CFG.

    With *require_complete* (the default), a receive node that matches
    no send node raises :class:`~repro.errors.MatchingError` — such a
    program would block forever on that receive, so the analysis refuses
    it. Pass ``False`` to get the partial extended CFG for diagnostics.
    """
    return match_messages(
        program, cfg=cfg, universe=universe, require_complete=require_complete
    ).extended


def match_messages(
    program: ast.Program,
    cfg: CFG | None = None,
    universe: Universe = Universe(),
    require_complete: bool = True,
) -> MatchingResult:
    """Run Algorithm 3.1 and return the extended CFG with diagnostics."""
    if cfg is None:
        cfg = build_cfg(program)
    extended = ExtendedCFG(cfg)
    report = CompatibilityReport()

    _match_collectives(cfg, extended)

    classes = classify_variables(program)
    defs = single_assignments(program)
    paths = acyclic_paths(cfg)
    contexts = node_contexts(cfg, paths, classes)
    send_ctxs = [
        c
        for c in contexts
        if c.kind is NodeKind.SEND and not cfg.node(c.node_id).collective
    ]
    recv_ctxs = [
        c
        for c in contexts
        if c.kind is NodeKind.RECV and not cfg.node(c.node_id).collective
    ]

    send_tables = [ContextTable(c, defs, universe) for c in send_ctxs]
    recv_tables = [ContextTable(c, defs, universe) for c in recv_ctxs]
    matched_pairs: set[tuple[int, int]] = set()
    for recv_table in recv_tables:
        recv_ctx = recv_table.ctx
        for send_table in send_tables:
            send_ctx = send_table.ctx
            pair = (send_ctx.node_id, recv_ctx.node_id)
            if pair in matched_pairs:
                continue
            witness = tables_compatible(send_table, recv_table)
            report.record(*pair, witness)
            if witness is not None:
                matched_pairs.add(pair)
                extended.add_message_edge(
                    send_ctx.node_id,
                    recv_ctx.node_id,
                    reason=(
                        f"n={witness.nprocs}: "
                        f"P{witness.sender} -> P{witness.receiver}"
                    ),
                )

    unmatched = tuple(
        node.node_id
        for node in cfg.recv_nodes()
        if not extended.matches_for_recv(node.node_id)
    )
    if unmatched and require_complete:
        labels = ", ".join(repr(cfg.node(i)) for i in unmatched)
        raise MatchingError(
            f"receive node(s) with no matching send: {labels}"
        )
    return MatchingResult(
        extended=extended, report=report, unmatched_recv_ids=unmatched
    )


def _match_collectives(cfg: CFG, extended: ExtendedCFG) -> None:
    """Pre-match send/recv node pairs lowered from the same collective."""
    by_stmt: dict[int, dict[NodeKind, int]] = {}
    for node in cfg.nodes():
        if node.collective and node.stmt is not None:
            by_stmt.setdefault(node.stmt.node_id, {})[node.kind] = node.node_id
    for stmt_id, pair in by_stmt.items():
        if NodeKind.SEND in pair and NodeKind.RECV in pair:
            extended.add_message_edge(
                pair[NodeKind.SEND],
                pair[NodeKind.RECV],
                reason=f"collective stmt #{stmt_id}",
            )
