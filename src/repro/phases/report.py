"""Human-readable transformation reports.

Summarises a :class:`~repro.phases.pipeline.TransformResult` — what
Phase I inserted, what Phase III moved, what the verifier concluded —
as plain text for CLI output, logs, and review. The report is pure
presentation; all data comes from the result object.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.phases.pipeline import TransformResult


def transform_report(result: TransformResult) -> str:
    """Render *result* as a multi-line text report."""
    lines = [f"program: {result.program.name}"]

    if result.insertion is None:
        lines.append("phase I : skipped (program already has checkpoints)")
    else:
        plan = result.insertion
        lines.append(
            f"phase I : inserted {plan.inserted} checkpoint(s) at optimal "
            f"interval {plan.interval:.2f} "
            f"(estimated run cost {plan.estimated_cost:.1f})"
        )
        if plan.balance_added:
            lines.append(
                f"          +{plan.balance_added} balancing checkpoint(s)"
            )

    checkpoints = ast.count_statements(result.program, ast.Checkpoint)
    moves = result.placement.moves
    if moves:
        lines.append(f"phase III: {len(moves)} move(s)")
        for move in moves:
            lines.append(f"          - {move.description}")
    else:
        lines.append("phase III: placement already safe, no moves")
    constraints = result.placement.ordering_constraints
    if constraints:
        lines.append(
            f"          {len(constraints)} loop ordering constraint(s) "
            "(discharged by message order)"
        )

    verification = result.verification
    depth = (
        verification.enumeration.depth
        if verification.enumeration is not None
        else 0
    )
    lines.append(
        f"verified : Condition 1 holds; {checkpoints} checkpoint "
        f"statement(s), {depth} straight cut(s) per execution path"
    )

    live = result.placement.checkpoint_live
    dead = result.placement.checkpoint_dead
    if live:
        # live ∪ dead of any one checkpoint is the analysis universe.
        first = next(iter(live))
        total = len(live[first] | dead[first])
        lines.append(
            f"liveness : {len(live)} checkpoint(s) over "
            f"{total} variable(s)"
        )
        # Checkpoints are labelled by document-order ordinal, not raw
        # AST node id: node ids come from a process-global counter, so
        # a cache-reconstructed result would otherwise render a
        # different report than the fresh transform it mirrors.
        for ordinal, stmt_id in enumerate(sorted(live), start=1):
            dead_names = ", ".join(sorted(dead[stmt_id])) or "-"
            lines.append(
                f"          - checkpoint #{ordinal}: "
                f"{len(live[stmt_id])} live, {len(dead[stmt_id])} dead "
                f"(prunable: {dead_names})"
            )
    return "\n".join(lines)
