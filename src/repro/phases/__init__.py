"""The three offline phases of the paper's approach (Section 3).

- Phase I (:mod:`repro.phases.insertion`): static checkpoint insertion
  at (near-)optimal intervals, with path balancing.
- Phase II (:mod:`repro.phases.matching`): Algorithm 3.1 — match every
  receive node with its candidate send node(s) and build the extended
  CFG.
- Phase III (:mod:`repro.phases.placement`): Algorithm 3.2 — move
  checkpoint statements until Condition 1 holds, so every straight cut
  of checkpoints is a recovery line in every future execution
  (Theorem 3.2, checked by :mod:`repro.phases.verification`).
- :mod:`repro.phases.pipeline` runs all three end to end.
"""

from repro.phases.insertion import InsertionPlan, insert_checkpoints
from repro.phases.matching import build_extended_cfg
from repro.phases.pipeline import TransformResult, transform
from repro.phases.placement import PlacementResult, ensure_recovery_lines
from repro.phases.verification import (
    VerificationResult,
    Violation,
    check_condition1,
    verify_program,
)

__all__ = [
    "InsertionPlan",
    "PlacementResult",
    "TransformResult",
    "VerificationResult",
    "Violation",
    "build_extended_cfg",
    "check_condition1",
    "ensure_recovery_lines",
    "insert_checkpoints",
    "transform",
    "verify_program",
]
