"""Phase III: ensuring recovery lines (paper §3.3, Algorithm 3.2).

The transformation repeatedly checks Condition 1 on the extended CFG
and, for each violating path ``C_i^A ->γ C_i^B``, *moves* ``C_i^B``
back in the program: the checkpoint statement is re-inserted
immediately before the statement of a node that (a) dominates
``C_i^B`` and (b) lies on γ — Step 2's edge ``<a, b>``. Where the paper
picks the entry-most such node, we pick the *latest* dominator on γ and
iterate, which yields minimal motion (re-verification drives further
moves if needed); the fixpoints coincide but ours keeps checkpoints
inside loops whenever a shared in-loop position exists (e.g. it turns
the Figure 2 program into exactly the Figure 1 program instead of
hoisting the checkpoint out of the ``while`` loop).

Moving a checkpoint onto a dominator shared by several paths can leave
other paths with an extra checkpoint; the balancing step hoists such
extras toward the common dominator, where adjacent duplicates merge
into a single statement. Checkpoint statements carry no data
dependencies, so motion never changes program semantics.

Modes mirror :mod:`repro.phases.verification`:

- conservative (``loop_optimization=False``): back-edge paths count as
  violations, matching the paper's Figure 6 discussion;
- optimised (``loop_optimization=True``): back-edge-only paths are
  discharged as :class:`~repro.phases.verification.OrderingConstraint`
  artifacts instead of motion, keeping per-branch placements legal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attributes.contradiction import Universe
from repro.attributes.liveness import checkpoint_liveness
from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import ExtendedCFG
from repro.cfg.nodes import NodeKind
from repro.errors import PlacementError
from repro.lang import ast_nodes as ast
from repro.phases.matching import build_extended_cfg
from repro.phases.verification import (
    OrderingConstraint,
    VerificationResult,
    Violation,
    check_condition1,
    loop_ordering_constraints,
)


@dataclass(frozen=True)
class Move:
    """A record of one checkpoint motion, for reporting and tests."""

    description: str
    index: int


@dataclass
class PlacementResult:
    """Outcome of Phase III.

    Attributes:
        program: The transformed program (a deep copy; the input is
            never mutated).
        moves: Every motion performed, in order.
        verification: The final Condition 1 check (always ``ok``).
        ordering_constraints: Loop-optimisation artifacts (empty in
            conservative mode).
        checkpoint_live: Checkpoint statement ``node_id`` → variables
            still live at that (final, post-motion) checkpoint — what a
            liveness-pruned snapshot must retain.
        checkpoint_dead: The complement per checkpoint — provably
            rewritten-before-read on every path, safe to exclude.
    """

    program: ast.Program
    moves: tuple[Move, ...] = ()
    verification: VerificationResult | None = None
    ordering_constraints: tuple[OrderingConstraint, ...] = ()
    checkpoint_live: dict[int, frozenset[str]] = field(default_factory=dict)
    checkpoint_dead: dict[int, frozenset[str]] = field(default_factory=dict)


@dataclass
class _StmtIndex:
    """Positions of statements and block parentage for one AST snapshot."""

    stmt_pos: dict[int, tuple[ast.Block, int]] = field(default_factory=dict)
    block_parent: dict[int, ast.Stmt | None] = field(default_factory=dict)

    @classmethod
    def build(cls, program: ast.Program) -> "_StmtIndex":
        index = cls()
        index._scan(program.body, None)
        return index

    def _scan(self, block: ast.Block, parent: ast.Stmt | None) -> None:
        self.block_parent[block.node_id] = parent
        for pos, stmt in enumerate(block.statements):
            self.stmt_pos[stmt.node_id] = (block, pos)
            if isinstance(stmt, ast.If):
                self._scan(stmt.then_block, stmt)
                self._scan(stmt.else_block, stmt)
            elif isinstance(stmt, ast.While):
                self._scan(stmt.body, stmt)
            elif isinstance(stmt, ast.For):
                self._scan(stmt.body, stmt)


def ensure_recovery_lines(
    program: ast.Program,
    loop_optimization: bool = False,
    universe: Universe = Universe(),
    max_moves: int | None = None,
) -> PlacementResult:
    """Run Algorithm 3.2 on a copy of *program* until Condition 1 holds.

    Raises :class:`~repro.errors.PlacementError` if no legal placement
    is found within the move budget (default ``50 + 20 *`` number of
    checkpoint statements).
    """
    working = ast.clone(program)
    n_checkpoints = ast.count_statements(working, ast.Checkpoint)
    budget = max_moves if max_moves is not None else 50 + 20 * n_checkpoints
    include_back = not loop_optimization
    moves: list[Move] = []

    for _ in range(budget + 1):
        _merge_adjacent_checkpoints(working)
        ext = build_extended_cfg(working, universe=universe)
        result = check_condition1(
            ext, include_back_edge_paths=include_back, first_only=True
        )
        if result.ok:
            constraints = (
                loop_ordering_constraints(ext) if loop_optimization else ()
            )
            # Liveness is computed on the *final* placement: motion
            # changes which variables are rewritten between a
            # checkpoint and their next read.
            liveness = checkpoint_liveness(working)
            return PlacementResult(
                program=working,
                moves=tuple(moves),
                verification=result,
                ordering_constraints=constraints,
                checkpoint_live=dict(liveness.live_out),
                checkpoint_dead=dict(liveness.dead),
            )
        if not result.balanced:
            moves.append(_rebalance(working, ext))
            continue
        violation = result.violations[0]
        moves.append(_move_back(working, ext, violation))
    raise PlacementError(
        f"no legal placement found within {budget} moves "
        f"(program {program.name!r})"
    )


# ---------------------------------------------------------------------------
# Mutation helpers
# ---------------------------------------------------------------------------


def _merge_adjacent_checkpoints(program: ast.Program) -> None:
    """Collapse consecutive checkpoint statements in every block."""
    for node in ast.walk(program):
        if not isinstance(node, ast.Block):
            continue
        merged: list[ast.Stmt] = []
        for stmt in node.statements:
            if (
                isinstance(stmt, ast.Checkpoint)
                and merged
                and isinstance(merged[-1], ast.Checkpoint)
            ):
                continue
            merged.append(stmt)
        node.statements[:] = merged


def _checkpoint_stmt(ext: ExtendedCFG, node_id: int) -> ast.Checkpoint:
    stmt = ext.cfg.node(node_id).stmt
    if not isinstance(stmt, ast.Checkpoint):
        raise PlacementError(f"node {node_id} is not a checkpoint node")
    return stmt


def _remove_stmt(index: _StmtIndex, stmt: ast.Stmt) -> None:
    block, pos = index.stmt_pos[stmt.node_id]
    del block.statements[pos]


def _insert_before(index: _StmtIndex, anchor: ast.Stmt, stmt: ast.Stmt) -> None:
    block, pos = index.stmt_pos[anchor.node_id]
    block.statements.insert(pos, stmt)


def _hoist_one_level(
    program: ast.Program, stmt: ast.Stmt, reason: str, index_i: int
) -> Move:
    """Move *stmt* out of its block, to just before the parent construct."""
    index = _StmtIndex.build(program)
    block, _ = index.stmt_pos[stmt.node_id]
    parent = index.block_parent[block.node_id]
    if parent is None:
        raise PlacementError(
            f"cannot hoist checkpoint above the program body ({reason})"
        )
    _remove_stmt(index, stmt)
    index = _StmtIndex.build(program)
    _insert_before(index, parent, stmt)
    return Move(
        description=f"hoist checkpoint before line-{parent.line} construct ({reason})",
        index=index_i,
    )


def _rebalance(program: ast.Program, ext: ExtendedCFG) -> Move:
    """Hoist one surplus checkpoint toward its branch's common dominator."""
    from repro.cfg.paths import enumerate_checkpoints

    enum = enumerate_checkpoints(ext.cfg)
    min_count = min(len(seq) for seq in enum.per_path)
    for seq in enum.per_path:
        if len(seq) > min_count:
            surplus_node = seq[min_count]
            stmt = _checkpoint_stmt(ext, surplus_node)
            return _hoist_one_level(
                program, stmt, reason="rebalance", index_i=min_count + 1
            )
    raise PlacementError("unbalanced enumeration without a surplus path")


def _move_back(
    program: ast.Program, ext: ExtendedCFG, violation: Violation
) -> Move:
    """Step 2 of Algorithm 3.2: move ``C_i^B`` before a dominator on γ."""
    target_stmt = _checkpoint_stmt(ext, violation.dst)
    dom = compute_dominators(ext.cfg)
    path_nodes = set(violation.path)
    # Dominators of C_i^B that lie on γ, ordered entry-most first; we
    # try the latest (closest to C_i^B) first for minimal motion.
    candidates = [
        node_id
        for node_id in violation.path
        if node_id != violation.dst
        and node_id in dom.get(violation.dst, frozenset())
        and node_id in path_nodes
    ]
    index = _StmtIndex.build(program)
    for anchor_id in reversed(candidates):
        anchor_node = ext.cfg.node(anchor_id)
        anchor_stmt = anchor_node.stmt
        if anchor_stmt is None or anchor_stmt.node_id not in index.stmt_pos:
            continue
        if anchor_node.kind is NodeKind.CHECKPOINT:
            continue
        target_block, target_pos = index.stmt_pos[target_stmt.node_id]
        anchor_block, anchor_pos = index.stmt_pos[anchor_stmt.node_id]
        if (
            anchor_block.node_id == target_block.node_id
            and anchor_pos == target_pos + 1
        ):
            # Already immediately before the anchor: no progress here.
            continue
        _remove_stmt(index, target_stmt)
        index = _StmtIndex.build(program)
        _insert_before(index, anchor_stmt, target_stmt)
        return Move(
            description=(
                f"move checkpoint C_{violation.index} before "
                f"line-{anchor_stmt.line} statement"
            ),
            index=violation.index,
        )
    # No dominator on the path gives progress: hoist out one level
    # (this is where the paper's "moved out of loops" drawback bites).
    return _hoist_one_level(
        program,
        target_stmt,
        reason=f"no in-path dominator for S_{violation.index}",
        index_i=violation.index,
    )
