"""Phase I calibration: derive a cost model from a profiling run.

The paper's Phase I needs two application-specific inputs before it can
place checkpoints at optimal intervals: the expected running time of
code regions and the network message delay. This module obtains both
the way a practitioner would — by profiling a short run — closing the
loop between the simulator and the offline analysis:

1. simulate a few iterations of the (uncheckpointed) program;
2. estimate the per-message delay with the Jacobson/Karn estimator the
   paper cites; and
3. return a :class:`~repro.phases.insertion.CostModel` carrying the
   calibrated delay, ready for :func:`insert_checkpoints`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.delay import RttEstimator, estimate_message_delay
from repro.errors import InsertionError
from repro.lang import ast_nodes as ast
from repro.phases.insertion import CostModel
from repro.runtime.engine import RuntimeCosts, Simulation


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of a profiling run."""

    cost_model: CostModel
    estimator: RttEstimator
    profile_time: float
    messages_observed: int


def calibrate_cost_model(
    program: ast.Program,
    n_processes: int,
    params: dict[str, int] | None = None,
    base_model: CostModel = CostModel(),
    costs: RuntimeCosts = RuntimeCosts(),
    profile_steps: int = 3,
    seed: int = 0,
) -> CalibrationReport:
    """Profile *program* and return a delay-calibrated cost model.

    ``profile_steps`` overrides the program's ``steps`` parameter for
    the profiling run so calibration stays cheap regardless of the
    production iteration count. The returned model keeps every other
    knob from *base_model*.
    """
    profile_params = dict(params or {})
    if "steps" in profile_params or _uses_steps(program):
        profile_params["steps"] = profile_steps
    result = Simulation(
        program,
        n_processes,
        params=profile_params,
        costs=costs,
        seed=seed,
    ).run()
    estimator = estimate_message_delay(result.trace.events)
    if estimator.samples == 0:
        # No messages observed: keep the prior delay.
        calibrated = base_model
    else:
        calibrated = replace(base_model, message_delay=estimator.estimate)
    return CalibrationReport(
        cost_model=calibrated,
        estimator=estimator,
        profile_time=result.completion_time,
        messages_observed=estimator.samples,
    )


def _uses_steps(program: ast.Program) -> bool:
    return any(
        isinstance(node, ast.Name) and node.ident == "steps"
        for node in ast.walk(program)
    )


def calibrated_transform(
    program: ast.Program,
    n_processes: int,
    params: dict[str, int] | None = None,
    base_model: CostModel = CostModel(),
    **transform_kwargs,
):
    """Convenience: calibrate, then run the full offline pipeline."""
    from repro.phases.pipeline import transform

    report = calibrate_cost_model(
        program, n_processes, params=params, base_model=base_model
    )
    if report.cost_model.interval() <= 0:
        raise InsertionError("calibrated model yields a non-positive interval")
    return transform(program, cost_model=report.cost_model, **transform_kwargs)
