"""Phase I: static checkpoint insertion (paper §3.1).

Given a program with no (or too few) checkpoint statements, Phase I
inserts them so checkpoint intervals are approximately optimal — the
classic serial-code problem ([8], [22]) applied to a message-passing
program. The differences the paper calls out are both implemented:

- message statements contribute an *estimated network delay* to the
  cost model (the paper estimates delay à la RTT estimation [5, 12]),
  so intervals account for communication time; and
- after insertion, checkpoints are added so that **every path of the
  CFG has the same number of checkpoint nodes** (the balance property
  Phases II/III require).

The cost model walks the AST, accumulating estimated execution time;
whenever the running total crosses the optimal interval ``T* =
sqrt(2 o / λ)`` (Young's solution to the optimal-interval problem), a
checkpoint statement is inserted at the current block boundary. Loop
bodies whose per-iteration cost exceeds the interval get in-body
checkpoints; cheaper loops are treated as single units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.optimal_interval import young_interval
from repro.attributes.expressions import abstract_eval
from repro.errors import InsertionError
from repro.lang import ast_nodes as ast


@dataclass(frozen=True)
class CostModel:
    """Estimated execution-time contributions, in abstract time units.

    ``message_delay`` is the estimated one-way network delay added to
    every send/receive (the paper's Phase I delay estimation);
    ``default_loop_trips`` is used when a loop bound cannot be
    evaluated statically.
    """

    local_statement: float = 1.0
    message_delay: float = 5.0
    checkpoint_overhead: float = 10.0
    failure_rate: float = 0.002
    default_loop_trips: int = 10
    default_compute: float = 4.0
    params: dict[str, int] = field(default_factory=dict)

    def interval(self) -> float:
        """The target optimal checkpoint interval ``T*``."""
        return young_interval(self.checkpoint_overhead, self.failure_rate)


@dataclass
class InsertionPlan:
    """Outcome of Phase I.

    Attributes:
        program: The instrumented program (deep copy of the input).
        interval: The optimal interval targeted.
        inserted: Number of checkpoint statements inserted by the cost
            walk.
        balance_added: Checkpoints added by the balancing pass.
        estimated_cost: The cost model's estimate of one full run.
    """

    program: ast.Program
    interval: float
    inserted: int = 0
    balance_added: int = 0
    estimated_cost: float = 0.0


def insert_checkpoints(
    program: ast.Program, model: CostModel = CostModel()
) -> InsertionPlan:
    """Run Phase I on a copy of *program* and return the plan."""
    working = ast.clone(program)
    interval = model.interval()
    if interval <= 0:
        raise InsertionError(f"non-positive optimal interval {interval!r}")
    walker = _InsertionWalker(model, interval)
    walker.walk_block(working.body)
    balance_added = _balance_block(working.body)
    plan = InsertionPlan(
        program=working,
        interval=interval,
        inserted=walker.inserted,
        balance_added=balance_added,
        estimated_cost=walker.total_cost,
    )
    return plan


def estimate_cost(program: ast.Program, model: CostModel = CostModel()) -> float:
    """Estimate the execution time of one run of *program*."""
    walker = _InsertionWalker(model, interval=float("inf"))
    # Walk a copy so estimation never mutates the caller's AST.
    walker.walk_block(ast.clone(program.body))
    return walker.total_cost


class _InsertionWalker:
    """Accumulates cost through blocks, inserting checkpoints on overflow."""

    def __init__(self, model: CostModel, interval: float) -> None:
        self._model = model
        self._interval = interval
        self._since_checkpoint = 0.0
        self.total_cost = 0.0
        self.inserted = 0

    # -- cost estimation ------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> int | None:
        defs = {
            name: ast.Const(value=value)
            for name, value in self._model.params.items()
        }
        return abstract_eval(expr, rank=0, nprocs=4, defs=defs)

    def stmt_cost(self, stmt: ast.Stmt) -> float:
        """Estimated cost of *stmt*, loops multiplied by trip count."""
        model = self._model
        if isinstance(stmt, (ast.Assign, ast.Pass)):
            return model.local_statement
        if isinstance(stmt, ast.Compute):
            value = self._eval(stmt.cost)
            return float(value) if value is not None else model.default_compute
        if isinstance(stmt, (ast.Send, ast.Recv, ast.Bcast)):
            return model.local_statement + model.message_delay
        if isinstance(stmt, ast.Checkpoint):
            return model.checkpoint_overhead
        if isinstance(stmt, ast.If):
            return max(
                self.block_cost(stmt.then_block), self.block_cost(stmt.else_block)
            )
        if isinstance(stmt, (ast.While, ast.For)):
            body = stmt.body
            return self._loop_trips(stmt) * self.block_cost(body)
        raise TypeError(f"unknown statement node: {stmt!r}")

    def block_cost(self, block: ast.Block) -> float:
        return sum(self.stmt_cost(s) for s in block.statements)

    def _loop_trips(self, stmt: ast.While | ast.For) -> int:
        if isinstance(stmt, ast.For):
            value = self._eval(stmt.count)
            if value is not None and value >= 0:
                return value
        if isinstance(stmt, ast.While):
            bound = _while_trip_bound(stmt, self._eval)
            if bound is not None:
                return bound
        return self._model.default_loop_trips

    # -- insertion --------------------------------------------------------------

    def walk_block(self, block: ast.Block) -> None:
        position = 0
        while position < len(block.statements):
            stmt = block.statements[position]
            if isinstance(stmt, ast.Checkpoint):
                self._since_checkpoint = 0.0
                self.total_cost += self._model.checkpoint_overhead
                position += 1
                continue
            if isinstance(stmt, (ast.While, ast.For)):
                trips = self._loop_trips(stmt)
                body_cost = self.block_cost(stmt.body)
                if body_cost >= self._interval:
                    # Expensive body: checkpoint inside the loop.
                    self.walk_block(stmt.body)
                    self.total_cost += trips * self.block_cost(stmt.body)
                    self._since_checkpoint = 0.0
                    position += 1
                    continue
                loop_cost = trips * body_cost
                if (
                    self._since_checkpoint + loop_cost >= self._interval
                    and loop_cost >= self._interval
                ):
                    # The loop as a whole spans several intervals: put a
                    # checkpoint at the body head so each iteration batch
                    # starts from a fresh interval.
                    checkpoint = ast.Checkpoint(line=stmt.line)
                    stmt.body.statements.insert(0, checkpoint)
                    self.inserted += 1
                    self.total_cost += loop_cost
                    self._since_checkpoint = 0.0
                    position += 1
                    continue
                inserted_here = self._advance(loop_cost, block, position)
                position += 1 + inserted_here
                continue
            if isinstance(stmt, ast.If):
                cost = self.stmt_cost(stmt)
                if cost >= self._interval:
                    # An expensive branch deserves checkpoints inside it;
                    # both arms start from the same accumulated interval
                    # and the join conservatively keeps the larger
                    # leftover. The balancing pass evens out the counts.
                    saved = self._since_checkpoint
                    self.walk_block(stmt.then_block)
                    then_after = self._since_checkpoint
                    self._since_checkpoint = saved
                    self.walk_block(stmt.else_block)
                    self._since_checkpoint = max(then_after, self._since_checkpoint)
                    position += 1
                    continue
                inserted_here = self._advance(cost, block, position)
                position += 1 + inserted_here
                continue
            cost = self.stmt_cost(stmt)
            inserted_here = self._advance(cost, block, position)
            position += 1 + inserted_here
        return None

    def _advance(self, cost: float, block: ast.Block, position: int) -> int:
        """Account *cost*; insert a checkpoint before this statement if
        the running interval overflows. Returns 1 if inserted."""
        self.total_cost += cost
        if self._since_checkpoint + cost >= self._interval:
            checkpoint = ast.Checkpoint(line=block.statements[position].line)
            block.statements.insert(position, checkpoint)
            self.inserted += 1
            self.total_cost += self._model.checkpoint_overhead
            self._since_checkpoint = cost
            return 1
        self._since_checkpoint += cost
        return 0


def _while_trip_bound(stmt: ast.While, evaluator) -> int | None:
    """Recognise the idiom ``while i < BOUND`` with ``i = i + 1`` steps."""
    cond = stmt.cond
    if not (isinstance(cond, ast.BinOp) and cond.op in ("<", "<=")):
        return None
    bound = evaluator(cond.right)
    if bound is None or bound < 0:
        return None
    return bound + (1 if cond.op == "<=" else 2)


# ---------------------------------------------------------------------------
# Path balancing
# ---------------------------------------------------------------------------


def _balance_block(block: ast.Block) -> int:
    """Ensure every path through *block* has the same checkpoint count.

    Recursively balances nested constructs, then pads the lighter
    branch of each ``if`` with trailing checkpoints. Returns the number
    of checkpoints added. Loops need no padding at this level because a
    path traverses the body exactly once in the enumeration convention.
    """
    added = 0
    for stmt in block.statements:
        if isinstance(stmt, ast.If):
            added += _balance_block(stmt.then_block)
            added += _balance_block(stmt.else_block)
            then_count = _path_checkpoints(stmt.then_block)
            else_count = _path_checkpoints(stmt.else_block)
            lighter = stmt.else_block if then_count > else_count else stmt.then_block
            for _ in range(abs(then_count - else_count)):
                lighter.statements.append(ast.Checkpoint(line=stmt.line))
                added += 1
        elif isinstance(stmt, (ast.While, ast.For)):
            added += _balance_block(stmt.body)
    return added


def _path_checkpoints(block: ast.Block) -> int:
    """Checkpoint count along any path through *block* (post-balance,
    every path agrees, so taking the then-branch is representative)."""
    count = 0
    for stmt in block.statements:
        if isinstance(stmt, ast.Checkpoint):
            count += 1
        elif isinstance(stmt, ast.If):
            count += _path_checkpoints(stmt.then_block)
        elif isinstance(stmt, (ast.While, ast.For)):
            count += _path_checkpoints(stmt.body)
    return count
