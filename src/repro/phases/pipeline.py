"""End-to-end offline transformation (all three phases).

:func:`transform` is the library's headline entry point: feed it a
MiniMP program (with or without checkpoint statements) and get back a
program whose every straight cut of checkpoints is a recovery line in
every execution — the paper's coordination-free checkpointing protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attributes.contradiction import Universe
from repro.lang import ast_nodes as ast
from repro.phases.insertion import CostModel, InsertionPlan, insert_checkpoints
from repro.phases.placement import PlacementResult, ensure_recovery_lines
from repro.phases.verification import VerificationResult, verify_program


@dataclass
class TransformResult:
    """Everything the offline pipeline produced.

    Attributes:
        program: The final transformed program.
        insertion: Phase I's plan (None when the input already had
            checkpoints and insertion was skipped).
        placement: Phase III's result, including the moves performed.
        verification: The final Condition 1 check of the *output*
            program — always ``ok`` when transform returns.
    """

    program: ast.Program
    insertion: InsertionPlan | None
    placement: PlacementResult
    verification: VerificationResult


def transform(
    program: ast.Program,
    cost_model: CostModel = CostModel(),
    loop_optimization: bool = False,
    universe: Universe = Universe(),
    force_insertion: bool = False,
    cache=None,
) -> TransformResult:
    """Apply Phases I–III to *program* (never mutated) and verify.

    Phase I runs only when the program has no checkpoint statements
    (it is optional per the paper) unless *force_insertion* is set.

    *cache* is an optional
    :class:`~repro.campaign.cache.TransformCache`: when the same
    program has already been transformed under the same cost model,
    universe, and flags, the stored result is returned without
    re-running any phase (and the cache's hit counter ticks —
    observable through an attached metrics registry).
    """
    key: str | None = None
    if cache is not None:
        key = cache.key_for(
            program, cost_model, loop_optimization, universe, force_insertion
        )
        cached = cache.get(key)
        if cached is not None:
            return cached
    insertion: InsertionPlan | None = None
    current = program
    if force_insertion or ast.count_statements(program, ast.Checkpoint) == 0:
        insertion = insert_checkpoints(program, model=cost_model)
        current = insertion.program
    placement = ensure_recovery_lines(
        current, loop_optimization=loop_optimization, universe=universe
    )
    verification = verify_program(
        placement.program,
        include_back_edge_paths=not loop_optimization,
    )
    verification.raise_if_failed()
    result = TransformResult(
        program=placement.program,
        insertion=insertion,
        placement=placement,
        verification=verification,
    )
    if cache is not None and key is not None:
        cache.put(key, result)
    return result
