"""End-to-end offline transformation (all three phases).

:func:`transform` is the library's headline entry point: feed it a
MiniMP program (with or without checkpoint statements) and get back a
program whose every straight cut of checkpoints is a recovery line in
every execution — the paper's coordination-free checkpointing protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attributes.contradiction import Universe
from repro.lang import ast_nodes as ast
from repro.obs.spans import NULL_TRACKER
from repro.phases.insertion import CostModel, InsertionPlan, insert_checkpoints
from repro.phases.matching import build_extended_cfg
from repro.phases.placement import PlacementResult, ensure_recovery_lines
from repro.phases.verification import VerificationResult, check_condition1


@dataclass
class TransformResult:
    """Everything the offline pipeline produced.

    Attributes:
        program: The final transformed program.
        insertion: Phase I's plan (None when the input already had
            checkpoints and insertion was skipped).
        placement: Phase III's result, including the moves performed.
        verification: The final Condition 1 check of the *output*
            program — always ``ok`` when transform returns.
    """

    program: ast.Program
    insertion: InsertionPlan | None
    placement: PlacementResult
    verification: VerificationResult


def transform(
    program: ast.Program,
    cost_model: CostModel = CostModel(),
    loop_optimization: bool = False,
    universe: Universe = Universe(),
    force_insertion: bool = False,
    cache=None,
    tracker=None,
) -> TransformResult:
    """Apply Phases I–III to *program* (never mutated) and verify.

    Phase I runs only when the program has no checkpoint statements
    (it is optional per the paper) unless *force_insertion* is set.

    *cache* is an optional
    :class:`~repro.campaign.cache.TransformCache`: when the same
    program has already been transformed under the same cost model,
    universe, and flags, the stored result is returned without
    re-running any phase (and the cache's hit counter ticks —
    observable through an attached metrics registry).

    *tracker* is an optional :class:`~repro.obs.spans.SpanTracker`;
    when given, each phase runs inside a span (``phase1.insertion``,
    ``phase2.matching``, ``phase3.placement``, ``phase4.verification``)
    plus a ``cache.lookup`` span with an ``outcome`` field, so
    ``repro trace chrome`` shows where transform time goes.
    """
    tracker = tracker if tracker is not None else NULL_TRACKER
    key: str | None = None
    if cache is not None:
        key = cache.key_for(
            program, cost_model, loop_optimization, universe, force_insertion
        )
        with tracker.span("cache.lookup") as lookup:
            cached = cache.get(key)
            lookup.fields["outcome"] = "hit" if cached is not None else "miss"
        if cached is not None:
            return cached
    insertion: InsertionPlan | None = None
    current = program
    if force_insertion or ast.count_statements(program, ast.Checkpoint) == 0:
        with tracker.span("phase1.insertion"):
            insertion = insert_checkpoints(program, model=cost_model)
        current = insertion.program
    with tracker.span("phase3.placement"):
        placement = ensure_recovery_lines(
            current, loop_optimization=loop_optimization, universe=universe
        )
    # verify_program inlined so Phases II and IV time separately.
    with tracker.span("phase2.matching"):
        ext = build_extended_cfg(placement.program)
    with tracker.span("phase4.verification"):
        verification = check_condition1(
            ext, include_back_edge_paths=not loop_optimization
        )
    verification.raise_if_failed()
    result = TransformResult(
        program=placement.program,
        insertion=insertion,
        placement=placement,
        verification=verification,
    )
    if cache is not None and key is not None:
        cache.put(key, result)
    return result
