"""Condition 1 / Theorem 3.2 verification (paper §3.3).

Condition 1: for every ``i`` and every collection ``S_i`` of checkpoint
nodes, there is no path in the extended CFG between any two (distinct)
members of ``S_i``. Theorem 3.2 states this is necessary and sufficient
for every straight cut ``R_i`` to be a recovery line in every further
execution.

Two modes:

- ``include_back_edge_paths=True`` (paper default): paths may traverse
  the CFG's backward edges. The Figure 6 discussion shows such paths
  are dangerous in general, so the conservative checker forbids them.
- ``include_back_edge_paths=False`` (the paper's loop optimisation):
  backward edges are removed before searching, so only same-iteration
  paths count; cross-iteration orderings are instead guaranteed by the
  message order itself (validated empirically by the simulator tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.dominators import find_back_edges
from repro.cfg.graph import ExtendedCFG
from repro.cfg.paths import (
    CheckpointEnumeration,
    CheckpointIndexing,
    enumerate_checkpoints,
    index_checkpoints,
)
from repro.errors import VerificationError
from repro.lang import ast_nodes as ast


@dataclass(frozen=True)
class Violation:
    """A Condition 1 violation: a path between two same-index nodes.

    ``index`` is the paper's ``i`` (1-based). ``path`` is the offending
    node-id path from ``src`` to ``dst`` in the extended CFG;
    ``uses_back_edge`` records whether it wraps around a loop.
    """

    index: int
    src: int
    dst: int
    path: tuple[int, ...]
    uses_back_edge: bool

    def describe(self, ext: ExtendedCFG) -> str:
        """Human-readable rendering of the offending path."""
        nodes = " -> ".join(repr(ext.cfg.node(n)) for n in self.path)
        return f"S_{self.index}: {nodes}"


@dataclass
class VerificationResult:
    """Outcome of a Condition 1 check."""

    ok: bool
    violations: tuple[Violation, ...] = ()
    enumeration: CheckpointEnumeration | CheckpointIndexing | None = None
    balanced: bool = True
    reason: str = ""

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.VerificationError` unless ok."""
        if not self.ok:
            raise VerificationError(self.reason or "Condition 1 violated")


def check_condition1(
    ext: ExtendedCFG,
    include_back_edge_paths: bool = True,
    first_only: bool = False,
) -> VerificationResult:
    """Check Condition 1 on the extended CFG *ext*.

    Returns every violation found (or only the first when *first_only*),
    so Phase III can pick one to repair and callers can report all.

    The decision is made without enumerating paths: the ``S_i``
    collections come from :func:`~repro.cfg.paths.index_checkpoints`
    and pairwise reachability between same-index checkpoints is a
    bitset transitive closure over the extended CFG's SCC condensation
    — exact and polynomial where the old checker was exponential. Path
    *search* survives only to produce the human-readable witness path
    of each violation, so a verdict of ``ok`` never walks a single
    path. Violations are discovered in the same order as the
    enumerating checker (ascending index, then sorted members, source
    before destination), so downstream phases see identical results;
    :func:`check_condition1_enumerated` keeps the old procedure for
    differential testing.
    """
    indexing = index_checkpoints(ext.cfg)
    if not indexing.balanced:
        return VerificationResult(
            ok=False,
            enumeration=indexing,
            balanced=False,
            reason=(
                "paths carry different checkpoint counts "
                f"{list(indexing.path_counts)}; straight cuts are undefined"
            ),
        )
    back_edges = {(e.src, e.dst) for e in find_back_edges(ext.cfg)}
    exclude = () if include_back_edge_paths else tuple(back_edges)
    reach = _checkpoint_reachability(ext, frozenset(exclude))
    violations: list[Violation] = []
    for index, column in enumerate(indexing.columns, start=1):
        members = sorted(column)
        for src in members:
            src_reach = reach.get(src, 0)
            for dst in members:
                if src == dst:
                    continue
                if not src_reach >> reach.bit(dst) & 1:
                    continue
                path = ext.find_path(src, dst, exclude_back_edges=exclude)
                assert path is not None, "closure and witness search disagree"
                uses_back = any(
                    (path[k], path[k + 1]) in back_edges
                    for k in range(len(path) - 1)
                )
                violations.append(
                    Violation(
                        index=index,
                        src=src,
                        dst=dst,
                        path=tuple(path),
                        uses_back_edge=uses_back,
                    )
                )
                if first_only:
                    return _result(violations, indexing, ext)
    return _result(violations, indexing, ext)


class _ReachMasks(dict):
    """node id -> bitmask of checkpoint nodes reachable from it.

    ``bit(node_id)`` maps a checkpoint node to its bit position. A set
    bit means reachable via *one or more* edges — except for the node's
    own bit, which is also set when it merely contains itself; callers
    comparing distinct nodes (Condition 1 always does) never read it.
    """

    def __init__(self, bits: dict[int, int]) -> None:
        super().__init__()
        self._bits = bits

    def bit(self, node_id: int) -> int:
        return self._bits[node_id]


def _checkpoint_reachability(
    ext: ExtendedCFG, excluded: frozenset[tuple[int, int]]
) -> _ReachMasks:
    """Per-node bitmasks of reachable checkpoint nodes.

    Runs an iterative Tarjan SCC pass over the extended CFG (control
    edges minus *excluded*, plus message edges — possibly cyclic) and
    accumulates, per component in reverse topological order, the union
    of its own checkpoint bits and those of every reachable component.
    One arbitrary-precision int per node: O(V·E/64) bit work total.
    """
    cfg = ext.cfg
    succ: dict[int, list[int]] = {
        node.node_id: ext.successors(node.node_id, excluded)
        for node in cfg.nodes()
    }
    bits = {
        node.node_id: position
        for position, node in enumerate(cfg.checkpoint_nodes())
    }

    # Iterative Tarjan: components are emitted descendants-first, so a
    # single pass over the emission order closes the reachability sets.
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    scc_stack: list[int] = []
    comp_of: dict[int, int] = {}
    components: list[list[int]] = []
    counter = 0
    for root in succ:
        if root in index_of:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                scc_stack.append(node)
                on_stack.add(node)
            advanced = False
            children = succ[node]
            while child_pos < len(children):
                child = children[child_pos]
                child_pos += 1
                if child not in index_of:
                    work[-1] = (node, child_pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    comp_of[member] = len(components)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    comp_mask = [0] * len(components)
    for comp_id, component in enumerate(components):
        mask = 0
        for member in component:
            if member in bits:
                mask |= 1 << bits[member]
            for child in succ[member]:
                child_comp = comp_of[child]
                if child_comp != comp_id:
                    mask |= comp_mask[child_comp]
        comp_mask[comp_id] = mask

    reach = _ReachMasks(bits)
    for node_id in succ:
        comp_id = comp_of[node_id]
        if len(components[comp_id]) > 1:
            # Non-trivial SCC: every member reaches every member.
            reach[node_id] = comp_mask[comp_id]
        else:
            mask = 0
            for child in succ[node_id]:
                child_comp = comp_of[child]
                mask |= comp_mask[child_comp]
                if child in bits:
                    mask |= 1 << bits[child]
            reach[node_id] = mask
    return reach


def check_condition1_enumerated(
    ext: ExtendedCFG,
    include_back_edge_paths: bool = True,
    first_only: bool = False,
) -> VerificationResult:
    """The original path-enumerating Condition 1 checker.

    Kept as the differential-testing and benchmarking reference for
    :func:`check_condition1`; the two must agree on every program.
    """
    enumeration = enumerate_checkpoints(ext.cfg)
    if not enumeration.balanced:
        counts = sorted({len(seq) for seq in enumeration.per_path})
        return VerificationResult(
            ok=False,
            enumeration=enumeration,
            balanced=False,
            reason=(
                "paths carry different checkpoint counts "
                f"{counts}; straight cuts are undefined"
            ),
        )
    back_edges = {(e.src, e.dst) for e in find_back_edges(ext.cfg)}
    exclude = () if include_back_edge_paths else tuple(back_edges)
    violations: list[Violation] = []
    for index, column in enumerate(enumeration.columns, start=1):
        members = sorted(column)
        for src in members:
            for dst in members:
                if src == dst:
                    continue
                path = ext.find_path(src, dst, exclude_back_edges=exclude)
                if path is None:
                    continue
                uses_back = any(
                    (path[k], path[k + 1]) in back_edges
                    for k in range(len(path) - 1)
                )
                violations.append(
                    Violation(
                        index=index,
                        src=src,
                        dst=dst,
                        path=tuple(path),
                        uses_back_edge=uses_back,
                    )
                )
                if first_only:
                    return _result(violations, enumeration, ext)
    return _result(violations, enumeration, ext)


def _result(
    violations: list[Violation],
    enumeration: CheckpointEnumeration | CheckpointIndexing,
    ext: ExtendedCFG,
) -> VerificationResult:
    if not violations:
        return VerificationResult(ok=True, enumeration=enumeration)
    return VerificationResult(
        ok=False,
        violations=tuple(violations),
        enumeration=enumeration,
        reason="; ".join(v.describe(ext) for v in violations[:3]),
    )


def verify_program(
    program: ast.Program,
    include_back_edge_paths: bool = True,
) -> VerificationResult:
    """Build the extended CFG of *program* and check Condition 1."""
    from repro.phases.matching import build_extended_cfg

    ext = build_extended_cfg(program)
    return check_condition1(
        ext, include_back_edge_paths=include_back_edge_paths
    )


@dataclass
class OrderingConstraint:
    """The paper's loop optimisation artifact.

    When a violating path between ``earlier`` and ``later`` exists only
    through backward edges, instead of hoisting the checkpoint out of
    the loop the paper requires that, in every execution, the
    checkpoint instance due to ``earlier`` completes before the one due
    to ``later``. The constraint is discharged by message order (no
    coordination); the simulator's trace checker asserts it.
    """

    earlier: int
    later: int
    index: int


def loop_ordering_constraints(
    ext: ExtendedCFG,
) -> tuple[OrderingConstraint, ...]:
    """Derive the ordering constraints of back-edge-only violations."""
    full = check_condition1(ext, include_back_edge_paths=True)
    same_iter = check_condition1(ext, include_back_edge_paths=False)
    if not full.balanced:
        return ()
    same_iter_pairs = {(v.index, v.src, v.dst) for v in same_iter.violations}
    constraints = [
        OrderingConstraint(earlier=v.dst, later=v.src, index=v.index)
        for v in full.violations
        if (v.index, v.src, v.dst) not in same_iter_pairs
    ]
    return tuple(constraints)
