"""Condition 1 / Theorem 3.2 verification (paper §3.3).

Condition 1: for every ``i`` and every collection ``S_i`` of checkpoint
nodes, there is no path in the extended CFG between any two (distinct)
members of ``S_i``. Theorem 3.2 states this is necessary and sufficient
for every straight cut ``R_i`` to be a recovery line in every further
execution.

Two modes:

- ``include_back_edge_paths=True`` (paper default): paths may traverse
  the CFG's backward edges. The Figure 6 discussion shows such paths
  are dangerous in general, so the conservative checker forbids them.
- ``include_back_edge_paths=False`` (the paper's loop optimisation):
  backward edges are removed before searching, so only same-iteration
  paths count; cross-iteration orderings are instead guaranteed by the
  message order itself (validated empirically by the simulator tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.dominators import find_back_edges
from repro.cfg.graph import ExtendedCFG
from repro.cfg.paths import CheckpointEnumeration, enumerate_checkpoints
from repro.errors import VerificationError
from repro.lang import ast_nodes as ast


@dataclass(frozen=True)
class Violation:
    """A Condition 1 violation: a path between two same-index nodes.

    ``index`` is the paper's ``i`` (1-based). ``path`` is the offending
    node-id path from ``src`` to ``dst`` in the extended CFG;
    ``uses_back_edge`` records whether it wraps around a loop.
    """

    index: int
    src: int
    dst: int
    path: tuple[int, ...]
    uses_back_edge: bool

    def describe(self, ext: ExtendedCFG) -> str:
        """Human-readable rendering of the offending path."""
        nodes = " -> ".join(repr(ext.cfg.node(n)) for n in self.path)
        return f"S_{self.index}: {nodes}"


@dataclass
class VerificationResult:
    """Outcome of a Condition 1 check."""

    ok: bool
    violations: tuple[Violation, ...] = ()
    enumeration: CheckpointEnumeration | None = None
    balanced: bool = True
    reason: str = ""

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.VerificationError` unless ok."""
        if not self.ok:
            raise VerificationError(self.reason or "Condition 1 violated")


def check_condition1(
    ext: ExtendedCFG,
    include_back_edge_paths: bool = True,
    first_only: bool = False,
) -> VerificationResult:
    """Check Condition 1 on the extended CFG *ext*.

    Returns every violation found (or only the first when *first_only*),
    so Phase III can pick one to repair and callers can report all.
    """
    enumeration = enumerate_checkpoints(ext.cfg)
    if not enumeration.balanced:
        counts = sorted({len(seq) for seq in enumeration.per_path})
        return VerificationResult(
            ok=False,
            enumeration=enumeration,
            balanced=False,
            reason=(
                "paths carry different checkpoint counts "
                f"{counts}; straight cuts are undefined"
            ),
        )
    back_edges = {(e.src, e.dst) for e in find_back_edges(ext.cfg)}
    exclude = () if include_back_edge_paths else tuple(back_edges)
    violations: list[Violation] = []
    for index, column in enumerate(enumeration.columns, start=1):
        members = sorted(column)
        for src in members:
            for dst in members:
                if src == dst:
                    continue
                path = ext.find_path(src, dst, exclude_back_edges=exclude)
                if path is None:
                    continue
                uses_back = any(
                    (path[k], path[k + 1]) in back_edges
                    for k in range(len(path) - 1)
                )
                violations.append(
                    Violation(
                        index=index,
                        src=src,
                        dst=dst,
                        path=tuple(path),
                        uses_back_edge=uses_back,
                    )
                )
                if first_only:
                    return _result(violations, enumeration, ext)
    return _result(violations, enumeration, ext)


def _result(
    violations: list[Violation],
    enumeration: CheckpointEnumeration,
    ext: ExtendedCFG,
) -> VerificationResult:
    if not violations:
        return VerificationResult(ok=True, enumeration=enumeration)
    return VerificationResult(
        ok=False,
        violations=tuple(violations),
        enumeration=enumeration,
        reason="; ".join(v.describe(ext) for v in violations[:3]),
    )


def verify_program(
    program: ast.Program,
    include_back_edge_paths: bool = True,
) -> VerificationResult:
    """Build the extended CFG of *program* and check Condition 1."""
    from repro.phases.matching import build_extended_cfg

    ext = build_extended_cfg(program)
    return check_condition1(
        ext, include_back_edge_paths=include_back_edge_paths
    )


@dataclass
class OrderingConstraint:
    """The paper's loop optimisation artifact.

    When a violating path between ``earlier`` and ``later`` exists only
    through backward edges, instead of hoisting the checkpoint out of
    the loop the paper requires that, in every execution, the
    checkpoint instance due to ``earlier`` completes before the one due
    to ``later``. The constraint is discharged by message order (no
    coordination); the simulator's trace checker asserts it.
    """

    earlier: int
    later: int
    index: int


def loop_ordering_constraints(
    ext: ExtendedCFG,
) -> tuple[OrderingConstraint, ...]:
    """Derive the ordering constraints of back-edge-only violations."""
    full = check_condition1(ext, include_back_edge_paths=True)
    same_iter = check_condition1(ext, include_back_edge_paths=False)
    if not full.balanced:
        return ()
    same_iter_pairs = {(v.index, v.src, v.dst) for v in same_iter.violations}
    constraints = [
        OrderingConstraint(earlier=v.dst, later=v.src, index=v.index)
        for v in full.violations
        if (v.index, v.src, v.dst) not in same_iter_pairs
    ]
    return tuple(constraints)
