"""Vector clocks.

The standard mechanism for tracking Lamport's happened-before relation
[13] in an ``n``-process system: component ``k`` counts the events of
process ``k`` known to have causally preceded the clock's owner.
Immutable; all operations return new clocks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector clock over a fixed number of processes."""

    components: tuple[int, ...]

    @classmethod
    def zero(cls, n_processes: int) -> "VectorClock":
        """The all-zero clock for *n_processes* processes."""
        if n_processes < 1:
            raise ValueError(f"need at least one process, got {n_processes}")
        return cls(components=(0,) * n_processes)

    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, index: int) -> int:
        return self.components[index]

    def tick(self, process: int) -> "VectorClock":
        """Increment *process*'s own component (a local event)."""
        parts = list(self.components)
        parts[process] += 1
        return _make(tuple(parts))

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (applied on message receipt)."""
        mine, theirs = self.components, other.components
        if len(theirs) != len(mine):
            raise ValueError(
                f"clock size mismatch: {len(mine)} vs {len(theirs)}"
            )
        # Receipt merges run once per delivered message on the engine's
        # hot path. The conditional expression avoids a max() call per
        # component, and returning an existing clock when one side
        # already dominates skips the allocation.
        if mine == theirs:
            return self
        merged = tuple([a if a >= b else b for a, b in zip(mine, theirs)])
        if merged == mine:
            return self
        if merged == theirs:
            return other
        return _make(merged)

    def receive(self, other: "VectorClock", rank: int) -> "VectorClock":
        """``tick(rank)`` followed by ``merge(other)``, fused in one pass.

        The receipt rule for vector clocks: bump the receiver's own
        component, then take the component-wise maximum with the
        sender's attached clock. Fusing the two saves the intermediate
        ticked clock's allocation on the engine's delivery path; the
        result is exactly ``self.tick(rank).merge(other)``.
        """
        mine, theirs = self.components, other.components
        if len(theirs) != len(mine):
            raise ValueError(
                f"clock size mismatch: {len(mine)} vs {len(theirs)}"
            )
        parts = [a if a >= b else b for a, b in zip(mine, theirs)]
        ticked = mine[rank] + 1
        if ticked > parts[rank]:
            parts[rank] = ticked
        return _make(tuple(parts))

    def happened_before(self, other: "VectorClock") -> bool:
        """True iff ``self -> other`` in the happened-before order:
        ``self <= other`` component-wise with at least one strict."""
        if len(other) != len(self):
            raise ValueError(
                f"clock size mismatch: {len(self)} vs {len(other)}"
            )
        at_most = all(a <= b for a, b in zip(self.components, other.components))
        return at_most and self.components != other.components

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True iff neither clock happened before the other."""
        return not self.happened_before(other) and not other.happened_before(self)


def _make(components: tuple) -> VectorClock:
    """Build a clock without the frozen-dataclass ``__init__``.

    ``tick``/``receive`` run two to three times per traced event; the
    generated frozen ``__init__`` (``object.__setattr__``) costs ~3x a
    direct ``__dict__`` store. Semantically identical: the class has no
    ``__slots__`` and equality/hash read the same attribute.
    """
    clock = VectorClock.__new__(VectorClock)
    clock.__dict__["components"] = components
    return clock
