"""Vector clocks.

The standard mechanism for tracking Lamport's happened-before relation
[13] in an ``n``-process system: component ``k`` counts the events of
process ``k`` known to have causally preceded the clock's owner.
Immutable; all operations return new clocks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector clock over a fixed number of processes."""

    components: tuple[int, ...]

    @classmethod
    def zero(cls, n_processes: int) -> "VectorClock":
        """The all-zero clock for *n_processes* processes."""
        if n_processes < 1:
            raise ValueError(f"need at least one process, got {n_processes}")
        return cls(components=(0,) * n_processes)

    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, index: int) -> int:
        return self.components[index]

    def tick(self, process: int) -> "VectorClock":
        """Increment *process*'s own component (a local event)."""
        parts = list(self.components)
        parts[process] += 1
        return VectorClock(tuple(parts))

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (applied on message receipt)."""
        mine, theirs = self.components, other.components
        if len(theirs) != len(mine):
            raise ValueError(
                f"clock size mismatch: {len(mine)} vs {len(theirs)}"
            )
        # Receipt merges run once per delivered message on the engine's
        # hot path; most components agree, so branch on the cheap tuple
        # comparisons before paying for an elementwise max.
        if mine == theirs:
            return self
        if all(a >= b for a, b in zip(mine, theirs)):
            return self
        if all(b >= a for a, b in zip(mine, theirs)):
            return other
        return VectorClock(tuple(map(max, mine, theirs)))

    def happened_before(self, other: "VectorClock") -> bool:
        """True iff ``self -> other`` in the happened-before order:
        ``self <= other`` component-wise with at least one strict."""
        if len(other) != len(self):
            raise ValueError(
                f"clock size mismatch: {len(self)} vs {len(other)}"
            )
        at_most = all(a <= b for a, b in zip(self.components, other.components))
        return at_most and self.components != other.components

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True iff neither clock happened before the other."""
        return not self.happened_before(other) and not other.happened_before(self)
