"""Zigzag paths and useless checkpoints (Netzer & Xu, 1995).

The classical theory behind communication-induced checkpointing — the
third family in the paper's Section 1 taxonomy. A *zigzag path* from
checkpoint ``A`` to checkpoint ``B`` is a message chain
``m₁, …, mₙ`` where

- ``m₁`` is sent by ``A``'s process after ``A``;
- each ``mᵢ₊₁`` is sent by the process that received ``mᵢ``, in the
  same or a later checkpoint interval (possibly *before* ``mᵢ`` was
  received — that backward hop is the "zig"); and
- ``mₙ`` is received by ``B``'s process before ``B``.

**Netzer-Xu theorem**: two checkpoints can both belong to some
consistent global snapshot iff there is no zigzag path between them (in
either direction); a checkpoint is *useless* — part of no consistent
snapshot at all — iff it lies on a zigzag cycle.

The test suite validates the theorem on simulated traces against a
brute-force search over all (boundary-augmented) cuts, tying this
module to the happened-before machinery through an independent
characterisation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.causality.cuts import checkpoints_by_process
from repro.causality.records import EventKind, TraceEvent


@dataclass(frozen=True)
class _MessageHop:
    """One message, located by interval indices.

    ``send_interval``/``recv_interval`` count the checkpoints taken by
    the respective process *before* the send/receive event, so interval
    ``k`` is the execution between the k-th and (k+1)-th checkpoints.
    """

    message_id: int
    sender: int
    send_interval: int
    receiver: int
    recv_interval: int


def _interval_index(
    grouped: dict[int, list[TraceEvent]], event: TraceEvent
) -> int:
    history = grouped.get(event.process, [])
    return sum(1 for c in history if c.seq < event.seq)


def _message_hops(events: list[TraceEvent]) -> list[_MessageHop]:
    grouped = checkpoints_by_process(events)
    sends: dict[int, TraceEvent] = {}
    hops: list[_MessageHop] = []
    for event in events:
        if event.kind is EventKind.SEND and event.message_id is not None:
            sends[event.message_id] = event
    for event in events:
        if event.kind is not EventKind.RECV or event.message_id is None:
            continue
        send = sends.get(event.message_id)
        if send is None:
            continue
        hops.append(
            _MessageHop(
                message_id=event.message_id,
                sender=send.process,
                send_interval=_interval_index(grouped, send),
                receiver=event.process,
                recv_interval=_interval_index(grouped, event),
            )
        )
    return hops


class ZigzagAnalysis:
    """Zigzag reachability between the checkpoints of one trace.

    Checkpoints are identified as ``(process, number)`` with 1-based
    dynamic numbers (matching
    :attr:`~repro.causality.records.TraceEvent.checkpoint_number`).
    Interval ``k`` of a process runs from its k-th to its (k+1)-th
    checkpoint; checkpoint ``(p, i)`` sits between intervals ``i-1``
    and ``i``.
    """

    def __init__(self, events: list[TraceEvent]) -> None:
        self._events = list(events)
        self._hops = _message_hops(self._events)
        # hop adjacency: hop h can be followed by hop h' iff h' is sent
        # by h's receiver in interval >= h's receive interval.
        self._by_sender: dict[int, list[_MessageHop]] = defaultdict(list)
        for hop in self._hops:
            self._by_sender[hop.sender].append(hop)
        self._reachable_cache: dict[int, frozenset[int]] = {}

    # -- core reachability ----------------------------------------------------

    def _hop_index(self) -> dict[int, _MessageHop]:
        return {id(h): h for h in self._hops}

    def _closure_from(self, start: _MessageHop) -> frozenset[int]:
        """ids of hops zigzag-reachable from *start* (inclusive)."""
        key = id(start)
        cached = self._reachable_cache.get(key)
        if cached is not None:
            return cached
        seen = {key}
        stack = [start]
        while stack:
            hop = stack.pop()
            for nxt in self._by_sender.get(hop.receiver, ()):
                if nxt.send_interval >= hop.recv_interval and id(nxt) not in seen:
                    seen.add(id(nxt))
                    stack.append(nxt)
        result = frozenset(seen)
        self._reachable_cache[key] = result
        return result

    def zigzag_path_exists(
        self, from_checkpoint: tuple[int, int], to_checkpoint: tuple[int, int]
    ) -> bool:
        """Is there a zigzag path from one checkpoint to another?

        ``from_checkpoint``/``to_checkpoint`` are ``(process, number)``.
        A path must start with a message sent by the source's process in
        interval ≥ its number, and end with a message received by the
        target's process in interval < its number.
        """
        src_proc, src_number = from_checkpoint
        dst_proc, dst_number = to_checkpoint
        starts = [
            hop
            for hop in self._by_sender.get(src_proc, ())
            if hop.send_interval >= src_number
        ]
        hop_by_id = self._hop_index()
        for start in starts:
            for hop_id in self._closure_from(start):
                hop = hop_by_id[hop_id]
                if hop.receiver == dst_proc and hop.recv_interval < dst_number:
                    return True
        return False

    def on_zigzag_cycle(self, checkpoint: tuple[int, int]) -> bool:
        """Netzer-Xu uselessness: a zigzag path from a checkpoint to
        itself means it belongs to no consistent snapshot."""
        return self.zigzag_path_exists(checkpoint, checkpoint)

    def useless_checkpoints(self) -> list[tuple[int, int]]:
        """All (process, number) checkpoints lying on zigzag cycles."""
        useless = []
        for process, history in checkpoints_by_process(self._events).items():
            for event in history:
                key = (process, event.checkpoint_number)
                if self.on_zigzag_cycle(key):
                    useless.append(key)
        return sorted(useless)

    def zz_consistent(
        self, a: tuple[int, int], b: tuple[int, int]
    ) -> bool:
        """No zigzag path in either direction (the theorem's condition
        for the pair to belong to some consistent snapshot)."""
        if a == b:
            return not self.on_zigzag_cycle(a)
        return not (
            self.zigzag_path_exists(a, b) or self.zigzag_path_exists(b, a)
        )
