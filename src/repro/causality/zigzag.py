"""Zigzag paths and useless checkpoints (Netzer & Xu, 1995).

The classical theory behind communication-induced checkpointing — the
third family in the paper's Section 1 taxonomy. A *zigzag path* from
checkpoint ``A`` to checkpoint ``B`` is a message chain
``m₁, …, mₙ`` where

- ``m₁`` is sent by ``A``'s process after ``A``;
- each ``mᵢ₊₁`` is sent by the process that received ``mᵢ``, in the
  same or a later checkpoint interval (possibly *before* ``mᵢ`` was
  received — that backward hop is the "zig"); and
- ``mₙ`` is received by ``B``'s process before ``B``.

**Netzer-Xu theorem**: two checkpoints can both belong to some
consistent global snapshot iff there is no zigzag path between them (in
either direction); a checkpoint is *useless* — part of no consistent
snapshot at all — iff it lies on a zigzag cycle.

The test suite validates the theorem on simulated traces against a
brute-force search over all (boundary-augmented) cuts, tying this
module to the happened-before machinery through an independent
characterisation.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass

from repro.causality.cuts import checkpoints_by_process
from repro.causality.records import EventKind, TraceEvent


@dataclass(frozen=True)
class _MessageHop:
    """One message, located by interval indices.

    ``send_interval``/``recv_interval`` count the checkpoints taken by
    the respective process *before* the send/receive event, so interval
    ``k`` is the execution between the k-th and (k+1)-th checkpoints.
    """

    message_id: int
    sender: int
    send_interval: int
    receiver: int
    recv_interval: int


def _interval_index(
    grouped: dict[int, list[TraceEvent]], event: TraceEvent
) -> int:
    history = grouped.get(event.process, [])
    return sum(1 for c in history if c.seq < event.seq)


def _message_hops(events: list[TraceEvent]) -> list[_MessageHop]:
    grouped = checkpoints_by_process(events)
    sends: dict[int, TraceEvent] = {}
    hops: list[_MessageHop] = []
    for event in events:
        if event.kind is EventKind.SEND and event.message_id is not None:
            sends[event.message_id] = event
    for event in events:
        if event.kind is not EventKind.RECV or event.message_id is None:
            continue
        send = sends.get(event.message_id)
        if send is None:
            continue
        hops.append(
            _MessageHop(
                message_id=event.message_id,
                sender=send.process,
                send_interval=_interval_index(grouped, send),
                receiver=event.process,
                recv_interval=_interval_index(grouped, event),
            )
        )
    return hops


class ZigzagAnalysis:
    """Zigzag reachability between the checkpoints of one trace.

    Checkpoints are identified as ``(process, number)`` with 1-based
    dynamic numbers (matching
    :attr:`~repro.causality.records.TraceEvent.checkpoint_number`).
    Interval ``k`` of a process runs from its k-th to its (k+1)-th
    checkpoint; checkpoint ``(p, i)`` sits between intervals ``i-1``
    and ``i``.
    """

    def __init__(self, events: list[TraceEvent]) -> None:
        self._events = list(events)
        self._hops = _message_hops(self._events)
        # hop adjacency: hop h can be followed by hop h' iff h' is sent
        # by h's receiver in interval >= h's receive interval.
        self._by_sender: dict[int, list[_MessageHop]] = defaultdict(list)
        for hop in self._hops:
            self._by_sender[hop.sender].append(hop)
        self._reachable_cache: dict[int, frozenset[int]] = {}
        # Lazy one-time closure machinery: one bit per hop, built on the
        # first reachability query, so every query after that is a mask
        # intersection instead of a graph walk.
        self._closure_masks: list[int] | None = None
        self._hop_pos: dict[int, int] = {}
        self._start_mask_cache: dict[tuple[int, int], int] = {}
        self._recv_mask_cache: dict[tuple[int, int], int] = {}

    # -- core reachability ----------------------------------------------------

    def _ensure_closures(self) -> list[int]:
        """Build (once) the per-hop zigzag transitive-closure bitmasks.

        Hops get bit positions in trace order; the adjacency is condensed
        with an iterative Tarjan SCC pass and closed in one sweep over
        the components (Tarjan emits them descendants-first). The mask of
        hop ``i`` is *inclusive* of bit ``i``, matching the historical
        :meth:`_closure_from` contract. Total bit work is O(H·E/64)
        where the old per-query DFS walk was O(H·E) per start hop.
        """
        if self._closure_masks is not None:
            return self._closure_masks
        hops = self._hops
        self._hop_pos = {id(hop): position for position, hop in enumerate(hops)}
        # Successors of hop h: hops sent by h.receiver with
        # send_interval >= h.recv_interval — a suffix of the receiver's
        # hops when sorted by send interval.
        sorted_by_sender: dict[int, list[_MessageHop]] = {
            sender: sorted(sent, key=lambda hop: hop.send_interval)
            for sender, sent in self._by_sender.items()
        }
        send_intervals = {
            sender: [hop.send_interval for hop in sent]
            for sender, sent in sorted_by_sender.items()
        }
        succ: list[list[int]] = []
        for hop in hops:
            sent = sorted_by_sender.get(hop.receiver)
            if not sent:
                succ.append([])
                continue
            cut = bisect_left(send_intervals[hop.receiver], hop.recv_interval)
            succ.append([self._hop_pos[id(nxt)] for nxt in sent[cut:]])

        index_of: dict[int, int] = {}
        lowlink: dict[int, int] = {}
        on_stack: set[int] = set()
        scc_stack: list[int] = []
        comp_of: dict[int, int] = {}
        components: list[list[int]] = []
        counter = 0
        for root in range(len(hops)):
            if root in index_of:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, child_pos = work[-1]
                if child_pos == 0:
                    index_of[node] = lowlink[node] = counter
                    counter += 1
                    scc_stack.append(node)
                    on_stack.add(node)
                advanced = False
                children = succ[node]
                while child_pos < len(children):
                    child = children[child_pos]
                    child_pos += 1
                    if child not in index_of:
                        work[-1] = (node, child_pos)
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[child])
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == index_of[node]:
                    component: list[int] = []
                    while True:
                        member = scc_stack.pop()
                        on_stack.discard(member)
                        comp_of[member] = len(components)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        comp_mask = [0] * len(components)
        for comp_id, component in enumerate(components):
            mask = 0
            for member in component:
                mask |= 1 << member
                for child in succ[member]:
                    child_comp = comp_of[child]
                    if child_comp != comp_id:
                        mask |= comp_mask[child_comp]
            comp_mask[comp_id] = mask

        self._closure_masks = [
            comp_mask[comp_of[position]] for position in range(len(hops))
        ]
        return self._closure_masks

    def _hop_index(self) -> dict[int, _MessageHop]:
        return {id(h): h for h in self._hops}

    def _closure_from(self, start: _MessageHop) -> frozenset[int]:
        """ids of hops zigzag-reachable from *start* (inclusive)."""
        key = id(start)
        cached = self._reachable_cache.get(key)
        if cached is not None:
            return cached
        masks = self._ensure_closures()
        mask = masks[self._hop_pos[key]]
        result = frozenset(
            id(hop)
            for position, hop in enumerate(self._hops)
            if mask >> position & 1
        )
        self._reachable_cache[key] = result
        return result

    def _start_mask(self, checkpoint: tuple[int, int]) -> int:
        """Union closure mask over hops the source can start a path with."""
        cached = self._start_mask_cache.get(checkpoint)
        if cached is not None:
            return cached
        src_proc, src_number = checkpoint
        masks = self._ensure_closures()
        mask = 0
        for hop in self._by_sender.get(src_proc, ()):
            if hop.send_interval >= src_number:
                mask |= masks[self._hop_pos[id(hop)]]
        self._start_mask_cache[checkpoint] = mask
        return mask

    def _recv_mask(self, checkpoint: tuple[int, int]) -> int:
        """Bitmask of hops that can terminate a path at *checkpoint*."""
        cached = self._recv_mask_cache.get(checkpoint)
        if cached is not None:
            return cached
        dst_proc, dst_number = checkpoint
        mask = 0
        for position, hop in enumerate(self._hops):
            if hop.receiver == dst_proc and hop.recv_interval < dst_number:
                mask |= 1 << position
        self._recv_mask_cache[checkpoint] = mask
        return mask

    def zigzag_path_exists(
        self, from_checkpoint: tuple[int, int], to_checkpoint: tuple[int, int]
    ) -> bool:
        """Is there a zigzag path from one checkpoint to another?

        ``from_checkpoint``/``to_checkpoint`` are ``(process, number)``.
        A path must start with a message sent by the source's process in
        interval ≥ its number, and end with a message received by the
        target's process in interval < its number.
        """
        return bool(
            self._start_mask(from_checkpoint) & self._recv_mask(to_checkpoint)
        )

    def on_zigzag_cycle(self, checkpoint: tuple[int, int]) -> bool:
        """Netzer-Xu uselessness: a zigzag path from a checkpoint to
        itself means it belongs to no consistent snapshot."""
        return self.zigzag_path_exists(checkpoint, checkpoint)

    def useless_checkpoints(self) -> list[tuple[int, int]]:
        """All (process, number) checkpoints lying on zigzag cycles."""
        useless = []
        for process, history in checkpoints_by_process(self._events).items():
            for event in history:
                key = (process, event.checkpoint_number)
                if self.on_zigzag_cycle(key):
                    useless.append(key)
        return sorted(useless)

    def zz_consistent(
        self, a: tuple[int, int], b: tuple[int, int]
    ) -> bool:
        """No zigzag path in either direction (the theorem's condition
        for the pair to belong to some consistent snapshot)."""
        if a == b:
            return not self.on_zigzag_cycle(a)
        return not (
            self.zigzag_path_exists(a, b) or self.zigzag_path_exists(b, a)
        )
