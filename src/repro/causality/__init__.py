"""Causality substrate: vector clocks, happened-before, cuts, rollback.

Implements the paper's Section 2 definitions over recorded executions:
Lamport's happened-before relation (via vector clocks), consistency of
checkpoint cuts (Definition 2.1), straight cuts (Definitions 2.2/2.3),
and — for the uncoordinated baseline — the rollback-dependency graph
used to find the most recent consistent cut and to exhibit the domino
effect.
"""

from repro.causality.cuts import (
    CheckpointCut,
    cut_is_consistent,
    latest_straight_cut,
    orphan_messages,
    straight_cut,
)
from repro.causality.happened_before import happened_before
from repro.causality.rollback_graph import (
    RollbackAnalysis,
    build_rollback_graph,
    max_consistent_cut,
    max_consistent_positions,
)
from repro.causality.vector_clock import VectorClock
from repro.causality.zigzag import ZigzagAnalysis

__all__ = [
    "CheckpointCut",
    "RollbackAnalysis",
    "VectorClock",
    "ZigzagAnalysis",
    "build_rollback_graph",
    "cut_is_consistent",
    "happened_before",
    "latest_straight_cut",
    "max_consistent_cut",
    "max_consistent_positions",
    "orphan_messages",
    "straight_cut",
]
