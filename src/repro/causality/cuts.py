"""Checkpoint cuts, consistency, and straight cuts (paper §2).

A *cut of checkpoints* has one checkpoint per process; it is
*consistent* — a recovery line — iff no member happened before another
(Definition 2.1). The *straight cut* ``R_i`` collects each process's
*i*-th checkpoint (Definitions 2.2/2.3).

Indexing note (documented in DESIGN.md): checkpoints are numbered
dynamically per process (the *k*-th checkpoint event of process *p* is
``C_{p,k}``). For the paper's loop programs this matches its intent —
the Figure 1 program's ``R_i`` pairs iteration-*i* checkpoints and is
consistent, while the Figure 2 program's is not. The static "latest
*i*-th" reading of Definition 2.3 is also provided
(:func:`latest_straight_cut`) keyed by originating statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.causality.records import EventKind, TraceEvent
from repro.errors import RecoveryError


@dataclass(frozen=True)
class CheckpointCut:
    """A cut: one checkpoint event per process, keyed by rank."""

    members: tuple[TraceEvent, ...]

    def __post_init__(self) -> None:
        ranks = [e.process for e in self.members]
        if len(set(ranks)) != len(ranks):
            raise RecoveryError("a cut must contain one checkpoint per process")
        for event in self.members:
            if event.kind is not EventKind.CHECKPOINT:
                raise RecoveryError(f"cut member is not a checkpoint: {event!r}")

    def member_for(self, process: int) -> TraceEvent:
        """The cut member belonging to *process*."""
        for event in self.members:
            if event.process == process:
                return event
        raise RecoveryError(f"cut has no member for process {process}")

    @property
    def processes(self) -> frozenset[int]:
        """The ranks covered by this cut."""
        return frozenset(e.process for e in self.members)


def cut_is_consistent(cut: CheckpointCut) -> bool:
    """Definition 2.1: no member happened before another member."""
    for a in cut.members:
        for b in cut.members:
            if a is b:
                continue
            if a.clock.happened_before(b.clock):
                return False
    return True


def checkpoints_by_process(
    events: Iterable[TraceEvent],
) -> dict[int, list[TraceEvent]]:
    """Group checkpoint events by process, in local-history order."""
    grouped: dict[int, list[TraceEvent]] = {}
    for event in events:
        if event.kind is EventKind.CHECKPOINT:
            grouped.setdefault(event.process, []).append(event)
    for history in grouped.values():
        history.sort(key=lambda e: e.seq)
    return grouped


def straight_cut(
    events: Iterable[TraceEvent], index: int, processes: Sequence[int] | None = None
) -> CheckpointCut | None:
    """The straight cut ``R_index`` (1-based dynamic numbering).

    Returns ``None`` when some process has not yet taken its *index*-th
    checkpoint (the cut does not exist in this execution prefix).
    """
    if index < 1:
        raise RecoveryError(f"checkpoint index must be >= 1, got {index}")
    grouped = checkpoints_by_process(events)
    ranks = list(processes) if processes is not None else sorted(grouped)
    members = []
    for rank in ranks:
        history = grouped.get(rank, [])
        if len(history) < index:
            return None
        members.append(history[index - 1])
    return CheckpointCut(members=tuple(members))


def max_straight_cut_index(
    events: Iterable[TraceEvent], processes: Sequence[int]
) -> int:
    """The largest ``i`` for which ``R_i`` exists (0 when none does)."""
    grouped = checkpoints_by_process(events)
    return min((len(grouped.get(rank, [])) for rank in processes), default=0)


def latest_straight_cut(
    events: Iterable[TraceEvent],
    stmt_for_index: Mapping[int, frozenset[int]],
    index: int,
    processes: Sequence[int],
) -> CheckpointCut | None:
    """Definition 2.3 verbatim: the latest *index*-th checkpoints.

    ``stmt_for_index`` maps the static checkpoint index ``i`` to the
    AST statement ids of the CFG's ``S_i`` members; a checkpoint event
    belongs to index ``i`` when its originating statement is in
    ``S_i``. The cut takes each process's **latest** such event.
    """
    wanted = stmt_for_index.get(index)
    if wanted is None:
        raise RecoveryError(f"no static checkpoint index {index}")
    members = []
    latest: dict[int, TraceEvent] = {}
    for event in events:
        if (
            event.kind is EventKind.CHECKPOINT
            and event.stmt_id in wanted
            and (
                event.process not in latest
                or event.seq > latest[event.process].seq
            )
        ):
            latest[event.process] = event
    for rank in processes:
        if rank not in latest:
            return None
        members.append(latest[rank])
    return CheckpointCut(members=tuple(members))


def orphan_messages(
    events: Iterable[TraceEvent], cut: CheckpointCut
) -> list[tuple[TraceEvent, TraceEvent]]:
    """Messages received before the cut but sent after it.

    An orphan message is the operational witness of inconsistency: its
    receive is in the cut's past while its send is not. Returns
    (send, recv) pairs; empty iff the cut state has no orphans.
    """
    all_events = list(events)
    sends = {
        e.message_id: e
        for e in all_events
        if e.kind is EventKind.SEND and e.message_id is not None
    }
    orphans: list[tuple[TraceEvent, TraceEvent]] = []
    for recv in all_events:
        if recv.kind is not EventKind.RECV or recv.message_id is None:
            continue
        if recv.process not in cut.processes:
            continue
        boundary_recv = cut.member_for(recv.process)
        if recv.seq >= boundary_recv.seq:
            continue  # received after the cut point
        send = sends.get(recv.message_id)
        if send is None or send.process not in cut.processes:
            continue
        boundary_send = cut.member_for(send.process)
        if send.seq >= boundary_send.seq:
            orphans.append((send, recv))
    return orphans
