"""Event records of an execution (the "local histories" of §2).

The simulator produces one :class:`TraceEvent` per computation, send,
receive, checkpoint, failure, or restart event. Records carry the
simulation time, the process's vector clock *after* the event, and
event-specific payload fields. They are immutable so traces can be
shared freely between analyses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.causality.vector_clock import VectorClock


class EventKind(enum.Enum):
    """The event alphabet of the system model (§2) plus fault events."""

    COMPUTE = "compute"
    SEND = "send"
    RECV = "recv"
    CHECKPOINT = "checkpoint"
    FAILURE = "failure"
    RESTART = "restart"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TraceEvent:
    """One event in a process's local history.

    Attributes:
        kind: The event type.
        process: Rank of the process the event occurred in.
        seq: Position in the process's local history (0-based).
        time: Simulation time at which the event completed.
        clock: The process's vector clock after the event.
        message_id: For SEND/RECV, the unique message id.
        peer: For SEND the destination rank, for RECV the source rank.
        checkpoint_number: For CHECKPOINT, the per-process dynamic
            sequence number (1-based), i.e. "the *i*-th checkpoint of
            process p" in the paper's ``C_{p,i}`` notation.
        stmt_id: For CHECKPOINT, the AST node id of the originating
            checkpoint statement (links executions back to the CFG's
            ``C_i`` nodes).
    """

    kind: EventKind
    process: int
    seq: int
    time: float
    clock: VectorClock
    message_id: int | None = None
    peer: int | None = None
    checkpoint_number: int | None = None
    stmt_id: int | None = None

    def __repr__(self) -> str:
        extra = ""
        if self.kind in (EventKind.SEND, EventKind.RECV):
            extra = f" m{self.message_id} peer={self.peer}"
        elif self.kind is EventKind.CHECKPOINT:
            extra = f" #{self.checkpoint_number}"
        return f"<P{self.process}.{self.seq} {self.kind}{extra} t={self.time:.3f}>"
