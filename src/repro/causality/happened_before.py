"""Lamport's happened-before relation over recorded executions.

Two independent implementations:

- :func:`happened_before` answers via the events' vector clocks (O(n)
  per query), the production path; and
- :class:`HappenedBeforeGraph` builds the relation explicitly from
  process order plus send→receive pairs and answers by reachability.

The property-based tests assert the two always agree, which validates
the simulator's clock maintenance end to end.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.causality.records import EventKind, TraceEvent


def happened_before(a: TraceEvent, b: TraceEvent) -> bool:
    """True iff event *a* happened before event *b* (vector clocks)."""
    if a.process == b.process:
        return a.seq < b.seq
    return a.clock.happened_before(b.clock)


class HappenedBeforeGraph:
    """Explicit happened-before graph built from first principles.

    Edges: consecutive events of the same process, and the send event
    of each message to its receive event. Queries are DFS reachability;
    quadratic, fine for test-sized traces.
    """

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self._events = list(events)
        self._succ: dict[tuple[int, int], list[tuple[int, int]]] = defaultdict(list)
        per_process: dict[int, list[TraceEvent]] = defaultdict(list)
        sends: dict[int, TraceEvent] = {}
        receives: dict[int, TraceEvent] = {}
        for event in self._events:
            per_process[event.process].append(event)
            if event.kind is EventKind.SEND and event.message_id is not None:
                sends[event.message_id] = event
            elif event.kind is EventKind.RECV and event.message_id is not None:
                receives[event.message_id] = event
        for history in per_process.values():
            history.sort(key=lambda e: e.seq)
            for first, second in zip(history, history[1:]):
                self._succ[self._key(first)].append(self._key(second))
        for message_id, send in sends.items():
            recv = receives.get(message_id)
            if recv is not None:
                self._succ[self._key(send)].append(self._key(recv))

    @staticmethod
    def _key(event: TraceEvent) -> tuple[int, int]:
        return (event.process, event.seq)

    def reaches(self, a: TraceEvent, b: TraceEvent) -> bool:
        """True iff *a* happened before *b* by explicit reachability."""
        target = self._key(b)
        start = self._key(a)
        if start == target:
            return False
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for nxt in self._succ.get(current, ()):
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False
