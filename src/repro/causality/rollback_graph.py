"""Rollback-dependency analysis for uncoordinated checkpointing.

With independent (uncoordinated) checkpoints, recovery must search for
the most recent consistent cut among the available checkpoints; rollback
can cascade — the *domino effect* (paper §1). This module implements
the classic fixpoint: start from each process's latest checkpoint and,
while some member happened-before another, roll the offending process
back one checkpoint. The result is the maximal consistent cut at or
below the starting cut (or the initial states, if the dominoes fall all
the way).

Also exposes the rollback-dependency graph itself (edges between
checkpoint intervals induced by messages) for inspection and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.causality.cuts import CheckpointCut, checkpoints_by_process
from repro.causality.records import EventKind, TraceEvent
from repro.causality.vector_clock import VectorClock


@dataclass(frozen=True)
class RollbackAnalysis:
    """Result of the recovery-line search.

    Attributes:
        cut: The maximal consistent cut found, or ``None`` when some
            process had to roll back past its first checkpoint (restart
            from the initial state — the full domino effect).
        rollbacks: Per-process count of checkpoints discarded relative
            to each process's latest checkpoint.
        domino_steps: Number of fixpoint iterations that discarded a
            checkpoint (0 when the latest checkpoints were already
            consistent).
        rolled_to_start: Ranks that fell back to their initial state.
    """

    cut: CheckpointCut | None
    rollbacks: dict[int, int] = field(default_factory=dict)
    domino_steps: int = 0
    rolled_to_start: frozenset[int] = frozenset()

    @property
    def total_rollback(self) -> int:
        """Total checkpoints discarded across all processes."""
        return sum(self.rollbacks.values())


def build_rollback_graph(
    events: list[TraceEvent],
) -> dict[tuple[int, int], set[tuple[int, int]]]:
    """Edges between checkpoint intervals induced by messages.

    Interval ``(p, k)`` is process *p*'s execution after its *k*-th
    checkpoint (``k = 0`` is before any checkpoint). A message sent in
    ``(p, k)`` and received in ``(q, j)`` adds the edge
    ``(p, k) -> (q, j)``: if ``(p, k)``'s checkpoint is rolled back,
    ``(q, j)``'s receive becomes orphaned.
    """
    grouped = checkpoints_by_process(events)

    def interval_of(event: TraceEvent) -> tuple[int, int]:
        history = grouped.get(event.process, [])
        count = sum(1 for c in history if c.seq < event.seq)
        return (event.process, count)

    sends: dict[int, TraceEvent] = {}
    edges: dict[tuple[int, int], set[tuple[int, int]]] = {}
    for event in events:
        if event.kind is EventKind.SEND and event.message_id is not None:
            sends[event.message_id] = event
    for event in events:
        if event.kind is not EventKind.RECV or event.message_id is None:
            continue
        send = sends.get(event.message_id)
        if send is None:
            continue
        edges.setdefault(interval_of(send), set()).add(interval_of(event))
    return edges


def max_consistent_positions(
    clock_lists: dict[int, list[VectorClock]],
) -> tuple[dict[int, int], int]:
    """Fixpoint search for the maximal pairwise-concurrent positions.

    *clock_lists* maps each process to the vector clocks of its
    checkpoints, oldest first. Starting from the latest positions,
    while some member's clock happened-before another member's, the
    *later* member's process rolls back one position (rolling the
    earlier one back cannot remove the dependency). Returns the final
    positions (−1 = before the first listed checkpoint) and the number
    of rollback steps taken — the domino count.
    """
    position = {rank: len(clocks) - 1 for rank, clocks in clock_lists.items()}
    processes = list(clock_lists)
    domino_steps = 0

    def clock_of(rank: int) -> VectorClock | None:
        pos = position[rank]
        if pos < 0:
            return None  # before every listed checkpoint
        return clock_lists[rank][pos]

    changed = True
    while changed:
        changed = False
        for later in processes:
            later_clock = clock_of(later)
            if later_clock is None:
                continue
            for earlier in processes:
                if earlier == later:
                    continue
                earlier_clock = clock_of(earlier)
                if earlier_clock is None:
                    continue
                if earlier_clock.happened_before(later_clock):
                    # `later`'s checkpoint has `earlier`'s in its past:
                    # rolling `earlier` back would orphan it, so `later`
                    # must roll back.
                    position[later] -= 1
                    domino_steps += 1
                    changed = True
                    break
            if changed:
                break
    return position, domino_steps


def max_consistent_cut(
    events: list[TraceEvent], processes: list[int]
) -> RollbackAnalysis:
    """Find the maximal consistent cut at or below the latest checkpoints.

    A process with no remaining checkpoint falls to its initial state,
    modelled as a virtual position −1 (consistent with everything that
    does not precede it — which is everything).
    """
    grouped = checkpoints_by_process(events)
    position, domino_steps = max_consistent_positions(
        {rank: [c.clock for c in grouped.get(rank, [])] for rank in processes}
    )
    rolled_to_start = frozenset(r for r in processes if position[r] < 0)
    rollbacks = {
        rank: len(grouped.get(rank, [])) - 1 - position[rank]
        for rank in processes
    }
    if rolled_to_start:
        return RollbackAnalysis(
            cut=None,
            rollbacks=rollbacks,
            domino_steps=domino_steps,
            rolled_to_start=rolled_to_start,
        )
    members = tuple(grouped[rank][position[rank]] for rank in processes)
    cut = CheckpointCut(members=members) if members else None
    return RollbackAnalysis(
        cut=cut,
        rollbacks=rollbacks,
        domino_steps=domino_steps,
        rolled_to_start=rolled_to_start,
    )
