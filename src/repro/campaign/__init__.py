"""The campaign layer: declarative runs, cached transforms, parallel sweeps.

Three cooperating pieces turn the simulator into an execution substrate
for large experiment campaigns:

- :class:`~repro.campaign.spec.ScenarioSpec` — a picklable,
  JSON-round-trippable description of one run (program source,
  protocol, fault plan, transport, seeds, observability flags) with a
  stable content hash; ``Simulation.from_spec`` turns one into a live
  engine in any process.
- :class:`~repro.campaign.cache.TransformCache` — a content-addressed
  on-disk cache for :func:`~repro.phases.pipeline.transform`, keyed by
  program hash × cost model × universe × flags, valued by
  printer/parser round-tripped results, with hit/miss counters
  surfaced through :class:`~repro.obs.metrics.MetricsRegistry`.
- :func:`~repro.campaign.executor.run_campaign` /
  :func:`~repro.campaign.executor.run_cells` — a
  ``ProcessPoolExecutor``-backed fan-out whose merged results are
  **byte-identical for any worker count** (timings excepted, and kept
  out of the deterministic artifact by construction).

Two further pieces make the substrate resilient to *its own* faults —
the paper's checkpoint/restart discipline applied to the harness:

- :class:`~repro.campaign.journal.CampaignJournal` — an append-only,
  fsync'd, torn-tail-tolerant JSONL journal of finalised cell
  outcomes, keyed by cell key × content hash, powering
  ``repro campaign --resume`` / ``repro chaos --resume``;
- :class:`~repro.campaign.executor.ExecutorPolicy` /
  :class:`~repro.campaign.executor.ExecutorStats` plus the fault
  injector in :mod:`repro.campaign.faults` — per-cell timeouts,
  bounded retry with backoff, ``BrokenProcessPool`` recovery, poison
  -cell quarantine, and the deterministic crash/hang/raise worker
  shims that make all of it testable.

The chaos harness (``repro chaos --jobs``), the benchmark regeneration
tool (``tools/regenerate_results.py --jobs``), and the ``repro
campaign`` CLI subcommand all run on this substrate.
"""

from repro.campaign.cache import (
    CACHE_VERSION,
    TransformCache,
    transform_cache_key,
)
from repro.campaign.executor import (
    CampaignResult,
    CellOutcome,
    ExecutorPolicy,
    ExecutorStats,
    resolve_jobs,
    run_campaign,
    run_cells,
)
from repro.campaign.faults import (
    ExecutorFaultPlan,
    InjectedWorkerError,
    WorkerFault,
    draw_executor_faults,
    parse_worker_fault,
)
from repro.campaign.journal import JOURNAL_VERSION, CampaignJournal
from repro.campaign.spec import (
    SPEC_VERSION,
    ScenarioSpec,
    dump_campaign,
    load_campaign,
    quick_campaign,
)

__all__ = [
    "CACHE_VERSION",
    "CampaignJournal",
    "CampaignResult",
    "CellOutcome",
    "ExecutorFaultPlan",
    "ExecutorPolicy",
    "ExecutorStats",
    "InjectedWorkerError",
    "JOURNAL_VERSION",
    "SPEC_VERSION",
    "ScenarioSpec",
    "TransformCache",
    "WorkerFault",
    "draw_executor_faults",
    "dump_campaign",
    "load_campaign",
    "parse_worker_fault",
    "quick_campaign",
    "resolve_jobs",
    "run_campaign",
    "run_cells",
    "transform_cache_key",
]
