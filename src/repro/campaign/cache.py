"""Content-addressed on-disk cache for the offline transform pipeline.

The paper's pitch is *offline work so runtime is free* — but the
offline tower itself (Phases I–III) was recomputed from scratch on
every :func:`~repro.phases.pipeline.transform` call. This cache treats
a transformed program as a compiler artifact keyed by the identity of
its inputs: **program source × cost model × universe × flags**. The
value is the :class:`~repro.phases.pipeline.TransformResult` serialised
through the language's own printer/parser round-trip (programs are
stored as canonical source, never pickled ASTs), so cache entries are
portable, diffable JSON.

Hit/miss/store counts are kept on the cache and, when a
:class:`~repro.obs.metrics.MetricsRegistry` is attached, surfaced as
``transform_cache.hits`` / ``.misses`` / ``.stores`` counters.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.attributes.contradiction import Universe
from repro.cfg.paths import CheckpointEnumeration
from repro.errors import ReproError
from repro.lang import ast_nodes as ast
from repro.lang.compile import COMPILER_VERSION
from repro.lang.parser import parse
from repro.lang.printer import to_source
from repro.phases.insertion import CostModel, InsertionPlan
from repro.phases.placement import Move, PlacementResult
from repro.phases.verification import OrderingConstraint, VerificationResult

#: Bumped whenever the entry schema or the transform pipeline changes
#: in a way that invalidates old entries; part of every cache key, so
#: stale entries simply stop being addressable.
CACHE_VERSION = 1


def cache_schema() -> str:
    """The cache's schema identity: entry format x executable form.

    Cached transforms feed the closure compiler downstream, so a
    lowering change (``COMPILER_VERSION`` bump in
    :mod:`repro.lang.compile`) must orphan old entries exactly like a
    ``CACHE_VERSION`` bump does — stale artifacts stop being
    addressable rather than being served against a compiler that would
    execute them differently.
    """
    return f"cache-{CACHE_VERSION}/compiler-{COMPILER_VERSION}"


def transform_cache_key(
    program: ast.Program,
    cost_model: CostModel,
    loop_optimization: bool,
    universe: Universe,
    force_insertion: bool,
) -> str:
    """SHA-256 identity of one ``transform()`` invocation's inputs."""
    material = json.dumps(
        {
            "schema": cache_schema(),
            "program": to_source(program),
            "cost_model": {
                "local_statement": cost_model.local_statement,
                "message_delay": cost_model.message_delay,
                "checkpoint_overhead": cost_model.checkpoint_overhead,
                "failure_rate": cost_model.failure_rate,
                "default_loop_trips": cost_model.default_loop_trips,
                "default_compute": cost_model.default_compute,
                "params": dict(sorted(cost_model.params.items())),
            },
            "universe": list(universe.sizes),
            "loop_optimization": loop_optimization,
            "force_insertion": force_insertion,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


class TransformCache:
    """On-disk map from transform-input identity to transform output.

    One JSON file per entry under *root* (created if needed), named by
    the content hash. A deserialised hit reconstructs the result's
    programs by parsing their stored source (printer → parser
    round-trip) and its report-level summaries (moves, insertion
    counts, verification depth) exactly; the heavyweight analysis
    internals (path enumerations, violation witnesses) are represented
    by an empty-but-correct-depth enumeration, which every consumer of
    a *successful* transform — reports, simulation, benchmarks — treats
    identically.
    """

    def __init__(self, root: Path | str, registry=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.registry = registry
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _count(self, name: str) -> None:
        setattr(self, name, getattr(self, name) + 1)
        if self.registry is not None:
            self.registry.counter(f"transform_cache.{name}").inc()

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def key_for(
        self,
        program: ast.Program,
        cost_model: CostModel,
        loop_optimization: bool,
        universe: Universe,
        force_insertion: bool,
    ) -> str:
        """The cache key of one transform invocation (see module doc)."""
        return transform_cache_key(
            program, cost_model, loop_optimization, universe, force_insertion
        )

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str):
        """The cached :class:`TransformResult` for *key*, or ``None``.

        Counts a hit or a miss; unreadable or schema-mismatched entries
        count as misses and are ignored (the subsequent ``put``
        overwrites them).
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
            if entry.get("version") != CACHE_VERSION:
                raise ValueError("cache entry version mismatch")
            result = _entry_to_result(entry)
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            self._count("misses")
            return None
        self._count("hits")
        return result

    def put(self, key: str, result) -> None:
        """Store *result* under *key* (atomic via rename)."""
        entry = _result_to_entry(result)
        path = self._path(key)
        staged = path.with_suffix(".tmp")
        staged.write_text(json.dumps(entry, sort_keys=True) + "\n")
        staged.replace(path)
        self._count("stores")


# ----------------------------------------------------------------------
# Entry (de)serialisation
# ----------------------------------------------------------------------


def _result_to_entry(result) -> dict:
    insertion = result.insertion
    verification = result.verification
    depth = (
        verification.enumeration.depth
        if verification.enumeration is not None
        else 0
    )
    return {
        "version": CACHE_VERSION,
        "program": to_source(result.program),
        "insertion": None if insertion is None else {
            "program": to_source(insertion.program),
            "interval": insertion.interval,
            "inserted": insertion.inserted,
            "balance_added": insertion.balance_added,
            "estimated_cost": insertion.estimated_cost,
        },
        "moves": [
            [move.description, move.index]
            for move in result.placement.moves
        ],
        "ordering_constraints": [
            [c.earlier, c.later, c.index]
            for c in result.placement.ordering_constraints
        ],
        "depth": depth,
    }


def _entry_to_result(entry: dict):
    from repro.attributes.liveness import checkpoint_liveness
    from repro.phases.pipeline import TransformResult

    program = parse(entry["program"])
    # Liveness is recomputed rather than cached: it is deterministic
    # on the reconstructed AST, and its keys are process-global node
    # ids that would be meaningless if persisted across parses.
    liveness = checkpoint_liveness(program)
    insertion_data = entry["insertion"]
    insertion = None
    if insertion_data is not None:
        insertion = InsertionPlan(
            program=parse(insertion_data["program"]),
            interval=float(insertion_data["interval"]),
            inserted=int(insertion_data["inserted"]),
            balance_added=int(insertion_data["balance_added"]),
            estimated_cost=float(insertion_data["estimated_cost"]),
        )
    depth = int(entry["depth"])
    verification = VerificationResult(
        ok=True,
        balanced=True,
        enumeration=CheckpointEnumeration(
            paths=(),
            per_path=(),
            columns=tuple(frozenset() for _ in range(depth)),
            balanced=True,
        ),
    )
    placement = PlacementResult(
        program=program,
        moves=tuple(
            Move(description=description, index=int(index))
            for description, index in entry["moves"]
        ),
        verification=verification,
        ordering_constraints=tuple(
            OrderingConstraint(
                earlier=int(earlier), later=int(later), index=int(index)
            )
            for earlier, later, index in entry["ordering_constraints"]
        ),
        checkpoint_live=dict(liveness.live_out),
        checkpoint_dead=dict(liveness.dead),
    )
    return TransformResult(
        program=program,
        insertion=insertion,
        placement=placement,
        verification=verification,
    )
