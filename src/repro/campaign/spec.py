"""Declarative scenario descriptions: one cell of a campaign.

A :class:`ScenarioSpec` captures *everything* that determines one
simulation run — program source, system size, parameters, protocol,
fault plan, transport tunables, seeds, and observability flags — as
plain data. Specs are picklable (so the campaign executor can ship
them to worker processes), JSON-round-trippable (so campaigns can live
in files and be replayed byte-identically), and content-hashed (so
results can be cached and cross-checked by identity, in the spirit of
treating a configured run as a compiler artifact keyed by its inputs).

``Simulation.from_spec`` is the engine-side factory; this module owns
only the data model and its serialisation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.errors import SimulationError
from repro.lang import ast_nodes as ast
from repro.lang.printer import to_source
from repro.runtime.engine import RuntimeCosts, Simulation
from repro.runtime.failures import FaultPlan
from repro.runtime.transport import TransportConfig

#: Bumped whenever the spec schema changes incompatibly, so stale
#: content hashes (and anything keyed by them) can never collide with
#: new ones.
SPEC_VERSION = 1


@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable, JSON-round-trippable description of one run.

    Attributes:
        label: The cell key — unique within a campaign; used to order
            and merge results deterministically.
        program: MiniMP **source text** (not an AST — source is the
            stable, hashable, processable-anywhere representation).
        n_processes: System size.
        params: Run-time parameter bindings (e.g. ``{"steps": 8}``).
        protocol: Registered protocol name (see
            :func:`repro.protocols.make_protocol`); ``"none"`` runs
            without a protocol.
        period: Checkpoint period for timer-driven protocols.
        seed: Simulator seed (inputs, latencies).
        base_latency: Mean one-way message latency.
        storage_replicas: Stable-storage replication factor.
        max_storage_retries: Per-write retry budget of the store.
        record_compute_events: Whether compute effects enter the trace.
        max_steps: Engine step budget.
        fault_plan: Crashes plus storage/network/recovery faults, or
            ``None``.
        transport: Reliable-transport tunables, or ``None`` for stock.
        costs: Per-effect time charges, or ``None`` for the defaults.
        observe: Whether the executor attaches an observability bus to
            this cell and returns its JSONL event log.
        retain_k: Bounded-storage retention (max checkpoints per rank),
            or ``None`` for unbounded storage.
        backend: Process-execution backend — ``"compiled"`` (closure
            compiler, the default) or ``"reference"`` (tree-walking
            interpreter). Both produce identical traces and artifacts;
            the field still enters :meth:`content_hash` so cached
            results record which executable form produced them.
        checkpoint_mode: Checkpoint content policy — ``"full"``,
            ``"pruned"`` (liveness-pruned snapshots), ``"delta"``
            (delta-encoded payloads), or ``"pruned+delta"``. Every mode
            recovers to byte-identical application state; only stored
            payload bytes differ.
    """

    label: str
    program: str
    n_processes: int = 4
    params: dict[str, int] = field(default_factory=dict)
    protocol: str = "appl-driven"
    period: float = 10.0
    seed: int = 0
    base_latency: float = 0.5
    storage_replicas: int = 1
    max_storage_retries: int = 3
    record_compute_events: bool = False
    max_steps: int = 2_000_000
    fault_plan: FaultPlan | None = None
    transport: TransportConfig | None = None
    costs: RuntimeCosts | None = None
    observe: bool = False
    retain_k: int | None = None
    backend: str = "compiled"
    checkpoint_mode: str = "full"

    def __post_init__(self) -> None:
        if not self.label:
            raise SimulationError("a scenario spec needs a non-empty label")
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            # A FailurePlan would silently drop storage/network faults
            # on JSON round-trip; normalise up front.
            object.__setattr__(
                self,
                "fault_plan",
                FaultPlan(
                    crashes=list(self.fault_plan.crashes),
                    max_failures=self.fault_plan.max_failures,
                ),
            )

    @classmethod
    def from_program(
        cls, label: str, program: ast.Program, **kwargs
    ) -> "ScenarioSpec":
        """Build a spec from an AST (printed to canonical source)."""
        return cls(label=label, program=to_source(program), **kwargs)

    # -- serialisation -----------------------------------------------------------

    def to_json_dict(self) -> dict:
        """The spec as plain JSON data (inverse of :meth:`from_json_dict`)."""
        payload: dict = {
            "version": SPEC_VERSION,
            "label": self.label,
            "program": self.program,
            "n_processes": self.n_processes,
            "params": dict(self.params),
            "protocol": self.protocol,
            "period": self.period,
            "seed": self.seed,
            "base_latency": self.base_latency,
            "storage_replicas": self.storage_replicas,
            "max_storage_retries": self.max_storage_retries,
            "record_compute_events": self.record_compute_events,
            "max_steps": self.max_steps,
            "observe": self.observe,
            "retain_k": self.retain_k,
            "backend": self.backend,
            "checkpoint_mode": self.checkpoint_mode,
            "fault_plan": (
                None if self.fault_plan is None
                else self.fault_plan.to_json_dict()
            ),
            "transport": (
                None if self.transport is None else asdict(self.transport)
            ),
            "costs": None if self.costs is None else asdict(self.costs),
        }
        return payload

    @classmethod
    def from_json_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json_dict`'s schema."""
        known = {
            "version", "label", "program", "n_processes", "params",
            "protocol", "period", "seed", "base_latency",
            "storage_replicas", "max_storage_retries",
            "record_compute_events", "max_steps", "observe", "retain_k",
            "backend", "checkpoint_mode", "fault_plan", "transport",
            "costs",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise SimulationError(
                f"bad scenario spec: unknown key(s) {unknown}"
            )
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SimulationError(
                f"scenario spec version {version} not supported "
                f"(this build reads version {SPEC_VERSION})"
            )
        try:
            fault_plan = data.get("fault_plan")
            transport = data.get("transport")
            costs = data.get("costs")
            return cls(
                label=data["label"],
                program=data["program"],
                n_processes=int(data.get("n_processes", 4)),
                params={
                    str(k): int(v)
                    for k, v in (data.get("params") or {}).items()
                },
                protocol=data.get("protocol", "appl-driven"),
                period=float(data.get("period", 10.0)),
                seed=int(data.get("seed", 0)),
                base_latency=float(data.get("base_latency", 0.5)),
                storage_replicas=int(data.get("storage_replicas", 1)),
                max_storage_retries=int(data.get("max_storage_retries", 3)),
                record_compute_events=bool(
                    data.get("record_compute_events", False)
                ),
                max_steps=int(data.get("max_steps", 2_000_000)),
                observe=bool(data.get("observe", False)),
                retain_k=(
                    None if data.get("retain_k") is None
                    else int(data["retain_k"])
                ),
                backend=str(data.get("backend", "compiled")),
                checkpoint_mode=str(data.get("checkpoint_mode", "full")),
                fault_plan=(
                    None if fault_plan is None
                    else FaultPlan.from_json_dict(fault_plan)
                ),
                transport=(
                    None if transport is None
                    else TransportConfig(**transport)
                ),
                costs=None if costs is None else RuntimeCosts(**costs),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(
                f"bad scenario spec: {exc!r}"
            ) from exc

    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON form, minus the label.

        Two specs with the same hash describe the same run (identical
        program, configuration, faults, and seeds) even if their cell
        labels differ — the identity a result cache or a cross-check
        wants.
        """
        payload = self.to_json_dict()
        payload.pop("label")
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- execution ---------------------------------------------------------------

    def build(self, observer=None) -> Simulation:
        """Construct the engine for this spec (see ``Simulation.from_spec``)."""
        return Simulation.from_spec(self, observer=observer)


def load_campaign(text: str) -> list[ScenarioSpec]:
    """Parse a campaign file: a JSON list of specs or ``{"cells": [...]}``."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"bad campaign file: {exc}") from exc
    if isinstance(data, dict):
        data = data.get("cells")
    if not isinstance(data, list):
        raise SimulationError(
            'bad campaign file: expected a JSON list of scenario specs '
            'or {"cells": [...]}'
        )
    return [ScenarioSpec.from_json_dict(entry) for entry in data]


def dump_campaign(specs: list[ScenarioSpec]) -> str:
    """Serialise *specs* as a campaign file (inverse of :func:`load_campaign`)."""
    return json.dumps(
        {"cells": [spec.to_json_dict() for spec in specs]}, indent=2
    ) + "\n"


def quick_campaign(steps: int = 6, seed: int = 0) -> list[ScenarioSpec]:
    """The built-in demo campaign behind ``repro campaign @quick``.

    A small workload × protocol matrix (all Phase-III-safe placements)
    that exercises the executor end to end in a few seconds.
    """
    from repro.lang.programs import program_source

    workloads = (("ring_pipeline", 3), ("pingpong", 4), ("token_ring", 3))
    protocols = ("appl-driven", "uncoordinated")
    specs = []
    for name, n_processes in workloads:
        for protocol in protocols:
            specs.append(ScenarioSpec(
                label=f"{name}/{protocol}",
                program=program_source(name),
                n_processes=n_processes,
                params={"steps": steps},
                protocol=protocol,
                period=6.0,
                seed=seed,
            ))
    return specs
