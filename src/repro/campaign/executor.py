"""Deterministic parallel campaign execution, resilient to its own faults.

:func:`run_cells` is the generic substrate: a list of ``(key,
payload)`` cells, a picklable worker, and a ``jobs`` knob. Cells fan
out over a :class:`~concurrent.futures.ProcessPoolExecutor`; results
are merged **by cell key in submission order**, so the assembled output
is byte-identical for any worker count — including ``jobs=1``, which
runs the very same worker serially in-process. Wall-clock timings are
collected alongside but kept strictly out of the deterministic payload
(time is the one thing a parallel run is allowed to change).

On top of that substrate sits the resilient mode — the paper's
checkpoint/restart discipline applied to the harness itself. With an
:class:`ExecutorPolicy` (or a journal, or an injected fault plan) the
executor additionally guarantees:

- **per-cell wall-clock timeouts** — a hung worker is detected by the
  parent, its pool is killed and rebuilt, and the cell is retried;
- **bounded retry with exponential backoff** — every attributable
  failure (worker exception, attributable crash, timeout) charges the
  cell's attempt budget; exhausted cells are *quarantined* into a
  structured error result instead of aborting the campaign;
- **``BrokenProcessPool`` recovery** — a worker death breaks the whole
  pool, taking innocent in-flight cells with it; the executor rebuilds
  the pool, re-runs the interrupted cells one at a time (*isolation*),
  and charges only the cell that provably killed its own pool;
- **journalled resume** — with a :class:`~repro.campaign.journal
  .CampaignJournal`, every finalised outcome is durably appended
  (fsync'd JSONL keyed by cell key × content hash), so a SIGKILL'd
  campaign restarted with the same journal skips every finished cell
  and re-executes only the rest.

The hard invariant is preserved and extended: the deterministic
artifact is byte-identical across any ``jobs`` count **and** across
clean vs. retried vs. killed-and-resumed runs — quarantine messages
deliberately contain no PIDs, times, or host state.

:func:`run_campaign` instantiates the substrate for
:class:`~repro.campaign.spec.ScenarioSpec` cells: each worker builds a
simulation from its spec (``Simulation.from_spec``), runs it, and
returns a plain-data :class:`CellOutcome` — stats dict, final
environment, completion time, and (when the spec says ``observe``) the
cell's full JSONL observability event log, captured per-worker and
merged deterministically by cell key.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from functools import partial

from repro.errors import ExecutorQuarantineError, ReproError, SimulationError
from repro.campaign.faults import (
    ExecutorFaultPlan,
    _InjectedCrash,
    _InjectedHang,
    fire_fault,
)
from repro.campaign.journal import CampaignJournal
from repro.campaign.spec import ScenarioSpec


def _timed_call(worker, payload):
    """Run *worker* on *payload*: ``(result, elapsed_s, worker_pid)``.

    The pid identifies which process executed the cell — diagnostic
    only (it feeds the rollup's ``diagnostics.workers`` map), never
    part of any deterministic artifact.
    """
    start = time.perf_counter()
    result = worker(payload)
    return result, time.perf_counter() - start, os.getpid()


def _attempt_call(worker, fault, attempt, in_process, payload):
    """Worker shim: fire any due injected fault, then run the worker.

    The fault fires *outside* the worker callable, so cell-level error
    capture (e.g. ``_campaign_cell``'s) never swallows an injected
    executor fault — they model the process dying, not the cell
    failing. Returns ``(result, elapsed_s, worker_pid)`` like
    :func:`_timed_call`.
    """
    start = time.perf_counter()
    if fault is not None and fault.fires(attempt):
        fire_fault(fault, in_process)
    result = worker(payload)
    return result, time.perf_counter() - start, os.getpid()


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value (``None``/0 → all cores, min 1)."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class ExecutorPolicy:
    """Retry/timeout policy of the resilient executor.

    Attributes:
        timeout: Per-cell wall-clock budget in seconds (``None`` =
            unlimited). Enforced by the parent when cells run on a
            worker pool (``jobs >= 2``); a serial run cannot preempt
            itself, so only *injected* hangs are detectable there.
        max_retries: Re-attempts after the first try; a cell has
            ``max_retries + 1`` total attempts before quarantine.
        backoff_base: Sleep before the first retry, in seconds.
        backoff_factor: Multiplier per further retry (exponential).
        backoff_max: Upper bound on any single backoff sleep.
        poll_interval: Parent-side wake-up granularity for deadline
            checks (diagnostic only; never affects the artifact).
    """

    timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    poll_interval: float = 0.05

    @property
    def max_attempts(self) -> int:
        """Total attempts a cell gets before quarantine."""
        return self.max_retries + 1

    def backoff(self, attempt: int) -> float:
        """Backoff sleep after failed attempt number *attempt* (1-based)."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


@dataclass
class ExecutorStats:
    """Resilience counters of one resilient ``run_cells`` invocation.

    Diagnostic only — never part of the deterministic artifact. The
    counters mirror the executor's fault handling: pool rebuilds,
    charged retries, deadline kills, quarantined cells, journal-served
    cells, and torn journal tails tolerated at load.
    """

    worker_restarts: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantines: int = 0
    resume_hits: int = 0
    journal_torn_entries: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-ready counter map."""
        return {
            "worker_restarts": self.worker_restarts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantines": self.quarantines,
            "resume_hits": self.resume_hits,
            "journal_torn_entries": self.journal_torn_entries,
        }

    def publish(self, registry) -> None:
        """Surface the counters as ``executor.*`` metrics on *registry*."""
        for name, value in self.as_dict().items():
            registry.counter(f"executor.{name}").inc(value)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"restarts={self.worker_restarts} retries={self.retries} "
            f"timeouts={self.timeouts} quarantined={self.quarantines} "
            f"resume-hits={self.resume_hits}"
        )


def _timeout_reason(policy: ExecutorPolicy) -> str:
    """Deterministic quarantine reason for a hung/over-deadline cell."""
    if policy.timeout is not None:
        return f"timed out after {policy.timeout:g}s"
    return "hung"


def _quarantine_message(attempts: int, reason: str) -> str:
    """Deterministic quarantine text (no PIDs, times, or host state)."""
    return (
        f"executor: quarantined after {attempts} attempt(s); "
        f"last failure: {reason}"
    )


def _default_fail(key, _payload, message, error):
    """Quarantine fallback when the caller gave no factory: raise."""
    raise ExecutorQuarantineError(
        f"cell {key!r}: {message}"
    ) from error


class _Cell:
    """Mutable in-flight state of one cell in the resilient runner."""

    __slots__ = ("key", "payload", "attempt", "ready_at", "isolated")

    def __init__(self, key, payload):
        self.key = key
        self.payload = payload
        self.attempt = 1
        self.ready_at = 0.0
        self.isolated = False


def _run_serial_resilient(
    cells, worker, policy, fault_plan, stats, emit, fail, notify
):
    """Resilient in-process execution (no preemption, same semantics).

    Injected crash/hang sentinels are mapped onto the exact quarantine
    texts the pool path produces, keeping artifacts byte-identical
    across ``jobs`` values.
    """
    for key, payload in cells:
        attempt = 1
        while True:
            fault = (
                fault_plan.for_key(key) if fault_plan is not None else None
            )
            error = None
            try:
                result, elapsed, pid = _attempt_call(
                    worker, fault, attempt, True, payload
                )
            except _InjectedCrash:
                reason = "worker crashed"
            except _InjectedHang:
                stats.timeouts += 1
                reason = _timeout_reason(policy)
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
                error = exc
            else:
                emit(key, result, elapsed, pid, attempt)
                break
            if attempt >= policy.max_attempts:
                stats.quarantines += 1
                notify("quarantine", cell=key)
                message = _quarantine_message(attempt, reason)
                emit(key, fail(key, payload, message, error), 0.0, None,
                     attempt)
                break
            stats.retries += 1
            notify("retry", cell=key, attempt=attempt + 1)
            time.sleep(policy.backoff(attempt))
            attempt += 1


def _run_pool_resilient(
    cells, worker, workers, policy, fault_plan, stats, emit, fail, notify
):
    """Resilient process-pool execution with bounded in-flight cells.

    At most *workers* cells are in flight, so a pool death has a
    bounded blast radius. Interrupted bystanders are re-run *in
    isolation* (one at a time) without being charged; a cell whose
    solo pool dies is definitively the culprit and is charged. Cells
    that exceed their deadline are charged, the pool is killed and
    rebuilt, and everything else re-runs uncharged.
    """
    pending: deque[_Cell] = deque(cells)
    suspects: deque[_Cell] = deque()
    inflight: dict = {}
    deadlines: dict = {}
    pool = ProcessPoolExecutor(max_workers=workers)

    def submit(cell: _Cell) -> None:
        now = time.monotonic()
        if cell.ready_at > now:
            time.sleep(cell.ready_at - now)
        fault = (
            fault_plan.for_key(cell.key) if fault_plan is not None else None
        )
        future = pool.submit(
            partial(_attempt_call, worker, fault, cell.attempt, False),
            cell.payload,
        )
        inflight[future] = cell
        deadlines[future] = (
            time.monotonic() + policy.timeout
            if policy.timeout is not None
            else None
        )

    def restart_pool() -> None:
        nonlocal pool
        stats.worker_restarts += 1
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass
        pool = ProcessPoolExecutor(max_workers=workers)

    def abandon_inflight() -> None:
        # The pool died under these cells through (presumably) no fault
        # of their own: re-run in isolation, uncharged.
        interrupted = [inflight.pop(future) for future in list(inflight)]
        deadlines.clear()
        for cell in interrupted:
            cell.ready_at = 0.0
            suspects.append(cell)

    def failed(cell: _Cell, reason: str, error=None, isolate=True) -> None:
        if cell.attempt >= policy.max_attempts:
            stats.quarantines += 1
            notify("quarantine", cell=cell.key)
            message = _quarantine_message(cell.attempt, reason)
            emit(cell.key, fail(cell.key, cell.payload, message, error),
                 0.0, None, cell.attempt)
            return
        stats.retries += 1
        cell.attempt += 1
        notify("retry", cell=cell.key, attempt=cell.attempt)
        cell.ready_at = time.monotonic() + policy.backoff(cell.attempt - 1)
        (suspects if isolate else pending).append(cell)

    try:
        while pending or suspects or inflight:
            if suspects:
                if not inflight:
                    cell = suspects.popleft()
                    cell.isolated = True
                    try:
                        submit(cell)
                    except BrokenExecutor:
                        restart_pool()
                        failed(cell, "worker crashed")
                        continue
            else:
                while pending and len(inflight) < workers:
                    cell = pending.popleft()
                    cell.isolated = False
                    try:
                        submit(cell)
                    except BrokenExecutor:
                        restart_pool()
                        abandon_inflight()
                        cell.ready_at = 0.0
                        suspects.appendleft(cell)
                        break
            if not inflight:
                continue
            now = time.monotonic()
            horizon = policy.poll_interval
            for deadline in deadlines.values():
                if deadline is not None:
                    horizon = min(horizon, max(0.0, deadline - now))
            done, _ = wait(
                set(inflight), timeout=horizon, return_when=FIRST_COMPLETED
            )
            broken_cells: list[_Cell] = []
            for future in done:
                cell = inflight.pop(future)
                deadlines.pop(future, None)
                try:
                    result, elapsed, pid = future.result()
                except BrokenExecutor:
                    broken_cells.append(cell)
                except Exception as error:
                    failed(
                        cell,
                        f"{type(error).__name__}: {error}",
                        error,
                        isolate=False,
                    )
                else:
                    emit(cell.key, result, elapsed, pid, cell.attempt)
            if broken_cells:
                restart_pool()
                for cell in broken_cells:
                    if cell.isolated:
                        # Alone in its pool: definitively the culprit.
                        failed(cell, "worker crashed")
                    else:
                        cell.ready_at = 0.0
                        suspects.append(cell)
                abandon_inflight()
                continue
            now = time.monotonic()
            expired = [
                future
                for future, deadline in deadlines.items()
                if deadline is not None and now >= deadline
            ]
            if expired:
                stats.timeouts += len(expired)
                expired_cells = [inflight.pop(future) for future in expired]
                for future in expired:
                    deadlines.pop(future, None)
                restart_pool()
                abandon_inflight()
                for cell in expired_cells:
                    failed(cell, _timeout_reason(policy))
    finally:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def run_cells(
    items: list[tuple],
    worker,
    jobs: int | None = 1,
    *,
    policy: ExecutorPolicy | None = None,
    journal: CampaignJournal | None = None,
    journal_key=None,
    cell_hash=None,
    encode=None,
    decode=None,
    quarantine=None,
    fault_plan: ExecutorFaultPlan | None = None,
    stats: ExecutorStats | None = None,
    progress=None,
    tracker=None,
    workers: dict | None = None,
) -> tuple[dict, dict]:
    """Run every ``(key, payload)`` cell through *worker*.

    Returns ``(results, timings)``: two dicts keyed by cell key, both
    in the submission order of *items*. ``results`` holds exactly what
    the worker returned — the deterministic artifact; ``timings`` holds
    per-cell wall-clock seconds — diagnostic only, never part of any
    byte-identity contract.

    Three further diagnostic channels, all strictly outside the
    deterministic artifact:

    - *progress* is a callback receiving structured
      :class:`~repro.obs.progress.ProgressEvent` records (campaign
      start, each cell's final outcome, retries, quarantines, end) as
      they happen — the live-feedback channel behind
      ``repro campaign --progress``;
    - *tracker* is a :class:`~repro.obs.spans.SpanTracker` recording
      the cell lifecycle as wall-clock spans: one ``cell.attempt`` per
      completed attempt, one ``cell`` per final outcome, and a
      ``campaign.merge`` span over the deterministic merge;
    - *workers* is a dict the executor fills with ``key -> worker
      pid`` for every cell that actually ran (journal-served and
      quarantined cells have no pid).

    *worker* must be a picklable (module-level) callable. Keys must be
    unique; any hashable, picklable key works. With none of the
    keyword-only resilience knobs set, worker exceptions propagate to
    the caller exactly as they always did.

    Resilient mode engages when *policy*, *journal*, or *fault_plan* is
    given (see the module doc for semantics):

    - *policy* bounds per-cell wall-clock time and retry budget;
    - *journal* (with *journal_key*, *cell_hash*, *encode*, *decode*)
      serves already-finished cells from disk and durably appends each
      newly finalised one;
    - *quarantine* is ``(key, payload, message, error) -> result``, the
      factory for a budget-exhausted cell's structured error result;
      without it, quarantine raises
      :class:`~repro.errors.ExecutorQuarantineError`;
    - *fault_plan* injects deterministic executor faults (tests/CI);
    - *stats* (an :class:`ExecutorStats`) accumulates the resilience
      counters in place.
    """
    keys = [key for key, _ in items]
    counts = Counter(keys)
    dupes = sorted(repr(key) for key, count in counts.items() if count > 1)
    if dupes:
        raise SimulationError(
            f"campaign cells must have unique keys; duplicated: {dupes}"
        )
    jobs = resolve_jobs(jobs)

    def notify(kind, cell=None, **fields):
        if progress is None:
            return
        from repro.obs.progress import ProgressEvent

        progress(ProgressEvent(
            kind=kind,
            done=len(collected),
            total=len(items),
            cell=None if cell is None else str(cell),
            fields=fields,
        ))

    def record_cell(key, result, elapsed, pid, attempt) -> None:
        if pid is not None and workers is not None:
            workers[key] = pid
        if tracker is not None:
            end = time.perf_counter()
            tracker.record(
                "cell.attempt", end - elapsed, end,
                cell=str(key), attempt=attempt,
            )
            tracker.record(
                "cell", end - elapsed, end,
                cell=str(key), ok=bool(getattr(result, "ok", True)),
            )
        notify(
            "cell-done", cell=key, ok=bool(getattr(result, "ok", True)),
        )

    def merged(collected, timings) -> tuple[dict, dict]:
        if tracker is not None:
            start = time.perf_counter()
            results = {key: collected[key] for key in keys}
            ordered = {key: timings[key] for key in keys}
            tracker.record(
                "campaign.merge", start, time.perf_counter(),
                cells=len(keys),
            )
        else:
            results = {key: collected[key] for key in keys}
            ordered = {key: timings[key] for key in keys}
        notify(
            "end",
            failed=sum(
                1 for r in results.values() if not getattr(r, "ok", True)
            ),
            quarantined=0 if stats is None else stats.quarantines,
        )
        return results, ordered

    resilient = (
        policy is not None or journal is not None or fault_plan is not None
    )
    if not resilient:
        collected: dict = {}
        timings: dict = {}
        notify("start", jobs=jobs)
        if jobs == 1 or len(items) <= 1:
            for key, payload in items:
                collected[key], timings[key], pid = _timed_call(
                    worker, payload
                )
                record_cell(key, collected[key], timings[key], pid, 1)
        else:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(items))
            ) as pool:
                pending = {
                    pool.submit(partial(_timed_call, worker), payload): key
                    for key, payload in items
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        key = pending.pop(future)
                        collected[key], timings[key], pid = future.result()
                        record_cell(key, collected[key], timings[key], pid, 1)
        return merged(collected, timings)

    if journal is not None and (
        journal_key is None or cell_hash is None
        or encode is None or decode is None
    ):
        raise SimulationError(
            "run_cells with a journal needs journal_key, cell_hash, "
            "encode, and decode"
        )
    policy = policy if policy is not None else ExecutorPolicy()
    stats = stats if stats is not None else ExecutorStats()
    fail = quarantine if quarantine is not None else _default_fail

    collected = {}
    timings = {}
    hashes: dict = {}
    todo: list[tuple] = []
    notify("start", jobs=jobs)
    if journal is not None:
        journal.load()
        stats.journal_torn_entries += journal.torn_entries
    for key, payload in items:
        if journal is not None:
            hashes[key] = cell_hash(key, payload)
            entry = journal.get(journal_key(key), hashes[key])
            if entry is not None:
                collected[key] = decode(entry)
                timings[key] = 0.0
                stats.resume_hits += 1
                notify(
                    "cell-done", cell=key, resumed=True,
                    ok=bool(getattr(collected[key], "ok", True)),
                )
                continue
        todo.append((key, payload))

    def emit(key, result, elapsed, pid=None, attempt=1) -> None:
        collected[key] = result
        timings[key] = elapsed
        if journal is not None:
            journal.record(journal_key(key), hashes[key], encode(result))
        record_cell(key, result, elapsed, pid, attempt)

    if todo:
        pool_size = min(jobs, len(todo))
        if jobs == 1:
            _run_serial_resilient(
                todo, worker, policy, fault_plan, stats, emit, fail, notify
            )
        else:
            _run_pool_resilient(
                [_Cell(key, payload) for key, payload in todo],
                worker, pool_size, policy, fault_plan, stats, emit, fail,
                notify,
            )
    return merged(collected, timings)


@dataclass(frozen=True)
class CellOutcome:
    """Plain-data result of one campaign cell.

    Everything here is deterministic given the spec: the engine is
    seed-driven and the observability log carries simulated time only,
    so two runs of the same spec — in different processes, under
    different worker counts — produce equal outcomes. A quarantined
    cell carries an ``executor:``-prefixed error; a cell that died on
    an unexpected (non-:class:`~repro.errors.ReproError`) exception
    carries an ``unexpected:``-prefixed one.
    """

    label: str
    spec_hash: str
    error: str | None = None
    stats: dict | None = None
    final_env: dict[int, dict[str, int]] | None = None
    completion_time: float | None = None
    events_jsonl: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the cell ran to completion without an engine error."""
        return self.error is None and bool(
            self.stats and self.stats.get("completed")
        )

    def to_json_dict(self) -> dict:
        """JSON-ready form (the byte-identity artifact of one cell)."""
        return {
            "label": self.label,
            "spec_hash": self.spec_hash,
            "error": self.error,
            "stats": self.stats,
            "final_env": (
                None if self.final_env is None else {
                    str(rank): dict(env)
                    for rank, env in sorted(self.final_env.items())
                }
            ),
            "completion_time": self.completion_time,
            "events_jsonl": self.events_jsonl,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "CellOutcome":
        """Rebuild an outcome from :meth:`to_json_dict`'s schema.

        Exact inverse — a journaled outcome re-serialises to the very
        bytes it was stored as, which is what the resume byte-identity
        invariant rests on.
        """
        final_env = data.get("final_env")
        return cls(
            label=data["label"],
            spec_hash=data["spec_hash"],
            error=data.get("error"),
            stats=data.get("stats"),
            final_env=(
                None if final_env is None else {
                    int(rank): dict(env)
                    for rank, env in final_env.items()
                }
            ),
            completion_time=data.get("completion_time"),
            events_jsonl=data.get("events_jsonl"),
        )


@dataclass
class CampaignResult:
    """Merged outcome of one campaign run.

    ``cells`` preserves the submitted spec order; ``timings`` (seconds
    per cell), ``jobs``, and ``executor`` (resilience counters, when
    the resilient executor ran) are diagnostics, deliberately excluded
    from :meth:`to_json` so the serialised campaign result is
    byte-identical for any worker count and across clean, retried, and
    killed-and-resumed runs.
    """

    cells: dict[str, CellOutcome] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    jobs: int = 1
    executor: ExecutorStats | None = None
    workers: dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> list[CellOutcome]:
        """Cells that errored or did not complete."""
        return [cell for cell in self.cells.values() if not cell.ok]

    def to_json(self, indent: int | None = 2) -> str:
        """The deterministic campaign artifact as JSON."""
        return json.dumps(
            {
                "cells": [
                    cell.to_json_dict() for cell in self.cells.values()
                ]
            },
            indent=indent,
            sort_keys=True,
        )

    def diagnostics_dict(self) -> dict:
        """The non-deterministic side channel: timings, jobs, counters."""
        return {
            "jobs": self.jobs,
            "timings": dict(self.timings),
            "workers": dict(self.workers),
            "executor": (
                None if self.executor is None else self.executor.as_dict()
            ),
        }


def _normalized_jsonl(obs, program) -> str:
    """The cell's event log with ``stmt_id`` fields made process-free.

    AST node ids come from a process-wide counter, so the raw ids in an
    event log depend on how many nodes the emitting process had ever
    allocated — different under ``jobs=1`` (one process parses every
    cell) and ``jobs=N`` (each worker parses from scratch). Remapping
    each ``stmt_id`` to its statement's pre-order position in the
    cell's own program makes the log a pure function of the spec, which
    is what the executor's byte-identity invariant demands.
    """
    from dataclasses import replace

    from repro.lang.ast_nodes import walk
    from repro.obs import events_to_jsonl

    stmt_ids = {
        node.node_id: index
        for index, node in enumerate(walk(program), start=1)
    }
    events = [
        replace(
            event,
            fields={
                **event.fields,
                "stmt_id": stmt_ids.get(
                    event.fields["stmt_id"], event.fields["stmt_id"]
                ),
            },
        )
        if "stmt_id" in event.fields
        else event
        for event in obs.events
    ]
    return events_to_jsonl(events)


def _campaign_cell(spec: ScenarioSpec) -> CellOutcome:
    """Worker: run one scenario spec to a plain-data outcome."""
    obs = None
    observer = None
    if spec.observe:
        from repro.obs import Observability

        obs = Observability()
        observer = obs.bus
    sim = None
    try:
        sim = spec.build(observer=observer)
        result = sim.run()
    except ReproError as error:
        events = None
        if obs is not None:
            events = (
                _normalized_jsonl(obs, sim.program)
                if sim is not None
                else obs.jsonl()
            )
        return CellOutcome(
            label=spec.label,
            spec_hash=spec.content_hash(),
            error=f"{type(error).__name__}: {error}",
            events_jsonl=events,
        )
    except Exception as error:
        # A RecursionError, MemoryError, or plain bug in one cell must
        # not abort a whole serial campaign: capture it as a structured
        # outcome, distinguishable from engine errors by its prefix.
        return CellOutcome(
            label=spec.label,
            spec_hash=spec.content_hash(),
            error=f"unexpected: {type(error).__name__}: {error}",
        )
    return CellOutcome(
        label=spec.label,
        spec_hash=spec.content_hash(),
        stats=result.stats.as_dict(),
        final_env={
            rank: dict(env) for rank, env in sorted(result.final_env.items())
        },
        completion_time=result.completion_time,
        events_jsonl=(
            _normalized_jsonl(obs, sim.program) if obs is not None else None
        ),
    )


def _campaign_journal_key(key) -> str:
    """Journal key of a campaign cell: its label."""
    return str(key)


def _campaign_cell_hash(_key, spec: ScenarioSpec) -> str:
    """Content hash of a campaign cell: the spec's identity."""
    return spec.content_hash()


def _encode_outcome(outcome: CellOutcome) -> dict:
    """Journal encoder for a campaign cell outcome."""
    return outcome.to_json_dict()


def _quarantined_outcome(key, spec: ScenarioSpec, message, _error):
    """Quarantine factory: a structured error outcome for a dead cell."""
    return CellOutcome(
        label=key, spec_hash=spec.content_hash(), error=message
    )


def run_campaign(
    specs: list[ScenarioSpec],
    jobs: int | None = 1,
    *,
    policy: ExecutorPolicy | None = None,
    journal_path=None,
    fault_plan: ExecutorFaultPlan | None = None,
    registry=None,
    progress=None,
    tracker=None,
) -> CampaignResult:
    """Run every spec (labels are the cell keys) and merge the results.

    The hard invariant: the returned :class:`CampaignResult`'s
    deterministic artifact (:meth:`CampaignResult.to_json`) is
    byte-identical for any *jobs* value — and, in resilient mode, also
    across clean, retried, and killed-and-resumed runs.

    *policy* enables per-cell timeouts, bounded retry, and quarantine;
    *journal_path* makes progress durable (and resumable — a journal
    that already exists serves its finished cells); *fault_plan*
    injects deterministic executor faults; *registry* (a
    :class:`~repro.obs.metrics.MetricsRegistry`) receives the
    ``executor.*`` resilience counters; *progress* streams structured
    :class:`~repro.obs.progress.ProgressEvent` records as cells
    finish; *tracker* (a :class:`~repro.obs.spans.SpanTracker`)
    records the cell-lifecycle wall-clock spans. The worker pid of
    every executed cell lands in :attr:`CampaignResult.workers`.
    """
    items = [(spec.label, spec) for spec in specs]
    workers: dict[str, int] = {}
    resilient = (
        policy is not None
        or journal_path is not None
        or fault_plan is not None
    )
    if not resilient:
        results, timings = run_cells(
            items, _campaign_cell, jobs=jobs,
            progress=progress, tracker=tracker, workers=workers,
        )
        return CampaignResult(
            cells=results, timings=timings, jobs=resolve_jobs(jobs),
            workers=workers,
        )
    stats = ExecutorStats()
    journal = (
        CampaignJournal(journal_path) if journal_path is not None else None
    )
    try:
        results, timings = run_cells(
            items,
            _campaign_cell,
            jobs=jobs,
            policy=policy,
            journal=journal,
            journal_key=_campaign_journal_key,
            cell_hash=_campaign_cell_hash,
            encode=_encode_outcome,
            decode=CellOutcome.from_json_dict,
            quarantine=_quarantined_outcome,
            fault_plan=fault_plan,
            stats=stats,
            progress=progress,
            tracker=tracker,
            workers=workers,
        )
    finally:
        if journal is not None:
            journal.close()
    if registry is not None:
        stats.publish(registry)
    return CampaignResult(
        cells=results,
        timings=timings,
        jobs=resolve_jobs(jobs),
        executor=stats,
        workers=workers,
    )
