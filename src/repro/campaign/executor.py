"""Deterministic parallel campaign execution.

:func:`run_cells` is the generic substrate: a list of ``(key,
payload)`` cells, a picklable worker, and a ``jobs`` knob. Cells fan
out over a :class:`~concurrent.futures.ProcessPoolExecutor`; results
are merged **by cell key in submission order**, so the assembled output
is byte-identical for any worker count — including ``jobs=1``, which
runs the very same worker serially in-process. Wall-clock timings are
collected alongside but kept strictly out of the deterministic payload
(time is the one thing a parallel run is allowed to change).

:func:`run_campaign` instantiates the substrate for
:class:`~repro.campaign.spec.ScenarioSpec` cells: each worker builds a
simulation from its spec (``Simulation.from_spec``), runs it, and
returns a plain-data :class:`CellOutcome` — stats dict, final
environment, completion time, and (when the spec says ``observe``) the
cell's full JSONL observability event log, captured per-worker and
merged deterministically by cell key.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from functools import partial

from repro.errors import ReproError, SimulationError
from repro.campaign.spec import ScenarioSpec


def _timed_call(worker, payload):
    """Run *worker* on *payload*, returning ``(result, elapsed_s)``."""
    start = time.perf_counter()
    result = worker(payload)
    return result, time.perf_counter() - start


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value (``None``/0 → all cores, min 1)."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def run_cells(
    items: list[tuple], worker, jobs: int | None = 1
) -> tuple[dict, dict]:
    """Run every ``(key, payload)`` cell through *worker*.

    Returns ``(results, timings)``: two dicts keyed by cell key, both
    in the submission order of *items*. ``results`` holds exactly what
    the worker returned — the deterministic artifact; ``timings`` holds
    per-cell wall-clock seconds — diagnostic only, never part of any
    byte-identity contract.

    *worker* must be a picklable (module-level) callable; worker
    exceptions propagate to the caller. Keys must be unique; any
    hashable, picklable key works.
    """
    keys = [key for key, _ in items]
    if len(set(keys)) != len(keys):
        dupes = sorted({repr(k) for k in keys if keys.count(k) > 1})
        raise SimulationError(
            f"campaign cells must have unique keys; duplicated: {dupes}"
        )
    jobs = resolve_jobs(jobs)
    collected: dict = {}
    timings: dict = {}
    if jobs == 1 or len(items) <= 1:
        for key, payload in items:
            collected[key], timings[key] = _timed_call(worker, payload)
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(items))
        ) as pool:
            pending = {
                pool.submit(partial(_timed_call, worker), payload): key
                for key, payload in items
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    key = pending.pop(future)
                    collected[key], timings[key] = future.result()
    results = {key: collected[key] for key in keys}
    return results, {key: timings[key] for key in keys}


@dataclass(frozen=True)
class CellOutcome:
    """Plain-data result of one campaign cell.

    Everything here is deterministic given the spec: the engine is
    seed-driven and the observability log carries simulated time only,
    so two runs of the same spec — in different processes, under
    different worker counts — produce equal outcomes.
    """

    label: str
    spec_hash: str
    error: str | None = None
    stats: dict | None = None
    final_env: dict[int, dict[str, int]] | None = None
    completion_time: float | None = None
    events_jsonl: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the cell ran to completion without an engine error."""
        return self.error is None and bool(
            self.stats and self.stats.get("completed")
        )

    def to_json_dict(self) -> dict:
        """JSON-ready form (the byte-identity artifact of one cell)."""
        return {
            "label": self.label,
            "spec_hash": self.spec_hash,
            "error": self.error,
            "stats": self.stats,
            "final_env": (
                None if self.final_env is None else {
                    str(rank): dict(env)
                    for rank, env in sorted(self.final_env.items())
                }
            ),
            "completion_time": self.completion_time,
            "events_jsonl": self.events_jsonl,
        }


@dataclass
class CampaignResult:
    """Merged outcome of one campaign run.

    ``cells`` preserves the submitted spec order; ``timings`` (seconds
    per cell) and ``jobs`` are diagnostics, deliberately excluded from
    :meth:`to_json` so the serialised campaign result is byte-identical
    for any worker count.
    """

    cells: dict[str, CellOutcome] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    jobs: int = 1

    @property
    def failures(self) -> list[CellOutcome]:
        """Cells that errored or did not complete."""
        return [cell for cell in self.cells.values() if not cell.ok]

    def to_json(self, indent: int | None = 2) -> str:
        """The deterministic campaign artifact as JSON."""
        return json.dumps(
            {
                "cells": [
                    cell.to_json_dict() for cell in self.cells.values()
                ]
            },
            indent=indent,
            sort_keys=True,
        )


def _normalized_jsonl(obs, program) -> str:
    """The cell's event log with ``stmt_id`` fields made process-free.

    AST node ids come from a process-wide counter, so the raw ids in an
    event log depend on how many nodes the emitting process had ever
    allocated — different under ``jobs=1`` (one process parses every
    cell) and ``jobs=N`` (each worker parses from scratch). Remapping
    each ``stmt_id`` to its statement's pre-order position in the
    cell's own program makes the log a pure function of the spec, which
    is what the executor's byte-identity invariant demands.
    """
    from dataclasses import replace

    from repro.lang.ast_nodes import walk
    from repro.obs import events_to_jsonl

    stmt_ids = {
        node.node_id: index
        for index, node in enumerate(walk(program), start=1)
    }
    events = [
        replace(
            event,
            fields={
                **event.fields,
                "stmt_id": stmt_ids.get(
                    event.fields["stmt_id"], event.fields["stmt_id"]
                ),
            },
        )
        if "stmt_id" in event.fields
        else event
        for event in obs.events
    ]
    return events_to_jsonl(events)


def _campaign_cell(spec: ScenarioSpec) -> CellOutcome:
    """Worker: run one scenario spec to a plain-data outcome."""
    obs = None
    observer = None
    if spec.observe:
        from repro.obs import Observability

        obs = Observability()
        observer = obs.bus
    sim = None
    try:
        sim = spec.build(observer=observer)
        result = sim.run()
    except ReproError as error:
        events = None
        if obs is not None:
            events = (
                _normalized_jsonl(obs, sim.program)
                if sim is not None
                else obs.jsonl()
            )
        return CellOutcome(
            label=spec.label,
            spec_hash=spec.content_hash(),
            error=f"{type(error).__name__}: {error}",
            events_jsonl=events,
        )
    return CellOutcome(
        label=spec.label,
        spec_hash=spec.content_hash(),
        stats=result.stats.as_dict(),
        final_env={
            rank: dict(env) for rank, env in sorted(result.final_env.items())
        },
        completion_time=result.completion_time,
        events_jsonl=(
            _normalized_jsonl(obs, sim.program) if obs is not None else None
        ),
    )


def run_campaign(
    specs: list[ScenarioSpec], jobs: int | None = 1
) -> CampaignResult:
    """Run every spec (labels are the cell keys) and merge the results.

    The hard invariant: the returned :class:`CampaignResult`'s
    deterministic artifact (:meth:`CampaignResult.to_json`) is
    byte-identical for any *jobs* value.
    """
    items = [(spec.label, spec) for spec in specs]
    results, timings = run_cells(items, _campaign_cell, jobs=jobs)
    return CampaignResult(
        cells=results, timings=timings, jobs=resolve_jobs(jobs)
    )
