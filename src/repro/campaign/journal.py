"""Append-only campaign journal: checkpoint/restart for the harness itself.

The paper checkpoints distributed *applications*; this module applies
the same idea to the campaign executor. Every finalised cell outcome is
appended to a JSONL journal — one fsync'd line per cell, keyed by the
cell's key string **and** its content hash (for scenario cells,
:meth:`~repro.campaign.spec.ScenarioSpec.content_hash`). A campaign
that is SIGKILL'd mid-flight restarts with ``--resume``: completed
cells are served from the journal (the executor skips them entirely)
and only unfinished cells re-execute, after which the merged artifact
is byte-identical to a clean run.

Durability model, in the spirit of the repo's two-phase checkpoint
store:

- **Append-only.** A record is one JSON line; nothing is ever
  rewritten in place.
- **fsync per record.** A cell is either durably finished or not
  finished; there is no in-between visible after a crash.
- **Torn-tail tolerance.** A SIGKILL can land mid-``write``, leaving a
  truncated final line. Loading ignores a torn *tail* (counting it in
  :attr:`CampaignJournal.torn_entries`) and the next append first
  truncates the file back to the last intact record, so the journal
  never accretes corruption. Garbage *before* the tail is refused
  loudly — silently dropping completed work would be worse than
  re-running it.
- **Content-keyed skip.** A journal entry only satisfies a cell whose
  key *and* content hash both match, so editing a campaign file
  invalidates exactly the edited cells (AutoCheck's minimal-state
  principle: recompute only what actually changed).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import SimulationError

#: Bumped whenever the journal record schema changes incompatibly;
#: a version-mismatched journal is refused rather than misread.
JOURNAL_VERSION = 1


class CampaignJournal:
    """An append-only, fsync'd, torn-tail-tolerant outcome journal.

    The executor calls :meth:`load` once (to learn what is already
    done), :meth:`record` per finalised cell, and :meth:`close` at the
    end. Entries live in memory as ``{key: (cell_hash, outcome_dict)}``
    after a load; duplicate keys keep the newest record (outcomes are
    deterministic, so duplicates are byte-identical in practice).
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.torn_entries = 0
        self._entries: dict[str, tuple[str, dict]] = {}
        self._loaded = False
        self._valid_bytes = 0
        self._fh = None

    # -- reading -----------------------------------------------------------------

    def load(self) -> dict[str, tuple[str, dict]]:
        """Read the journal into ``{key: (cell_hash, outcome_dict)}``.

        Idempotent. A missing file is an empty journal. A torn final
        line is tolerated (and counted); any earlier unparsable or
        malformed line raises :class:`~repro.errors.SimulationError`.
        """
        if self._loaded:
            return self._entries
        self._loaded = True
        if not self.path.exists():
            return self._entries
        raw = self.path.read_bytes()
        offset = 0
        lines = raw.split(b"\n")
        # A trailing newline yields a final empty chunk; real content
        # after the last newline is the torn-tail candidate.
        for index, line in enumerate(lines):
            is_last = index == len(lines) - 1
            if not line.strip():
                offset += len(line) + (0 if is_last else 1)
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                self._ingest(record)
            except (ValueError, KeyError, TypeError) as exc:
                if is_last:
                    self.torn_entries += 1
                    break
                raise SimulationError(
                    f"corrupt campaign journal {self.path}: unreadable "
                    f"record on line {index + 1} ({exc!r}); only the "
                    f"final line may be torn"
                ) from exc
            offset += len(line) + (0 if is_last else 1)
        self._valid_bytes = offset
        return self._entries

    def _ingest(self, record) -> None:
        """Fold one parsed journal record into the entry map."""
        if not isinstance(record, dict):
            raise ValueError(f"journal record is not an object: {record!r}")
        kind = record["kind"]
        if kind == "header":
            version = record["version"]
            if version != JOURNAL_VERSION:
                raise SimulationError(
                    f"campaign journal {self.path} has version {version}; "
                    f"this build reads version {JOURNAL_VERSION}"
                )
            return
        if kind != "cell":
            raise ValueError(f"unknown journal record kind {kind!r}")
        outcome = record["outcome"]
        if not isinstance(outcome, dict):
            raise ValueError("journal cell record outcome is not an object")
        self._entries[str(record["key"])] = (str(record["hash"]), outcome)

    def get(self, key: str, cell_hash: str) -> dict | None:
        """The journaled outcome for ``(key, cell_hash)``, or ``None``.

        Both the key and the content hash must match — a journal written
        against an edited spec never satisfies the new one.
        """
        entry = self._entries.get(key)
        if entry is None or entry[0] != cell_hash:
            return None
        return entry[1]

    def __len__(self) -> int:
        return len(self._entries)

    # -- writing -----------------------------------------------------------------

    def _open_for_append(self):
        if self._fh is not None:
            return self._fh
        self.load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            self._fh = open(self.path, "r+b")
            # Drop any torn tail so the next record starts on a clean
            # line boundary.
            self._fh.seek(self._valid_bytes)
            self._fh.truncate()
        else:
            self._fh = open(self.path, "xb")
            self._write_record(
                {"kind": "header", "version": JOURNAL_VERSION}
            )
        return self._fh

    def _write_record(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._fh.write(line.encode("utf-8") + b"\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, key: str, cell_hash: str, outcome: dict) -> None:
        """Durably append one finalised cell outcome.

        The record is flushed and fsync'd before this returns: once a
        cell is reported finished, a SIGKILL cannot un-finish it.
        """
        self._open_for_append()
        self._write_record({
            "kind": "cell",
            "key": str(key),
            "hash": str(cell_hash),
            "outcome": outcome,
        })
        self._entries[str(key)] = (str(cell_hash), outcome)

    def close(self) -> None:
        """Close the underlying file handle (safe to call repeatedly)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        """Context-manager entry: the journal itself."""
        return self

    def __exit__(self, *_exc) -> None:
        """Context-manager exit: close the journal."""
        self.close()
