"""Deterministic executor-fault injection: crash/hang/raise worker shims.

The resilient executor (:func:`~repro.campaign.executor.run_cells` with
an :class:`~repro.campaign.executor.ExecutorPolicy`) claims to survive
worker crashes, hangs, and unexpected exceptions. This module makes
that claim testable the same way the simulator's fault layer does: a
declarative, picklable plan of *executor* faults keyed by cell key,
fired by a shim that wraps the worker callable — so the very same fault
fires on the very same cell for any worker count, and a fault sweep is
replayable from its seed alone.

Fault kinds:

- ``crash`` — the worker process dies mid-cell (``os._exit``), which
  surfaces to the parent as a ``BrokenProcessPool``. In-process
  (serial) execution raises a private sentinel that the executor maps
  onto the same "worker crashed" handling, so artifacts stay
  byte-identical across ``jobs`` values.
- ``hang`` — the worker sleeps past any reasonable deadline; the
  parent's per-cell timeout must detect and kill it. In-process
  execution raises the hang sentinel immediately (a serial run cannot
  preempt itself), again converging on the same quarantine text.
- ``raise`` — the worker raises :class:`InjectedWorkerError`, the
  plain-exception failure mode (pool stays alive, cell is retried).

A fault fires while ``attempt <= until_attempt``; a small
``until_attempt`` models a transient fault that succeeds on retry, the
default models a poison cell that must end in quarantine.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

#: The executor-fault kinds the shim can fire.
FAULT_KINDS = ("crash", "hang", "raise")

#: ``until_attempt`` value meaning "every attempt" (a poison cell).
ALWAYS = 1_000_000

#: Worker exit code used by injected crashes (diagnosable in core
#: dumps / process tables; never reaches the artifact).
CRASH_EXIT_CODE = 86


class InjectedWorkerError(RuntimeError):
    """The exception an injected ``raise`` fault throws inside a worker.

    Module-level (and carrying only its message) so it pickles cleanly
    across the process-pool boundary back to the parent.
    """


class _InjectedCrash(Exception):
    """In-process stand-in for a worker death (serial execution only)."""


class _InjectedHang(Exception):
    """In-process stand-in for a worker hang (serial execution only)."""


@dataclass(frozen=True)
class WorkerFault:
    """One injected executor fault on one cell.

    Attributes:
        kind: ``crash``, ``hang``, or ``raise`` (see module doc).
        until_attempt: The fault fires while the cell's attempt number
            is ``<= until_attempt``; afterwards the real worker runs.
            The default (:data:`ALWAYS`) makes a poison cell.
        hang_seconds: How long a ``hang`` sleeps in a worker process —
            far past any sane per-cell timeout by default.
    """

    kind: str
    until_attempt: int = ALWAYS
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"unknown executor fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.until_attempt < 1:
            raise SimulationError(
                f"executor fault until_attempt must be >= 1, "
                f"got {self.until_attempt}"
            )

    def fires(self, attempt: int) -> bool:
        """Whether this fault fires on the given (1-based) attempt."""
        return attempt <= self.until_attempt


class ExecutorFaultPlan:
    """A picklable map from cell key to the fault injected on it."""

    def __init__(self, faults: dict | None = None) -> None:
        self.faults = dict(faults or {})

    def for_key(self, key) -> WorkerFault | None:
        """The fault injected on *key*, or ``None``."""
        return self.faults.get(key)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)


def draw_executor_faults(
    keys,
    seed: int,
    probability: float = 0.25,
    transient_probability: float = 0.5,
    kinds: tuple[str, ...] = FAULT_KINDS,
) -> ExecutorFaultPlan:
    """Draw a seed-deterministic executor-fault plan over *keys*.

    Each key independently receives a fault with *probability*; a drawn
    fault is transient (clears after one or two attempts) with
    *transient_probability*, else a poison fault that fires forever.
    The same ``(keys, seed)`` always yields the same plan, so a fault
    sweep is replayable — the chaos harness's discipline applied to the
    harness itself.
    """
    rng = np.random.default_rng(seed)
    faults: dict = {}
    for key in keys:
        if rng.random() >= probability:
            continue
        kind = kinds[int(rng.integers(len(kinds)))]
        if rng.random() < transient_probability:
            until = int(rng.integers(1, 3))
        else:
            until = ALWAYS
        faults[key] = WorkerFault(kind=kind, until_attempt=until)
    return ExecutorFaultPlan(faults)


def parse_worker_fault(text: str) -> tuple[str, WorkerFault]:
    """Parse a CLI fault spec ``KEY:KIND[:UNTIL]`` into ``(key, fault)``.

    ``KEY`` is the cell label (it may itself contain ``/`` but not a
    trailing ``:KIND`` ambiguity — the kind and optional attempt bound
    are read from the right).
    """
    parts = text.split(":")
    if (
        len(parts) >= 3
        and parts[-2] in FAULT_KINDS
        and parts[-1].isdigit()
    ):
        key = ":".join(parts[:-2])
        fault = WorkerFault(kind=parts[-2], until_attempt=int(parts[-1]))
    elif len(parts) >= 2 and parts[-1] in FAULT_KINDS:
        key = ":".join(parts[:-1])
        fault = WorkerFault(kind=parts[-1])
    else:
        kinds = "|".join(FAULT_KINDS)
        raise SimulationError(
            f"executor fault must be KEY:KIND[:UNTIL] with KIND one of "
            f"{kinds}, got {text!r}"
        )
    if not key:
        raise SimulationError(
            f"executor fault needs a non-empty cell key, got {text!r}"
        )
    return key, fault


def fire_fault(fault: WorkerFault, in_process: bool) -> None:
    """Fire *fault* inside a worker (or raise its in-process sentinel).

    Called by the executor's worker shim before the real worker runs.
    In a pool worker (``in_process=False``) a ``crash`` genuinely kills
    the process and a ``hang`` genuinely sleeps; in serial execution
    the private sentinels let the executor reproduce the identical
    retry/quarantine behaviour without killing or blocking itself.
    """
    if fault.kind == "raise":
        raise InjectedWorkerError("injected executor fault: raise")
    if fault.kind == "crash":
        if in_process:
            raise _InjectedCrash()
        os._exit(CRASH_EXIT_CODE)
    # hang
    if in_process:
        raise _InjectedHang()
    time.sleep(fault.hang_seconds)
    raise InjectedWorkerError("injected hang outlived its sleep")
