"""Network-fault sweep: transport overhead vs message-fault rates.

The network companion to :mod:`repro.bench.fault_tolerance`: run the
same workload while the medium drops and duplicates frames at
increasing Poisson rates (:func:`repro.runtime.failures.
exponential_network_plan`) and summarise, per protocol:

- **availability** — the fraction of runs that still complete (the
  reliable transport must absorb every fault, so the claim is 1.0
  across the whole sweep);
- **overhead ratio** ``r = Γ/T − 1`` — mean completion time Γ under
  faults relative to the same protocol's fault-free baseline T, the
  paper's overhead metric applied to the transport;
- the transport accounting (frames, retransmits, drops, duplicates).

The paper's protocols assume reliable FIFO channels; this sweep prices
what *earning* that assumption costs when the wire misbehaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.programs import ring_pipeline
from repro.protocols import (
    ApplicationDrivenProtocol,
    MessageLoggingProtocol,
    UncoordinatedProtocol,
)
from repro.runtime import Simulation
from repro.runtime.failures import exponential_network_plan

DEFAULT_NETWORK_RATES = (0.0, 0.02, 0.05, 0.1)


@dataclass(frozen=True)
class NetworkSweepRow:
    """Aggregate of one (protocol, network-fault-rate) cell."""

    protocol: str
    rate: float
    runs: int
    completed: int
    mean_time: float
    baseline_time: float
    frames: int
    retransmits: int
    dropped: int
    duplicated: int

    @property
    def availability(self) -> float:
        """Fraction of runs in this cell that completed."""
        return self.completed / self.runs if self.runs else 0.0

    @property
    def overhead_ratio(self) -> float:
        """The paper's ``r = Γ/T − 1`` against the fault-free baseline."""
        if not self.baseline_time or not self.completed:
            return 0.0
        return self.mean_time / self.baseline_time - 1.0

    @staticmethod
    def header() -> str:
        """Column headers aligned with :meth:`row`."""
        return (f"{'protocol':>14s} {'rate':>6s} {'avail':>6s} "
                f"{'time':>8s} {'r':>8s} {'frames':>7s} {'retx':>6s} "
                f"{'drop':>5s} {'dup':>4s}")

    def row(self) -> str:
        """One aligned table line for this cell."""
        return (f"{self.protocol:>14s} {self.rate:>6.2f} "
                f"{self.availability:>6.2f} {self.mean_time:>8.2f} "
                f"{self.overhead_ratio:>8.4f} {self.frames:>7d} "
                f"{self.retransmits:>6d} {self.dropped:>5d} "
                f"{self.duplicated:>4d}")


def _protocols() -> list[tuple[str, object]]:
    return [
        ("appl-driven", ApplicationDrivenProtocol()),
        ("uncoordinated", UncoordinatedProtocol(period=6.0)),
        ("msg-logging", MessageLoggingProtocol(period=6.0)),
    ]


def network_fault_sweep(
    rates: tuple[float, ...] = DEFAULT_NETWORK_RATES,
    seeds: range = range(4),
    n_processes: int = 3,
    steps: int = 10,
    horizon: float = 30.0,
) -> list[NetworkSweepRow]:
    """Run the sweep and return one row per (protocol, rate) cell.

    Each rate drives both the drop and duplicate Poisson processes per
    directed channel; each cell averages over ``seeds`` independently
    drawn schedules. No crashes are injected, so the overhead column
    isolates the transport's retransmission cost.
    """
    rows: list[NetworkSweepRow] = []
    for name, _ in _protocols():
        baseline = Simulation(
            ring_pipeline(), n_processes,
            params={"steps": steps}, protocol=dict(_protocols())[name],
        ).run().completion_time
        for rate in rates:
            completed = 0
            total_time = 0.0
            counters = dict.fromkeys(
                ("frames", "retransmits", "dropped", "duplicated"), 0)
            for seed in seeds:
                plan = exponential_network_plan(
                    n_processes, horizon,
                    drop_rate=rate, duplicate_rate=rate,
                    seed=seed,
                )
                sim = Simulation(
                    ring_pipeline(), n_processes,
                    params={"steps": steps},
                    protocol=dict(_protocols())[name],
                    failure_plan=plan,
                )
                result = sim.run()
                stats = result.stats
                if stats.completed:
                    completed += 1
                    total_time += result.completion_time
                counters["frames"] += stats.frames_sent
                counters["retransmits"] += stats.retransmits
                counters["dropped"] += stats.dropped_frames
                counters["duplicated"] += stats.duplicate_frames
            rows.append(NetworkSweepRow(
                protocol=name, rate=rate, runs=len(seeds),
                completed=completed,
                mean_time=total_time / completed if completed else 0.0,
                baseline_time=baseline,
                frames=counters["frames"],
                retransmits=counters["retransmits"],
                dropped=counters["dropped"],
                duplicated=counters["duplicated"],
            ))
    return rows


def format_network_table(rows: list[NetworkSweepRow]) -> str:
    """Render sweep rows as the aligned plain-text table."""
    return NetworkSweepRow.header() + "\n" + "\n".join(r.row() for r in rows)
