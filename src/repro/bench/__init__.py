"""Benchmark/figure harness.

Regenerates the data series behind the paper's evaluation figures and
formats them as aligned ASCII tables (the repo has no plotting
dependency). Simulation-based experiments — the validation runs beyond
the paper's analytic study — live in :mod:`repro.bench.workloads`.
"""

from repro.bench.engine_hotpath import (
    engine_hotpath_report,
    format_engine_hotpath,
)
from repro.bench.figures import (
    figure8_table,
    figure9_table,
    format_curves,
    shape_check_figure8,
    shape_check_figure9,
)
from repro.bench.obs_overhead import (
    ObsOverheadReport,
    format_obs_overhead,
    obs_overhead_report,
)
from repro.bench.record import (
    BenchCase,
    BenchReport,
    load_report,
    write_report,
)
from repro.bench.transform_hotpath import (
    format_transform_hotpath,
    transform_hotpath_report,
)
from repro.bench.workloads import (
    ProtocolRunSummary,
    WorkloadSpec,
    run_protocol_comparison,
    standard_workloads,
)

__all__ = [
    "BenchCase",
    "BenchReport",
    "ObsOverheadReport",
    "ProtocolRunSummary",
    "WorkloadSpec",
    "engine_hotpath_report",
    "figure8_table",
    "figure9_table",
    "format_curves",
    "format_engine_hotpath",
    "format_obs_overhead",
    "format_transform_hotpath",
    "load_report",
    "obs_overhead_report",
    "run_protocol_comparison",
    "shape_check_figure8",
    "shape_check_figure9",
    "standard_workloads",
    "transform_hotpath_report",
    "write_report",
]
