"""Benchmark/figure harness.

Regenerates the data series behind the paper's evaluation figures and
formats them as aligned ASCII tables (the repo has no plotting
dependency). Simulation-based experiments — the validation runs beyond
the paper's analytic study — live in :mod:`repro.bench.workloads`.
"""

from repro.bench.figures import (
    figure8_table,
    figure9_table,
    format_curves,
    shape_check_figure8,
    shape_check_figure9,
)
from repro.bench.obs_overhead import (
    ObsOverheadReport,
    format_obs_overhead,
    obs_overhead_report,
)
from repro.bench.workloads import (
    ProtocolRunSummary,
    WorkloadSpec,
    run_protocol_comparison,
    standard_workloads,
)

__all__ = [
    "ObsOverheadReport",
    "ProtocolRunSummary",
    "WorkloadSpec",
    "figure8_table",
    "figure9_table",
    "format_curves",
    "format_obs_overhead",
    "obs_overhead_report",
    "run_protocol_comparison",
    "shape_check_figure8",
    "shape_check_figure9",
    "standard_workloads",
]
