"""Machine-readable performance records (``results/BENCH_*.json``).

The text artifacts in ``results/`` are for humans; perf work needs
numbers a script can diff. Each microbenchmark produces a
:class:`BenchReport` — a named set of :class:`BenchCase` rows, each
timing the optimized implementation against the retained reference
implementation of the same computation on identical inputs — and
serialises it as JSON via :func:`write_report`.

Wall-clock seconds are machine-dependent; the *speedup* ratio
(reference time / optimized time, both measured on the same machine in
the same process) is what regression tooling compares. The CI perf
smoke (``tools/perf_smoke.py``) fails only when a current ratio drops
below half of the committed one, so the check is portable across
hardware while still catching real regressions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class BenchCase:
    """One timed comparison on one workload configuration.

    ``reference_wall_s``/``optimized_wall_s`` are best-of-N wall times
    for the old and new implementations; ``ops`` counts the work units
    processed (events simulated, paths decided, nodes cloned) so
    throughput can be derived; ``identical`` records that both
    implementations produced equal results on this input — a bench row
    is meaningless if they diverge. ``extra`` carries case-specific
    context (payload byte counts, cost-attribution shares); its keys
    are merged into the JSON row but deliberately ignored by the
    speedup-ratio diff in ``tools/perf_smoke.py``.
    """

    name: str
    reference_wall_s: float
    optimized_wall_s: float
    ops: int
    identical: bool
    extra: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Reference time over optimized time (>1 means faster)."""
        if self.optimized_wall_s <= 0.0:
            return float("inf")
        return self.reference_wall_s / self.optimized_wall_s

    def as_dict(self) -> dict:
        """JSON-ready form of this case (derived fields included)."""
        row = {
            "name": self.name,
            "reference_wall_s": round(self.reference_wall_s, 6),
            "optimized_wall_s": round(self.optimized_wall_s, 6),
            "speedup": round(self.speedup, 3),
            "ops": self.ops,
            "ops_per_sec": (
                round(self.ops / self.optimized_wall_s, 1)
                if self.optimized_wall_s > 0.0
                else None
            ),
            "identical": self.identical,
        }
        for key, value in self.extra.items():
            row.setdefault(key, value)
        return row


@dataclass(frozen=True)
class BenchReport:
    """A benchmark's full case list plus its headline number."""

    benchmark: str
    cases: tuple[BenchCase, ...]

    @property
    def min_speedup(self) -> float:
        """The weakest case's ratio — what the CI smoke guards."""
        return min(case.speedup for case in self.cases)

    def as_dict(self) -> dict:
        """JSON-ready form of the whole report."""
        return {
            "benchmark": self.benchmark,
            "min_speedup": round(self.min_speedup, 3),
            "cases": [case.as_dict() for case in self.cases],
        }

    def to_json(self) -> str:
        """Serialised report, newline-terminated (the file body)."""
        return json.dumps(self.as_dict(), indent=2) + "\n"


def write_report(report: BenchReport, directory: str | Path) -> Path:
    """Write *report* as ``BENCH_<name>.json`` under *directory*."""
    path = Path(directory) / f"BENCH_{report.benchmark}.json"
    path.write_text(report.to_json())
    return path


def load_report(path: str | Path) -> BenchReport:
    """Read a report written by :func:`write_report`."""
    data = json.loads(Path(path).read_text())
    derived = {
        "name", "reference_wall_s", "optimized_wall_s", "speedup",
        "ops", "ops_per_sec", "identical",
    }
    cases = tuple(
        BenchCase(
            name=case["name"],
            reference_wall_s=case["reference_wall_s"],
            optimized_wall_s=case["optimized_wall_s"],
            ops=case["ops"],
            identical=case["identical"],
            extra={k: v for k, v in case.items() if k not in derived},
        )
        for case in data["cases"]
    )
    return BenchReport(benchmark=data["benchmark"], cases=cases)
