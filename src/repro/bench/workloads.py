"""Simulation workloads and the protocol-comparison harness.

The paper evaluates analytically; this module adds the missing
empirical leg: run the *same* MiniMP workload under every protocol on
the same seed and failure plan, and summarise overhead, coordination
cost, and recovery behaviour per protocol. Used by the validation
benches (V4/V5 in DESIGN.md) and the ``protocol_comparison`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.lang import ast_nodes as ast
from repro.lang.programs import (
    broadcast_reduce,
    jacobi,
    master_worker,
    pingpong,
    ring_pipeline,
    stencil_1d,
    token_ring,
    tree_reduce,
)
from repro.phases.pipeline import transform
from repro.protocols import (
    ApplicationDrivenProtocol,
    ChandyLamportProtocol,
    InducedProtocol,
    MessageLoggingProtocol,
    SyncAndStopProtocol,
    UncoordinatedProtocol,
)
from repro.runtime import FailurePlan, RuntimeCosts, Simulation


@dataclass(frozen=True)
class WorkloadSpec:
    """A named simulation workload.

    ``make_program`` returns a fresh AST per run; ``n_processes`` and
    ``params`` configure the system; ``transformed`` marks programs
    whose checkpoint placement already passed Phase III (required for
    the application-driven protocol).
    """

    name: str
    make_program: Callable[[], ast.Program]
    n_processes: int
    params: dict[str, int] = field(default_factory=dict)
    transformed: bool = True


def standard_workloads(steps: int = 20) -> list[WorkloadSpec]:
    """The benchmark workload suite (all Phase-III-safe placements)."""
    return [
        WorkloadSpec("jacobi", jacobi, 4, {"steps": steps}),
        WorkloadSpec("ring_pipeline", ring_pipeline, 5, {"steps": steps}),
        WorkloadSpec("master_worker", master_worker, 4, {"steps": steps}),
        WorkloadSpec("stencil_1d", stencil_1d, 4, {"steps": steps}),
        WorkloadSpec("broadcast_reduce", broadcast_reduce, 4, {"steps": steps}),
        WorkloadSpec("token_ring", token_ring, 5, {"steps": steps}),
        WorkloadSpec("pingpong", pingpong, 6, {"steps": steps}),
        WorkloadSpec("tree_reduce", tree_reduce, 8, {"steps": steps}),
    ]


@dataclass(frozen=True)
class ProtocolRunSummary:
    """Comparable outcome of one (workload, protocol) run."""

    workload: str
    protocol: str
    completion_time: float
    checkpoints: int
    forced_checkpoints: int
    control_messages: int
    app_messages: int
    failures: int
    rollbacks: int
    lost_work: float
    completed: bool

    def row(self) -> str:
        """One aligned table row (pairs with :meth:`header`)."""
        return (
            f"{self.workload:>16s} {self.protocol:>14s} "
            f"{self.completion_time:>9.2f} {self.checkpoints:>6d} "
            f"{self.forced_checkpoints:>6d} {self.control_messages:>6d} "
            f"{self.rollbacks:>5d} {self.lost_work:>8.2f}"
        )

    @staticmethod
    def header() -> str:
        """Column headers matching :meth:`row`."""
        return (
            f"{'workload':>16s} {'protocol':>14s} {'time':>9s} {'ckpts':>6s} "
            f"{'forced':>6s} {'ctl':>6s} {'rb':>5s} {'lost':>8s}"
        )


def _protocol_factories(period: float):
    return {
        "appl-driven": lambda: ApplicationDrivenProtocol(),
        "SaS": lambda: SyncAndStopProtocol(period=period),
        "C-L": lambda: ChandyLamportProtocol(period=period),
        "uncoordinated": lambda: UncoordinatedProtocol(period=period),
        "CIC-BCS": lambda: InducedProtocol(period=period),
        "msg-logging": lambda: MessageLoggingProtocol(period=period),
    }


def run_protocol_comparison(
    workload: WorkloadSpec,
    period: float = 10.0,
    failure_plan: FailurePlan | None = None,
    costs: RuntimeCosts = RuntimeCosts(),
    seed: int = 0,
    protocols: tuple[str, ...] = (
        "appl-driven",
        "SaS",
        "C-L",
        "uncoordinated",
        "CIC-BCS",
        "msg-logging",
    ),
) -> list[ProtocolRunSummary]:
    """Run *workload* under each named protocol; return the summaries.

    The application-driven protocol runs the workload as-is (its
    checkpoint statements are the protocol); the runtime protocols run
    the checkpoint-free variant of the program (checkpoint statements
    stripped) so no workload checkpoints duplicate protocol ones.
    """
    factories = _protocol_factories(period)
    summaries: list[ProtocolRunSummary] = []
    for name in protocols:
        make = factories[name]
        program = workload.make_program()
        if name != "appl-driven":
            program = strip_checkpoints(program)
        plan = FailurePlan(crashes=list((failure_plan or FailurePlan.none()).crashes))
        sim = Simulation(
            program,
            workload.n_processes,
            params=dict(workload.params),
            costs=costs,
            protocol=make(),
            failure_plan=plan,
            seed=seed,
        )
        result = sim.run()
        summaries.append(
            ProtocolRunSummary(
                workload=workload.name,
                protocol=name,
                completion_time=result.completion_time,
                checkpoints=result.stats.checkpoints,
                forced_checkpoints=result.stats.forced_checkpoints,
                control_messages=result.stats.control_messages,
                app_messages=result.stats.app_messages,
                failures=result.stats.failures,
                rollbacks=result.stats.rollbacks,
                lost_work=result.stats.lost_work,
                completed=result.stats.completed,
            )
        )
    return summaries


def strip_checkpoints(program: ast.Program) -> ast.Program:
    """A copy of *program* with every ``checkpoint`` statement removed."""
    working = ast.clone(program)
    for node in ast.walk(working):
        if isinstance(node, ast.Block):
            node.statements[:] = [
                s for s in node.statements if not isinstance(s, ast.Checkpoint)
            ]
    return working


def ensure_transformed(program: ast.Program) -> ast.Program:
    """Run the offline pipeline on *program* and return the safe variant."""
    return transform(program).program
