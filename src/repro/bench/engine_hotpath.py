"""Engine hot-path microbenchmark: indexed vs reference scheduler.

Runs the same large-``n`` workloads under both simulation schedulers
(:class:`~repro.runtime.engine.Simulation` with ``scheduler="indexed"``
and ``scheduler="reference"``), asserts the runs are identical down to
the trace, and records best-of-N wall times. The reference scheduler
scans every process, control message, and timer each step — O(n) per
step — so its disadvantage grows with the process count; the cases here
use the largest configurations the workload programs support so the
scan cost dominates and the ratio is stable.

Result artifact: ``results/BENCH_engine.json`` (see
:mod:`repro.bench.record` for the schema and how CI consumes it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.bench.record import BenchCase, BenchReport
from repro.lang import ast_nodes as ast
from repro.lang.programs import stencil_1d, token_ring
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, RuntimeCosts, Simulation


@dataclass(frozen=True)
class _EngineCase:
    """One workload configuration timed under both schedulers."""

    name: str
    make_program: Callable[[], ast.Program]
    n_processes: int
    steps: int


#: Largest configurations of the shipped workloads: big enough that the
#: reference scheduler's per-step scan dominates its run time.
ENGINE_CASES: tuple[_EngineCase, ...] = (
    _EngineCase("stencil_1d_n192", stencil_1d, 192, 12),
    _EngineCase("stencil_1d_n256", stencil_1d, 256, 8),
    _EngineCase("token_ring_n192", token_ring, 192, 6),
)


def _run(base: ast.Program, case: _EngineCase, scheduler: str):
    sim = Simulation(
        ast.clone(base),
        case.n_processes,
        params={"steps": case.steps},
        costs=RuntimeCosts(),
        protocol=ApplicationDrivenProtocol(),
        failure_plan=FailurePlan.none(),
        seed=3,
        scheduler=scheduler,
    )
    start = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - start, result


def _fingerprint(result) -> tuple:
    events = tuple(
        (e.seq, e.time, e.process, e.kind.value, e.stmt_id, e.message_id)
        for e in result.trace.events
    )
    return (
        events,
        result.stats.as_dict(),
        result.final_env,
        result.completion_time,
    )


def engine_hotpath_report(repeats: int = 2) -> BenchReport:
    """Time every engine case under both schedulers (best of *repeats*).

    The program AST is built once per case and cloned per run so both
    schedulers execute byte-identical inputs (node ids come from a
    process-global counter; parsing twice would differ).
    """
    cases: list[BenchCase] = []
    for case in ENGINE_CASES:
        base = case.make_program()
        _run(base, case, "indexed")  # warm caches before timing
        best_indexed = best_reference = float("inf")
        identical = True
        ops = 0
        for _ in range(repeats):
            wall_i, result_i = _run(base, case, "indexed")
            wall_r, result_r = _run(base, case, "reference")
            best_indexed = min(best_indexed, wall_i)
            best_reference = min(best_reference, wall_r)
            identical &= _fingerprint(result_i) == _fingerprint(result_r)
            ops = len(result_i.trace.events)
        cases.append(
            BenchCase(
                name=case.name,
                reference_wall_s=best_reference,
                optimized_wall_s=best_indexed,
                ops=ops,
                identical=identical,
            )
        )
    return BenchReport(benchmark="engine", cases=tuple(cases))


def format_engine_hotpath(report: BenchReport) -> str:
    """Aligned text table (the JSON is the canonical artifact)."""
    lines = [
        f"{'case':>18s} {'reference':>10s} {'indexed':>10s} "
        f"{'speedup':>8s} {'events':>8s} {'identical':>9s}"
    ]
    for case in report.cases:
        lines.append(
            f"{case.name:>18s} {case.reference_wall_s:>9.3f}s "
            f"{case.optimized_wall_s:>9.3f}s {case.speedup:>7.2f}x "
            f"{case.ops:>8d} {str(case.identical):>9s}"
        )
    return "\n".join(lines)
