"""Engine hot-path microbenchmark: compiled vs reference execution.

Runs the same large-``n`` workloads under the two retained
reference implementations — the scanning scheduler
(``scheduler="reference"``) driving the tree-walking interpreter
(``backend="reference"``) — and the optimized pair — the indexed
scheduler driving the closure-compiled backend
(``backend="compiled"``) — asserts the runs are identical down to the
trace (vector clocks included), and records best-of-N wall times. The
reference side walks AST nodes per statement and scans every process
per step; the optimized side executes pre-bound closures over slotted
frames under an event-heap scheduler, so the gap compounds across both
layers.

The garbage collector is disabled around each timed region (standard
microbenchmark practice, applied to both sides): collection pauses
land on whichever call site allocates at the wrong moment, and the
resulting attribution noise otherwise dominates case-to-case variance.

Result artifact: ``results/BENCH_engine.json`` (see
:mod:`repro.bench.record` for the schema and how CI consumes it).
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Callable

from repro.bench.record import BenchCase, BenchReport
from repro.lang import ast_nodes as ast
from repro.lang.programs import stencil_1d, token_ring
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, RuntimeCosts, Simulation
from repro.runtime.storage import StoreReceipt


@dataclass(frozen=True)
class _EngineCase:
    """One workload configuration timed under both execution stacks."""

    name: str
    make_program: Callable[[], ast.Program]
    n_processes: int
    steps: int


#: Largest configurations of the shipped workloads: big enough that
#: per-statement interpretation and per-step scheduling dominate the
#: run time on the reference side.
ENGINE_CASES: tuple[_EngineCase, ...] = (
    _EngineCase("stencil_1d_n192", stencil_1d, 192, 12),
    _EngineCase("stencil_1d_n256", stencil_1d, 256, 8),
    _EngineCase("token_ring_n192", token_ring, 192, 6),
)


def _run(base: ast.Program, case: _EngineCase, scheduler: str, backend: str):
    sim = Simulation(
        ast.clone(base),
        case.n_processes,
        params={"steps": case.steps},
        costs=RuntimeCosts(),
        protocol=ApplicationDrivenProtocol(),
        failure_plan=FailurePlan.none(),
        seed=3,
        scheduler=scheduler,
        backend=backend,
    )
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        start = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
    return wall, result


def _fingerprint(result) -> tuple:
    events = tuple(
        (
            e.seq, e.time, e.process, e.kind.value, e.stmt_id,
            e.message_id, e.clock.components,
        )
        for e in result.trace.events
    )
    return (
        events,
        result.stats.as_dict(),
        result.final_env,
        result.completion_time,
    )


def engine_hotpath_report(repeats: int = 4) -> BenchReport:
    """Time every engine case under both stacks (best of *repeats*).

    The program AST is built once per case and cloned per run so both
    stacks execute byte-identical inputs (node ids come from a
    process-global counter; parsing twice would differ). The optimized
    side is warmed once before timing so one-time compilation cost
    stays out of the measured region — mirroring real use, where a
    campaign compiles once and simulates many times.
    """
    cases: list[BenchCase] = []
    for case in ENGINE_CASES:
        base = case.make_program()
        _run(base, case, "indexed", "compiled")  # warm before timing
        best_optimized = best_reference = float("inf")
        # Each stack's repeats run back to back (not interleaved): a
        # reference run's allocation churn would otherwise cold-start
        # the next compiled run's caches, and best-of-N is meant to
        # estimate each stack's floor, not its recovery from the other.
        for _ in range(repeats):
            wall_o, result_o = _run(base, case, "indexed", "compiled")
            best_optimized = min(best_optimized, wall_o)
        for _ in range(repeats):
            wall_r, result_r = _run(base, case, "reference", "reference")
            best_reference = min(best_reference, wall_r)
        identical = _fingerprint(result_o) == _fingerprint(result_r)
        ops = len(result_o.trace.events)
        cases.append(
            BenchCase(
                name=case.name,
                reference_wall_s=best_reference,
                optimized_wall_s=best_optimized,
                ops=ops,
                identical=identical,
            )
        )
    cases.extend(engine_breakdown_cases(repeats=repeats))
    return BenchReport(benchmark="engine", cases=tuple(cases))


#: Cost components the breakdown cases disable one at a time (the
#: residual after all three is statement execution + scheduling).
BREAKDOWN_COMPONENTS: tuple[str, ...] = (
    "storage-commit", "trace", "clock",
)

#: The workload whose compiled-vs-reference gap is the narrowest of
#: :data:`ENGINE_CASES` — its statements are tiny, so engine-side
#: bookkeeping (commit, trace, vector clocks) is the bound to explain.
_BREAKDOWN_CASE = _EngineCase("token_ring_n192", token_ring, 192, 6)


def _run_component_stubbed(
    base: ast.Program, case: _EngineCase, component: str
):
    """One compiled-stack run with a single cost component disabled.

    Stubbing is behaviour-preserving for everything the ``identical``
    check covers (final environments, completion time, verdict) on a
    fault-free run: checkpoint commits, trace rows, and vector clocks
    are recovery/analysis artifacts, never inputs to forward execution.
    """
    sim = Simulation(
        ast.clone(base),
        case.n_processes,
        params={"steps": case.steps},
        costs=RuntimeCosts(),
        protocol=ApplicationDrivenProtocol(),
        failure_plan=FailurePlan.none(),
        seed=3,
        scheduler="indexed",
        backend="compiled",
    )
    restore: list = []
    if component == "storage-commit":
        receipt = StoreReceipt(published=True)
        sim.storage.store = lambda checkpoint, **kwargs: receipt
    elif component == "trace":
        sim.trace.append = lambda *args, **kwargs: None
    elif component == "clock":
        from repro.causality.vector_clock import VectorClock

        restore.append((VectorClock, "tick", VectorClock.tick))
        restore.append((VectorClock, "receive", VectorClock.receive))
        VectorClock.tick = lambda self, rank: self
        VectorClock.receive = lambda self, other, rank: self
    else:
        raise ValueError(f"unknown breakdown component {component!r}")
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        start = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
        for owner, name, original in restore:
            setattr(owner, name, original)
    return wall, result


def _outcome(result) -> tuple:
    """What component stubbing must not change."""
    return (result.final_env, result.completion_time, result.verdict)


def engine_breakdown_cases(repeats: int = 4) -> tuple[BenchCase, ...]:
    """Per-component cost attribution of the compiled hot path.

    Each case re-times :data:`_BREAKDOWN_CASE` with one engine cost
    component stubbed out (``reference`` = the stock compiled run,
    ``optimized`` = the stubbed run), so ``speedup`` exposes how much
    of the wall time that component accounts for — machine-readably,
    as ``cost_share`` in the JSON row. These rows attribute the
    token-ring shortfall; they are deliberately **not** in
    ``tools/perf_smoke.py``'s ``REQUIRED_ENGINE_CASES``.
    """
    case = _BREAKDOWN_CASE
    base = case.make_program()
    _run(base, case, "indexed", "compiled")  # warm before timing
    best_stock = float("inf")
    for _ in range(repeats):
        wall, result_stock = _run(base, case, "indexed", "compiled")
        best_stock = min(best_stock, wall)
    rows: list[BenchCase] = []
    for component in BREAKDOWN_COMPONENTS:
        best_stubbed = float("inf")
        for _ in range(repeats):
            wall, result_stubbed = _run_component_stubbed(
                base, case, component
            )
            best_stubbed = min(best_stubbed, wall)
        share = max(0.0, 1.0 - best_stubbed / best_stock)
        rows.append(
            BenchCase(
                name=f"{case.name}_minus_{component}",
                reference_wall_s=best_stock,
                optimized_wall_s=best_stubbed,
                ops=len(result_stock.trace.events),
                identical=_outcome(result_stock) == _outcome(
                    result_stubbed
                ),
                extra={
                    "component": component,
                    "cost_share": round(share, 4),
                },
            )
        )
    return tuple(rows)


def format_engine_hotpath(report: BenchReport) -> str:
    """Aligned text table (the JSON is the canonical artifact)."""
    lines = [
        f"{'case':>18s} {'reference':>10s} {'compiled':>10s} "
        f"{'speedup':>8s} {'events':>8s} {'identical':>9s}"
    ]
    for case in report.cases:
        lines.append(
            f"{case.name:>18s} {case.reference_wall_s:>9.3f}s "
            f"{case.optimized_wall_s:>9.3f}s {case.speedup:>7.2f}x "
            f"{case.ops:>8d} {str(case.identical):>9s}"
        )
    return "\n".join(lines)
