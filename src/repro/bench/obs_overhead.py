"""Observability overhead: proof that disabled tracing is free.

The tracing subsystem (:mod:`repro.obs`) promises two things that this
bench turns into checkable artifacts:

1. **Zero perturbation** — attaching an :class:`~repro.obs.Observability`
   changes *nothing* about the simulated execution: the exported
   :class:`~repro.runtime.trace.ExecutionTrace` and the
   :class:`~repro.runtime.engine.SimulationStats` of a traced run are
   byte-identical to the untraced run's. Emission consumes no
   randomness and reads no wall clock, so the discrete-event schedule
   cannot shift.
2. **Determinism** — two untraced runs, and likewise two traced runs,
   of the same (program, seed, fault plan) produce byte-identical
   artifacts; the traced pair also produces byte-identical JSONL event
   logs.

Everything reported here is deterministic (counts and verdicts, never
wall-clock timings), so the ``results/obs_overhead.txt`` snapshot is
reproducible byte-for-byte. The *timing* of the enabled path lives in
``benchmarks/test_bench_obs_overhead.py``, which is allowed to be
machine-dependent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.lang.programs import ring_pipeline
from repro.obs import Observability
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.export import trace_to_json


_PROGRAM = None


def _program():
    """The cached workload program (statement IDs come from a global
    counter, so re-parsing would shift them between runs)."""
    global _PROGRAM
    if _PROGRAM is None:
        _PROGRAM = ring_pipeline()
    return _PROGRAM


def _run(observer=None, with_crash: bool = True):
    """One standard workload run, optionally traced."""
    plan = FailurePlan.single(14.0, 1) if with_crash else None
    return Simulation(
        _program(),
        3,
        params={"steps": 8},
        protocol=ApplicationDrivenProtocol(),
        failure_plan=plan,
        seed=0,
        observer=observer,
    ).run()


@dataclass(frozen=True)
class ObsOverheadReport:
    """Deterministic verdicts and counts of the overhead experiment."""

    disabled_deterministic: bool
    enabled_deterministic: bool
    zero_perturbation: bool
    jsonl_deterministic: bool
    events: int
    events_by_category: dict[str, int]

    @property
    def ok(self) -> bool:
        """Whether every zero-cost/determinism claim held."""
        return (
            self.disabled_deterministic
            and self.enabled_deterministic
            and self.zero_perturbation
            and self.jsonl_deterministic
        )


def obs_overhead_report() -> ObsOverheadReport:
    """Run the experiment: 2 untraced + 2 traced runs, compare artifacts.

    "Byte-identical" is checked on the canonical JSON exports — the
    trace via :func:`~repro.runtime.export.trace_to_json` plus the
    stats dict, and for traced runs additionally the JSONL event log.
    """
    def fingerprint(result) -> str:
        stats = json.dumps(result.stats.as_dict(), sort_keys=True)
        return trace_to_json(result.trace) + "\n" + stats

    off_a, off_b = fingerprint(_run()), fingerprint(_run())
    obs_a, obs_b = Observability(), Observability()
    on_a, on_b = _run(observer=obs_a.bus), _run(observer=obs_b.bus)
    jsonl_a, jsonl_b = obs_a.jsonl(), obs_b.jsonl()
    by_category: dict[str, int] = {}
    for event in obs_a.events:
        by_category[event.category] = by_category.get(event.category, 0) + 1
    return ObsOverheadReport(
        disabled_deterministic=off_a == off_b,
        enabled_deterministic=fingerprint(on_a) == fingerprint(on_b),
        zero_perturbation=fingerprint(on_a) == off_a,
        jsonl_deterministic=jsonl_a == jsonl_b,
        events=len(obs_a.events),
        events_by_category=by_category,
    )


def format_obs_overhead(report: ObsOverheadReport) -> str:
    """Render the report as the plain-text results snapshot."""
    verdict = {True: "HOLDS", False: "VIOLATED"}
    lines = [
        "Observability overhead (ring_pipeline, n=3, steps=8, 1 crash)",
        "",
        f"disabled runs byte-identical : {verdict[report.disabled_deterministic]}",
        f"traced runs byte-identical   : {verdict[report.enabled_deterministic]}",
        f"traced == untraced execution : {verdict[report.zero_perturbation]}",
        f"event logs byte-identical    : {verdict[report.jsonl_deterministic]}",
        "",
        f"events captured              : {report.events}",
    ]
    for category in sorted(report.events_by_category):
        lines.append(
            f"  {category:<27s}: {report.events_by_category[category]}"
        )
    lines.append("")
    lines.append(
        "disabled path is free: "
        + ("YES (no perturbation, no nondeterminism)"
           if report.ok else "NO — see violations above")
    )
    return "\n".join(lines)
