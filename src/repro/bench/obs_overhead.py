"""Observability overhead: proof that disabled tracing is free.

The tracing subsystem (:mod:`repro.obs`) promises two things that this
bench turns into checkable artifacts:

1. **Zero perturbation** — attaching an :class:`~repro.obs.Observability`
   changes *nothing* about the simulated execution: the exported
   :class:`~repro.runtime.trace.ExecutionTrace` and the
   :class:`~repro.runtime.engine.SimulationStats` of a traced run are
   byte-identical to the untraced run's. Emission consumes no
   randomness and reads no wall clock, so the discrete-event schedule
   cannot shift.
2. **Determinism** — two untraced runs, and likewise two traced runs,
   of the same (program, seed, fault plan) produce byte-identical
   artifacts; the traced pair also produces byte-identical JSONL event
   logs.

The span tracker (:mod:`repro.obs.spans`) makes the same bargain, and
the ``spans`` case here checks it: a span-instrumented transform
produces the identical program (spans never perturb the pipeline), the
recorded span set is the documented phase catalogue, and the
spans-off transform pays no measurable tax over an uninstrumented one
(the wall-clock comparison is folded into a bounded *verdict* — the
measured ratio itself is machine noise and stays out of the snapshot).

Everything reported here is deterministic (counts and verdicts, never
wall-clock timings), so the ``results/obs_overhead.txt`` snapshot is
reproducible byte-for-byte. The *timing* of the enabled path lives in
``benchmarks/test_bench_obs_overhead.py``, which is allowed to be
machine-dependent.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from repro.lang.programs import ring_pipeline, stencil_1d
from repro.obs import Observability
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.export import trace_to_json


_PROGRAM = None


def _program():
    """The cached workload program (statement IDs come from a global
    counter, so re-parsing would shift them between runs)."""
    global _PROGRAM
    if _PROGRAM is None:
        _PROGRAM = ring_pipeline()
    return _PROGRAM


def _run(observer=None, with_crash: bool = True):
    """One standard workload run, optionally traced."""
    plan = FailurePlan.single(14.0, 1) if with_crash else None
    return Simulation(
        _program(),
        3,
        params={"steps": 8},
        protocol=ApplicationDrivenProtocol(),
        failure_plan=plan,
        seed=0,
        observer=observer,
    ).run()


#: Spans-on wall time may exceed spans-off by at most this factor.
#: Four context managers around whole pipeline phases cost nanoseconds
#: against milliseconds of work, so 2x only trips on a real regression
#: (e.g. span bookkeeping moving into a per-statement loop).
SPAN_OVERHEAD_BOUND = 2.0


@dataclass(frozen=True)
class ObsOverheadReport:
    """Deterministic verdicts and counts of the overhead experiment."""

    disabled_deterministic: bool
    enabled_deterministic: bool
    zero_perturbation: bool
    jsonl_deterministic: bool
    events: int
    events_by_category: dict[str, int]
    span_zero_perturbation: bool
    span_deterministic: bool
    span_overhead_bounded: bool
    span_names: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether every zero-cost/determinism claim held."""
        return (
            self.disabled_deterministic
            and self.enabled_deterministic
            and self.zero_perturbation
            and self.jsonl_deterministic
            and self.span_zero_perturbation
            and self.span_deterministic
            and self.span_overhead_bounded
        )


def _span_case() -> tuple[bool, bool, bool, tuple[str, ...]]:
    """The span-tracker half of the experiment, on a stencil transform.

    Returns (zero_perturbation, deterministic, overhead_bounded, names):
    the tracked transform's output program is byte-identical to the
    untracked one, two tracked runs record the same span stream, and
    spans-on wall time stays within :data:`SPAN_OVERHEAD_BOUND` of
    spans-off (reported only as a verdict — the raw ratio is machine
    noise and would break the snapshot's reproducibility).
    """
    from repro.lang.printer import to_source
    from repro.obs.spans import SpanTracker
    from repro.phases.pipeline import transform

    program = stencil_1d()
    untracked = to_source(transform(program, force_insertion=True).program)
    tracker_a, tracker_b = SpanTracker(), SpanTracker()
    tracked = to_source(
        transform(program, force_insertion=True, tracker=tracker_a).program
    )
    transform(program, force_insertion=True, tracker=tracker_b)
    stream = tuple(span.name for span in tracker_a.spans)
    deterministic = stream == tuple(span.name for span in tracker_b.spans)

    def best_of(reps: int, runs: int, tracked: bool) -> float:
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            for _ in range(runs):
                tracker = SpanTracker() if tracked else None
                transform(program, force_insertion=True, tracker=tracker)
            best = min(best, time.perf_counter() - start)
        return best

    off = best_of(5, 3, tracked=False)
    on = best_of(5, 3, tracked=True)
    bounded = on <= off * SPAN_OVERHEAD_BOUND
    return untracked == tracked, deterministic, bounded, stream


def obs_overhead_report() -> ObsOverheadReport:
    """Run the experiment: 2 untraced + 2 traced runs, compare artifacts.

    "Byte-identical" is checked on the canonical JSON exports — the
    trace via :func:`~repro.runtime.export.trace_to_json` plus the
    stats dict, and for traced runs additionally the JSONL event log.
    """
    def fingerprint(result) -> str:
        stats = json.dumps(result.stats.as_dict(), sort_keys=True)
        return trace_to_json(result.trace) + "\n" + stats

    off_a, off_b = fingerprint(_run()), fingerprint(_run())
    obs_a, obs_b = Observability(), Observability()
    on_a, on_b = _run(observer=obs_a.bus), _run(observer=obs_b.bus)
    jsonl_a, jsonl_b = obs_a.jsonl(), obs_b.jsonl()
    by_category: dict[str, int] = {}
    for event in obs_a.events:
        by_category[event.category] = by_category.get(event.category, 0) + 1
    span_clean, span_det, span_bounded, span_names = _span_case()
    return ObsOverheadReport(
        disabled_deterministic=off_a == off_b,
        enabled_deterministic=fingerprint(on_a) == fingerprint(on_b),
        zero_perturbation=fingerprint(on_a) == off_a,
        jsonl_deterministic=jsonl_a == jsonl_b,
        events=len(obs_a.events),
        events_by_category=by_category,
        span_zero_perturbation=span_clean,
        span_deterministic=span_det,
        span_overhead_bounded=span_bounded,
        span_names=span_names,
    )


def format_obs_overhead(report: ObsOverheadReport) -> str:
    """Render the report as the plain-text results snapshot."""
    verdict = {True: "HOLDS", False: "VIOLATED"}
    lines = [
        "Observability overhead (ring_pipeline, n=3, steps=8, 1 crash)",
        "",
        f"disabled runs byte-identical : {verdict[report.disabled_deterministic]}",
        f"traced runs byte-identical   : {verdict[report.enabled_deterministic]}",
        f"traced == untraced execution : {verdict[report.zero_perturbation]}",
        f"event logs byte-identical    : {verdict[report.jsonl_deterministic]}",
        "",
        f"events captured              : {report.events}",
    ]
    for category in sorted(report.events_by_category):
        lines.append(
            f"  {category:<27s}: {report.events_by_category[category]}"
        )
    lines += [
        "",
        "Span tracker (stencil_1d transform, forced insertion)",
        "",
        f"tracked == untracked output  : {verdict[report.span_zero_perturbation]}",
        f"span stream deterministic    : {verdict[report.span_deterministic]}",
        f"{f'spans-on overhead < {SPAN_OVERHEAD_BOUND:.0f}x off':<29s}: "
        f"{verdict[report.span_overhead_bounded]}",
        f"spans recorded               : {' '.join(report.span_names)}",
    ]
    lines.append("")
    lines.append(
        "disabled path is free: "
        + ("YES (no perturbation, no nondeterminism)"
           if report.ok else "NO — see violations above")
    )
    return "\n".join(lines)
