"""Transform hot-path microbenchmark: verification and AST copying.

Two comparisons behind ``results/BENCH_transform.json``:

- **Condition 1 decision**: the bitset checker
  (:func:`~repro.phases.verification.check_condition1`) against the
  retained path-enumerating one
  (:func:`~repro.phases.verification.check_condition1_enumerated`) on
  *branchy* programs — ``k`` sequential two-way branches give ``2^k``
  once-through paths, so enumeration cost doubles per branch while the
  bitset DP grows linearly. The shipped workload programs are too small
  to separate the two; these inputs are where the asymptotic gap shows.
- **AST copying**: :func:`repro.lang.ast_nodes.clone` against
  ``copy.deepcopy`` on the same program, the swap that removed
  ``deepcopy`` from the Phase II/III transform loop.

Every case asserts the two implementations agree (same verdict and
violations, or structurally equal ASTs) before its timing is recorded.
"""

from __future__ import annotations

import copy
import time

from repro.bench.record import BenchCase, BenchReport
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.printer import ast_equal
from repro.phases.matching import build_extended_cfg
from repro.phases.verification import (
    check_condition1,
    check_condition1_enumerated,
)


def branchy_program(branches: int) -> ast.Program:
    """``branches`` sequential if/else diamonds, one checkpoint per arm.

    Every once-through path crosses exactly ``branches`` checkpoints
    (balanced), and there are ``2^branches`` such paths.
    """
    lines = ["program branchy():", "    x = init(myrank)"]
    for index in range(branches):
        lines += [
            f"    if x % 2 == {index % 2}:",
            "        checkpoint",
            "        x = x + 1",
            "    else:",
            "        checkpoint",
            "        x = x + 2",
        ]
    return parse("\n".join(lines) + "\n")


def _verdict(result) -> tuple:
    return (
        result.ok,
        result.balanced,
        result.reason,
        tuple((v.index, v.src, v.dst, v.path) for v in result.violations),
    )


def _condition1_case(branches: int, repeats: int) -> BenchCase:
    ext = build_extended_cfg(branchy_program(branches))
    best_bitset = best_enum = float("inf")
    identical = True
    for _ in range(repeats):
        start = time.perf_counter()
        fast = check_condition1(ext)
        best_bitset = min(best_bitset, time.perf_counter() - start)
        start = time.perf_counter()
        slow = check_condition1_enumerated(ext)
        best_enum = min(best_enum, time.perf_counter() - start)
        identical &= _verdict(fast) == _verdict(slow)
    return BenchCase(
        name=f"condition1_2^{branches}_paths",
        reference_wall_s=best_enum,
        optimized_wall_s=best_bitset,
        ops=2**branches,
        identical=identical,
    )


def _clone_case(repeats: int, copies: int = 50) -> BenchCase:
    program = branchy_program(12)
    n_nodes = sum(1 for _ in ast.walk(program))
    best_clone = best_deepcopy = float("inf")
    identical = True
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(copies):
            cloned = ast.clone(program)
        best_clone = min(best_clone, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(copies):
            deep = copy.deepcopy(program)
        best_deepcopy = min(best_deepcopy, time.perf_counter() - start)
        identical &= ast_equal(cloned, deep) and ast_equal(cloned, program)
    return BenchCase(
        name="ast_clone_vs_deepcopy",
        reference_wall_s=best_deepcopy,
        optimized_wall_s=best_clone,
        ops=n_nodes * copies,
        identical=identical,
    )


def transform_hotpath_report(repeats: int = 2) -> BenchReport:
    """Time the verification and copying comparisons (best of N)."""
    cases = [
        _condition1_case(branches, repeats) for branches in (10, 12, 14)
    ]
    cases.append(_clone_case(repeats))
    return BenchReport(benchmark="transform", cases=tuple(cases))


def format_transform_hotpath(report: BenchReport) -> str:
    """Aligned text table (the JSON is the canonical artifact)."""
    lines = [
        f"{'case':>24s} {'reference':>10s} {'optimized':>10s} "
        f"{'speedup':>8s} {'ops':>8s} {'identical':>9s}"
    ]
    for case in report.cases:
        lines.append(
            f"{case.name:>24s} {case.reference_wall_s:>9.3f}s "
            f"{case.optimized_wall_s:>9.3f}s {case.speedup:>7.2f}x "
            f"{case.ops:>8d} {str(case.identical):>9s}"
        )
    return "\n".join(lines)
