"""Fault-tolerance sweep: availability and overhead vs storage faults.

The adversarial-fault companion to :mod:`repro.bench.workloads`: run
the same workload under increasing storage-fault rates (write
failures, torn writes, bit rot, transient errors drawn from a Poisson
process by :func:`repro.runtime.failures.exponential_fault_plan`) and
summarise, per protocol:

- **availability** — the fraction of runs that still complete (a run
  is lost only when no fully-intact recovery line survives);
- **overhead** — mean completion time relative to the same protocol's
  zero-fault baseline;
- the fault/recovery accounting (retries, torn writes, bit rot,
  degraded recoveries and their depth).

The paper argues recovery lines survive without coordination; this
sweep quantifies how far that survival stretches when stable storage
itself misbehaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RecoveryError, StorageError
from repro.lang.programs import ring_pipeline
from repro.protocols import ApplicationDrivenProtocol, UncoordinatedProtocol
from repro.runtime import Simulation
from repro.runtime.failures import exponential_fault_plan

DEFAULT_RATES = (0.0, 0.01, 0.03, 0.06)


@dataclass(frozen=True)
class FaultSweepRow:
    """Aggregate of one (protocol, storage-fault-rate) cell."""

    protocol: str
    rate: float
    runs: int
    completed: int
    mean_time: float
    crashes: int
    write_failures: int
    torn_writes: int
    bit_rot: int
    retries: int
    fallbacks: int
    max_depth: int

    @property
    def availability(self) -> float:
        """Fraction of runs in this cell that completed."""
        return self.completed / self.runs if self.runs else 0.0

    @staticmethod
    def header() -> str:
        """Column headers aligned with :meth:`row`."""
        return (f"{'protocol':>14s} {'rate':>6s} {'avail':>6s} "
                f"{'time':>8s} {'crash':>6s} {'wfail':>6s} {'torn':>5s} "
                f"{'rot':>4s} {'retry':>6s} {'fb':>4s} {'depth':>6s}")

    def row(self) -> str:
        """One aligned table line for this cell."""
        return (f"{self.protocol:>14s} {self.rate:>6.2f} "
                f"{self.availability:>6.2f} {self.mean_time:>8.2f} "
                f"{self.crashes:>6d} {self.write_failures:>6d} "
                f"{self.torn_writes:>5d} {self.bit_rot:>4d} "
                f"{self.retries:>6d} {self.fallbacks:>4d} "
                f"{self.max_depth:>6d}")


def _protocols() -> list[tuple[str, object]]:
    return [
        ("appl-driven", ApplicationDrivenProtocol()),
        ("uncoordinated", UncoordinatedProtocol(period=6.0)),
    ]


def fault_tolerance_sweep(
    rates: tuple[float, ...] = DEFAULT_RATES,
    seeds: range = range(4),
    n_processes: int = 3,
    steps: int = 10,
    horizon: float = 30.0,
    failure_rate: float = 0.02,
) -> list[FaultSweepRow]:
    """Run the sweep and return one row per (protocol, rate) cell.

    Each cell averages over ``seeds`` independently drawn fault plans;
    crashes are held at ``failure_rate`` throughout so the columns
    isolate the effect of the *storage* faults. Runs that exhaust
    every recovery line raise and count against availability.
    """
    rows: list[FaultSweepRow] = []
    for name, _ in _protocols():
        for rate in rates:
            completed = 0
            total_time = 0.0
            counters = dict.fromkeys(
                ("crashes", "write_failures", "torn_writes", "bit_rot",
                 "retries", "fallbacks"), 0)
            max_depth = 0
            for seed in seeds:
                plan = exponential_fault_plan(
                    n_processes, horizon,
                    failure_rate=failure_rate,
                    storage_fault_rate=rate,
                    seed=seed, max_failures=2,
                )
                protocol = dict(_protocols())[name]
                sim = Simulation(
                    ring_pipeline(), n_processes,
                    params={"steps": steps}, protocol=protocol,
                    failure_plan=plan,
                )
                try:
                    result = sim.run()
                except (RecoveryError, StorageError):
                    # No intact recovery line left: the run is lost.
                    continue
                stats = result.stats
                if stats.completed:
                    completed += 1
                    total_time += result.completion_time
                counters["crashes"] += stats.failures
                counters["write_failures"] += stats.storage_write_failures
                counters["torn_writes"] += stats.torn_writes
                counters["bit_rot"] += stats.bit_rot_injected
                counters["retries"] += stats.storage_retries
                counters["fallbacks"] += stats.recovery_fallbacks
                max_depth = max(max_depth, stats.max_fallback_depth)
            rows.append(FaultSweepRow(
                protocol=name, rate=rate, runs=len(seeds),
                completed=completed,
                mean_time=total_time / completed if completed else 0.0,
                crashes=counters["crashes"],
                write_failures=counters["write_failures"],
                torn_writes=counters["torn_writes"],
                bit_rot=counters["bit_rot"],
                retries=counters["retries"],
                fallbacks=counters["fallbacks"],
                max_depth=max_depth,
            ))
    return rows


def format_fault_table(rows: list[FaultSweepRow]) -> str:
    """Render sweep rows as the aligned plain-text table."""
    return FaultSweepRow.header() + "\n" + "\n".join(r.row() for r in rows)
