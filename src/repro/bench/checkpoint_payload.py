"""Checkpoint payload microbenchmark: full vs minimized content.

For each workload, runs the same simulation (crash plan included)
twice — ``checkpoint_mode="full"`` against ``"pruned+delta"`` — and
records two things per case:

- **payload bytes**: total durable wire bytes of the surviving
  checkpoint history under each mode (``extra`` fields; exact, not
  timed), plus the reduction ratio. This is the paper-level claim —
  application-driven content minimization shrinks what each commit
  must push to stable storage.
- **commit latency**: best-of-N wall time to serialise and checksum
  every stored entry's wire payload — the CPU cost a durable commit
  pays per checkpoint. The simulator's virtual-time store publishes
  references, so this is measured here, over the real history, with
  the real canonical encoder (:mod:`repro.runtime.encoding`) and the
  real CRC. ``reference_wall_s`` is the full-mode history,
  ``optimized_wall_s`` the minimized one.

``identical`` asserts the two modes produced byte-identical behaviour
— same trace (vector clocks included), same statistics modulo the
byte-accounting counters, same final environments, same verdict —
under a failure plan that forces an actual recovery. A payload "win"
that changed what recovery restores would be a correctness bug, not
an optimization.

Result artifact: ``results/BENCH_checkpoint.json`` (see
:mod:`repro.bench.record`; ``tools/perf_smoke.py`` additionally pins
``minimized <= full`` payload bytes per case, an absolute,
machine-independent bound).
"""

from __future__ import annotations

import gc
import time
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.bench.record import BenchCase, BenchReport
from repro.lang import ast_nodes as ast
from repro.lang.programs import stencil_1d, stencil_halo, token_ring
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, RuntimeCosts, Simulation
from repro.runtime.failures import CrashEvent
from repro.runtime.storage import stored_payload

#: The minimized mode every case compares against ``"full"``.
MINIMIZED_MODE = "pruned+delta"


@dataclass(frozen=True)
class _PayloadCase:
    """One workload configuration measured under both content modes."""

    name: str
    make_program: Callable[[], ast.Program]
    n_processes: int
    steps: int
    crash_time: float


#: ``stencil_halo`` is the headline case (a scratch-heavy kernel where
#: liveness pruning + delta encoding pays >=2x); ``stencil_1d`` bounds
#: the win on a small-state workload; ``token_ring`` at larger ``n``
#: shows the delta side alone carrying clock-dominated payloads.
PAYLOAD_CASES: tuple[_PayloadCase, ...] = (
    _PayloadCase("stencil_halo_n8", stencil_halo, 8, 12, 29.5),
    _PayloadCase("stencil_1d_n8", stencil_1d, 8, 8, 19.5),
    _PayloadCase("token_ring_n48", token_ring, 48, 6, 39.5),
)

#: Statistics counters that legitimately differ across content modes
#: (they count stored/reclaimed *wire* bytes, which is the point).
_BYTE_STATS = ("stored_bytes", "gc_reclaimed_bytes")


def _run(base: ast.Program, case: _PayloadCase, mode: str):
    sim = Simulation(
        ast.clone(base),
        case.n_processes,
        params={"steps": case.steps},
        costs=RuntimeCosts(),
        protocol=ApplicationDrivenProtocol(),
        failure_plan=FailurePlan(
            crashes=[CrashEvent(rank=1, time=case.crash_time)]
        ),
        seed=3,
        checkpoint_mode=mode,
    )
    result = sim.run()
    return sim, result


def _fingerprint(result) -> tuple:
    events = tuple(
        (
            e.seq, e.time, e.process, e.kind.value, e.stmt_id,
            e.message_id, e.clock.components,
        )
        for e in result.trace.events
    )
    stats = result.stats.as_dict()
    for key in _BYTE_STATS:
        stats.pop(key, None)
    return (
        events, stats, result.final_env, result.completion_time,
        result.verdict,
    )


def _surviving_entries(sim) -> list:
    return [
        checkpoint
        for rank in range(sim.n)
        for checkpoint in sim.storage.history(rank)
    ]


def _commit_wall_s(entries: list, repeats: int) -> float:
    """Best-of-N seconds to serialise + CRC every entry's wire payload."""
    best = float("inf")
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            for checkpoint in entries:
                zlib.crc32(stored_payload(checkpoint))
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best


def checkpoint_payload_report(repeats: int = 5) -> BenchReport:
    """Measure every payload case under both content modes."""
    cases: list[BenchCase] = []
    for case in PAYLOAD_CASES:
        base = case.make_program()
        sim_full, result_full = _run(base, case, "full")
        sim_min, result_min = _run(base, case, MINIMIZED_MODE)
        identical = _fingerprint(result_full) == _fingerprint(result_min)
        full_entries = _surviving_entries(sim_full)
        min_entries = _surviving_entries(sim_min)
        full_bytes = sum(c.payload_bytes for c in full_entries)
        min_bytes = sum(c.payload_bytes for c in min_entries)
        cases.append(
            BenchCase(
                name=case.name,
                reference_wall_s=_commit_wall_s(full_entries, repeats),
                optimized_wall_s=_commit_wall_s(min_entries, repeats),
                ops=len(min_entries),
                identical=identical,
                extra={
                    "full_payload_bytes": full_bytes,
                    "minimized_payload_bytes": min_bytes,
                    "payload_reduction": (
                        round(full_bytes / min_bytes, 3)
                        if min_bytes else None
                    ),
                },
            )
        )
    return BenchReport(benchmark="checkpoint", cases=tuple(cases))


def format_checkpoint_payload(report: BenchReport) -> str:
    """Aligned text table (the JSON is the canonical artifact)."""
    lines = [
        f"{'case':>18s} {'full':>9s} {'minimized':>10s} {'bytes':>7s} "
        f"{'commit':>8s} {'entries':>8s} {'identical':>9s}"
    ]
    for case in report.cases:
        full_bytes = case.extra.get("full_payload_bytes", 0)
        min_bytes = case.extra.get("minimized_payload_bytes", 0)
        reduction = case.extra.get("payload_reduction") or 0.0
        lines.append(
            f"{case.name:>18s} {full_bytes:>8d}B {min_bytes:>9d}B "
            f"{reduction:>6.2f}x {case.speedup:>7.2f}x "
            f"{case.ops:>8d} {str(case.identical):>9s}"
        )
    return "\n".join(lines)
