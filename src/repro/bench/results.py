"""Result-file generators behind ``tools/regenerate_results.py``.

Every quantitative artifact in ``EXPERIMENTS.md`` is produced by one
named generator returning ``(filename, body)``. The registry lives here
— in an importable module rather than the tool script — so the
campaign executor can ship generator names to worker processes and
regenerate the whole set in parallel (``--jobs``), with the tool
reduced to argument parsing and file writing.
"""

from __future__ import annotations


def figure8() -> tuple[str, str]:
    """Figure 8: overhead ratio vs number of processes."""
    from repro.analysis.comparison import figure8_series
    from repro.bench.figures import figure8_table, shape_check_figure8

    problems = shape_check_figure8(figure8_series())
    body = figure8_table() + "\n\nshape claims: " + (
        "ALL HOLD" if not problems else "; ".join(problems)
    ) + "\n"
    return "figure8.txt", body


def figure9() -> tuple[str, str]:
    """Figure 9: overhead ratio vs message setup time."""
    from repro.analysis.comparison import figure9_series
    from repro.bench.figures import figure9_table, shape_check_figure9

    problems = shape_check_figure9(figure9_series())
    body = figure9_table() + "\n\nshape claims: " + (
        "ALL HOLD" if not problems else "; ".join(problems)
    ) + "\n"
    return "figure9.txt", body


def markov_validation() -> tuple[str, str]:
    """Figure 7 cross-validation: four ways to compute Gamma."""
    from repro.analysis import (
        IntervalMarkovChain,
        STARFISH_DEFAULTS,
        gamma_closed_form,
        simulate_interval_time,
        system_failure_rate,
    )

    p = STARFISH_DEFAULTS
    lam = system_failure_rate(p, 256)
    args = (p.interval, p.checkpoint_overhead, p.recovery_overhead,
            p.checkpoint_latency)
    chain = IntervalMarkovChain(lam, *args)
    monte = simulate_interval_time(lam, *args, trials=20_000)
    lines = [
        f"lambda (n=256)     : {lam:.6e}",
        f"Gamma closed form  : {gamma_closed_form(lam, *args):.6f}",
        f"Gamma two-path     : {chain.expected_time_two_path():.6f}",
        f"Gamma linear system: {chain.expected_time_linear_system():.6f}",
        f"Gamma Monte Carlo  : {monte.mean:.4f} +/- {monte.std_error:.4f}",
    ]
    return "figure7_markov.txt", "\n".join(lines) + "\n"


def protocol_comparison() -> tuple[str, str]:
    """Every protocol on one workload, same seed and failure plan."""
    from repro.bench.workloads import (
        ProtocolRunSummary,
        run_protocol_comparison,
        standard_workloads,
    )
    from repro.runtime import FailurePlan

    workload = standard_workloads(steps=12)[0]
    rows = run_protocol_comparison(
        workload, period=6.0, failure_plan=FailurePlan.single(14.3, 2)
    )
    body = ProtocolRunSummary.header() + "\n" + "\n".join(
        row.row() for row in rows
    ) + "\n"
    return "protocol_comparison.txt", body


def optimal_intervals() -> tuple[str, str]:
    """Per-protocol optimal checkpoint intervals."""
    from repro.analysis.sensitivity import optimal_table

    return "optimal_intervals.txt", optimal_table() + "\n"


def payoff() -> tuple[str, str]:
    """Expected completion with/without checkpointing; break-even."""
    from repro.analysis import STARFISH_DEFAULTS, system_failure_rate
    from repro.analysis.availability import (
        break_even_work,
        expected_completion_with_checkpointing,
        expected_completion_without_checkpointing,
    )

    p = STARFISH_DEFAULTS
    lam = system_failure_rate(p, 256)
    args = dict(
        interval=p.interval,
        total_overhead=p.checkpoint_overhead,
        recovery=p.recovery_overhead,
        total_latency=p.checkpoint_latency,
    )
    lines = [f"{'work':>8s} {'protected':>14s} {'unprotected':>16s}"]
    for hours in (1, 6, 24):
        work = hours * 3600.0
        protected = expected_completion_with_checkpointing(work, lam, **args)
        unprotected = expected_completion_without_checkpointing(work, lam)
        lines.append(f"{hours:>6d}h {protected:>14.0f} {unprotected:>16.0f}")
    point = break_even_work(lam, **args)
    lines.append(f"break-even work: {point.work:.0f} s")
    return "checkpointing_payoff.txt", "\n".join(lines) + "\n"


def fault_tolerance() -> tuple[str, str]:
    """Storage-fault sweep: degraded recovery absorbs every fault."""
    from repro.bench.fault_tolerance import (
        fault_tolerance_sweep,
        format_fault_table,
    )

    rows = fault_tolerance_sweep()
    lost = sum(r.runs - r.completed for r in rows)
    body = format_fault_table(rows) + "\n\nruns lost: " + (
        "NONE (degraded recovery absorbed every fault)"
        if lost == 0 else str(lost)
    ) + "\n"
    return "fault_tolerance.txt", body


def network_faults() -> tuple[str, str]:
    """Network-fault sweep: the reliable transport hides the medium."""
    from repro.bench.network_faults import (
        format_network_table,
        network_fault_sweep,
    )

    rows = network_fault_sweep()
    lost = sum(r.runs - r.completed for r in rows)
    body = format_network_table(rows) + "\n\nruns lost: " + (
        "NONE (reliable transport absorbed every network fault)"
        if lost == 0 else str(lost)
    ) + "\n"
    return "network_faults.txt", body


def obs_overhead() -> tuple[str, str]:
    """Observability overhead and byte-identity proofs."""
    from repro.bench.obs_overhead import (
        format_obs_overhead,
        obs_overhead_report,
    )

    report = obs_overhead_report()
    return "obs_overhead.txt", format_obs_overhead(report) + "\n"


def campaign_scaling() -> tuple[str, str]:
    """Campaign executor scaling + transform-cache hit rate."""
    from repro.bench.campaign_scaling import (
        campaign_scaling_report,
        format_campaign_scaling,
    )

    report = campaign_scaling_report()
    return "campaign_scaling.txt", format_campaign_scaling(report) + "\n"


def bench_engine() -> tuple[str, str]:
    """Machine-readable perf record: compiled vs reference stack."""
    from repro.bench.engine_hotpath import engine_hotpath_report

    return "BENCH_engine.json", engine_hotpath_report().to_json()


def bench_checkpoint() -> tuple[str, str]:
    """Machine-readable perf record: full vs minimized checkpoint payloads."""
    from repro.bench.checkpoint_payload import checkpoint_payload_report

    return "BENCH_checkpoint.json", checkpoint_payload_report().to_json()


def bench_transform() -> tuple[str, str]:
    """Machine-readable perf record: bitset Condition 1 and clone."""
    from repro.bench.transform_hotpath import transform_hotpath_report

    return "BENCH_transform.json", transform_hotpath_report().to_json()


#: Registry of all generators, in regeneration order.
RESULT_GENERATORS = {
    "figure8": figure8,
    "figure9": figure9,
    "markov_validation": markov_validation,
    "protocol_comparison": protocol_comparison,
    "optimal_intervals": optimal_intervals,
    "payoff": payoff,
    "fault_tolerance": fault_tolerance,
    "network_faults": network_faults,
    "obs_overhead": obs_overhead,
    "campaign_scaling": campaign_scaling,
    "bench_engine": bench_engine,
    "bench_checkpoint": bench_checkpoint,
    "bench_transform": bench_transform,
}


def render_result(name: str) -> tuple[str, str]:
    """Campaign-executor worker: run the generator called *name*."""
    return RESULT_GENERATORS[name]()
