"""Campaign-layer scaling benchmark: parallel sweeps + cached transforms.

Two measurements back the campaign layer's claims:

1. **Executor scaling** — the same chaos sweep at ``jobs ∈ {1, 2, 4}``,
   timing wall-clock per level and asserting the merged verdicts are
   identical at every worker count (the executor's hard invariant).
2. **Transform cache** — a cold pass over a set of shipped programs
   (all misses) followed by a warm pass (all hits), timing both and
   reporting the cache's hit rate from its metrics counters.

Wall-clock numbers are machine-dependent by nature; the *verdict
equality* and *hit-rate* columns are the deterministic claims.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field


@dataclass
class CampaignScalingReport:
    """Everything :func:`campaign_scaling_report` measured."""

    cells: int = 0
    cores: int = 1
    sweep_wall: dict[int, float] = field(default_factory=dict)
    verdicts_identical: bool = True
    cache_programs: int = 0
    cold_wall: float = 0.0
    warm_wall: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0


def campaign_scaling_report(
    seeds: int = 12,
    jobs_levels: tuple[int, ...] = (1, 2, 4),
    programs: tuple[str, ...] = ("jacobi_plain", "ring_pipeline",
                                 "stencil_1d", "tree_reduce"),
) -> CampaignScalingReport:
    """Measure executor scaling and transform-cache payoff."""
    from repro.campaign.cache import TransformCache
    from repro.lang.programs import load_program
    from repro.obs import MetricsRegistry
    from repro.phases.pipeline import transform
    from repro.runtime.chaos import chaos_sweep

    import os

    from repro.runtime.chaos import ChaosConfig

    report = CampaignScalingReport()
    report.cores = os.cpu_count() or 1

    # Heavier-than-default cells (longer workload, bigger fault window)
    # so per-cell work, not pool startup, dominates the measurement.
    config = ChaosConfig(n_processes=4, steps=24, horizon=60.0)
    protocols = ("appl-driven", "uncoordinated")
    baseline = None
    for jobs in jobs_levels:
        start = time.perf_counter()
        outcomes = chaos_sweep(
            range(seeds), protocols=protocols, config=config, jobs=jobs
        )
        report.sweep_wall[jobs] = time.perf_counter() - start
        if baseline is None:
            baseline = outcomes
            report.cells = len(outcomes)
        elif outcomes != baseline or list(outcomes) != list(baseline):
            report.verdicts_identical = False

    report.cache_programs = len(programs)
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory() as root:
        cache = TransformCache(root, registry=registry)
        start = time.perf_counter()
        cold = [transform(load_program(name), cache=cache)
                for name in programs]
        report.cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = [transform(load_program(name), cache=cache)
                for name in programs]
        report.warm_wall = time.perf_counter() - start
        from repro.lang.printer import to_source

        for first, second in zip(cold, warm):
            if to_source(first.program) != to_source(second.program):
                report.verdicts_identical = False
        report.cache_hits = registry.counter("transform_cache.hits").value
        report.cache_misses = registry.counter(
            "transform_cache.misses"
        ).value
        report.cache_hit_rate = cache.hit_rate
    return report


def format_campaign_scaling(report: CampaignScalingReport) -> str:
    """Render the report as the ``results/campaign_scaling.txt`` table."""
    lines = [
        f"chaos sweep: {report.cells} cell(s) per worker-count level "
        f"({report.cores} core(s) available; speedup is bounded by "
        "cores, determinism is not)",
        f"{'jobs':>6s} {'wall (s)':>10s} {'speedup':>9s}",
    ]
    base = report.sweep_wall.get(1)
    for jobs, wall in sorted(report.sweep_wall.items()):
        speedup = base / wall if base and wall else 0.0
        lines.append(f"{jobs:>6d} {wall:>10.3f} {speedup:>8.2f}x")
    lines.append("")
    lines.append(
        "verdicts byte-identical across worker counts: "
        + ("YES" if report.verdicts_identical else "VIOLATED")
    )
    lines.append("")
    lines.append(
        f"transform cache: {report.cache_programs} program(s), "
        f"cold {report.cold_wall:.3f} s -> warm {report.warm_wall:.3f} s"
    )
    speedup = (
        report.cold_wall / report.warm_wall if report.warm_wall else 0.0
    )
    lines.append(
        f"warm-pass speedup: {speedup:.1f}x; "
        f"hits {report.cache_hits}, misses {report.cache_misses}, "
        f"hit rate {report.cache_hit_rate:.2f}"
    )
    return "\n".join(lines)
