"""Figure 8 / Figure 9 table generation and shape checks.

The paper's claims about the two evaluation figures are *shapes*, not
absolute numbers (our constants match the paper's, but the claims
worth testing are ordinal):

Figure 8 — overhead ratio vs. number of processes:
  (a) every protocol's ratio increases with n (λ grows with n);
  (b) appl-driven < SaS < C-L at every n (strictly, for n > 1);
  (c) C-L diverges fastest (Θ(n²) message overhead).

Figure 9 — overhead ratio vs. message setup time ``w_m``:
  (a) appl-driven is exactly constant in ``w_m``;
  (b) SaS and C-L increase monotonically;
  (c) C-L's slope exceeds SaS's.

``shape_check_figure8/9`` verify these programmatically; the benchmark
harness prints the tables and asserts the checks.
"""

from __future__ import annotations

from repro.analysis.comparison import (
    DEFAULT_FIGURE9_PROCESSES,
    DEFAULT_PROCESS_COUNTS,
    DEFAULT_SETUP_TIMES,
    ProtocolCurve,
    figure8_series,
    figure9_series,
)
from repro.analysis.parameters import ModelParameters, ProtocolKind


def format_curves(
    curves: dict[ProtocolKind, ProtocolCurve],
    x_label: str,
    x_format: str = "{:>10.4g}",
) -> str:
    """Render protocol curves as an aligned ASCII table."""
    kinds = list(curves)
    x_values = curves[kinds[0]].x_values
    header = f"{x_label:>10s}" + "".join(
        f"{kind.value:>14s}" for kind in kinds
    )
    lines = [header, "-" * len(header)]
    for position, x in enumerate(x_values):
        row = x_format.format(x) + "".join(
            f"{curves[kind].ratios[position]:>14.6f}" for kind in kinds
        )
        lines.append(row)
    return "\n".join(lines)


def figure8_table(
    params: ModelParameters = ModelParameters(),
    process_counts: tuple[int, ...] = DEFAULT_PROCESS_COUNTS,
) -> str:
    """The Figure 8 data as an ASCII table."""
    curves = figure8_series(params, process_counts)
    return format_curves(curves, x_label="n")


def figure9_table(
    params: ModelParameters = ModelParameters(),
    setup_times: tuple[float, ...] = DEFAULT_SETUP_TIMES,
    n_processes: int = DEFAULT_FIGURE9_PROCESSES,
) -> str:
    """The Figure 9 data as an ASCII table."""
    curves = figure9_series(params, setup_times, n_processes)
    return format_curves(curves, x_label="w_m [s]")


def _strictly_increasing(values: tuple[float, ...]) -> bool:
    return all(b > a for a, b in zip(values, values[1:]))


def _constant(values: tuple[float, ...], tolerance: float = 1e-12) -> bool:
    return max(values) - min(values) <= tolerance


def shape_check_figure8(
    curves: dict[ProtocolKind, ProtocolCurve],
) -> list[str]:
    """Return a list of violated Figure 8 shape claims (empty = pass)."""
    problems: list[str] = []
    appl = curves[ProtocolKind.APPLICATION_DRIVEN].ratios
    sas = curves[ProtocolKind.SYNC_AND_STOP].ratios
    cl = curves[ProtocolKind.CHANDY_LAMPORT].ratios
    for kind, ratios in ((k, c.ratios) for k, c in curves.items()):
        if not _strictly_increasing(ratios):
            problems.append(f"{kind.value}: ratio not increasing with n")
    if not all(a < s for a, s in zip(appl, sas)):
        problems.append("appl-driven not below SaS everywhere")
    if not all(s < c for s, c in zip(sas, cl)):
        problems.append("SaS not below C-L everywhere")
    appl_growth = appl[-1] - appl[0]
    cl_growth = cl[-1] - cl[0]
    if not cl_growth > appl_growth:
        problems.append("C-L does not diverge fastest")
    return problems


def shape_check_figure9(
    curves: dict[ProtocolKind, ProtocolCurve],
) -> list[str]:
    """Return a list of violated Figure 9 shape claims (empty = pass)."""
    problems: list[str] = []
    appl = curves[ProtocolKind.APPLICATION_DRIVEN].ratios
    sas = curves[ProtocolKind.SYNC_AND_STOP].ratios
    cl = curves[ProtocolKind.CHANDY_LAMPORT].ratios
    if not _constant(appl):
        problems.append("appl-driven ratio varies with w_m")
    if not _strictly_increasing(sas):
        problems.append("SaS ratio not increasing with w_m")
    if not _strictly_increasing(cl):
        problems.append("C-L ratio not increasing with w_m")
    sas_slope = sas[-1] - sas[0]
    cl_slope = cl[-1] - cl[0]
    if not cl_slope > sas_slope:
        problems.append("C-L slope does not exceed SaS slope")
    return problems
