"""Per-protocol coordination message overheads (paper §4.1).

- **SaS**: per checkpoint phase the coordinator broadcasts three
  messages and each of the other ``n-1`` processes sends two replies —
  five messages per non-coordinator process, each an 8-bit program
  message: ``M(SaS) = 5 (n-1) (w_m + 8 w_b)``.
- **C-L**: on a fully connected network Chandy-Lamport sends markers on
  every directed channel in both phases: ``M(C-L) = 2 n (n-1)
  (w_m + 8 w_b)``.
- **Application-driven**: no coordination at all, ``M = 0``.
"""

from __future__ import annotations

from repro.analysis.parameters import ModelParameters, ProtocolKind
from repro.errors import AnalysisError


def coordination_message_count(kind: ProtocolKind, n_processes: int) -> int:
    """Number of coordination messages per checkpoint for *kind*."""
    if n_processes < 1:
        raise AnalysisError(f"need at least one process, got {n_processes}")
    if kind is ProtocolKind.APPLICATION_DRIVEN:
        return 0
    if kind is ProtocolKind.SYNC_AND_STOP:
        return 5 * (n_processes - 1)
    if kind is ProtocolKind.CHANDY_LAMPORT:
        return 2 * n_processes * (n_processes - 1)
    raise AnalysisError(f"unknown protocol kind {kind!r}")


def message_overhead(
    params: ModelParameters, kind: ProtocolKind, n_processes: int
) -> float:
    """The paper's ``M`` for *kind* on *n_processes* processes."""
    return coordination_message_count(kind, n_processes) * params.message_unit_cost()


def total_checkpoint_overhead(
    params: ModelParameters, kind: ProtocolKind, n_processes: int
) -> float:
    """The paper's ``O = o + M + C``."""
    return (
        params.checkpoint_overhead
        + message_overhead(params, kind, n_processes)
        + params.extra_coordination
    )


def total_latency_overhead(
    params: ModelParameters, kind: ProtocolKind, n_processes: int
) -> float:
    """The paper's ``L = l + M + C``."""
    return (
        params.checkpoint_latency
        + message_overhead(params, kind, n_processes)
        + params.extra_coordination
    )
