"""Protocol comparison sweeps — the data behind Figures 8 and 9.

Figure 8 plots the overhead ratio against the number of processes for
the application-driven approach, SaS, and C-L; Figure 9 fixes the
system size and sweeps the message setup time ``w_m``. Both are pure
functions of :class:`~repro.analysis.parameters.ModelParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.message_overhead import (
    total_checkpoint_overhead,
    total_latency_overhead,
)
from repro.analysis.overhead import overhead_ratio
from repro.analysis.parameters import (
    ModelParameters,
    ProtocolKind,
    system_failure_rate,
)

DEFAULT_PROCESS_COUNTS = (16, 32, 64, 128, 256, 384, 512)
DEFAULT_SETUP_TIMES = (0.0, 0.002, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05)
DEFAULT_FIGURE9_PROCESSES = 128


@dataclass(frozen=True)
class ProtocolCurve:
    """One protocol's series over a swept parameter."""

    kind: ProtocolKind
    x_values: tuple[float, ...]
    ratios: tuple[float, ...]

    def as_rows(self) -> list[tuple[float, float]]:
        """(x, ratio) pairs, convenient for tabulation."""
        return list(zip(self.x_values, self.ratios))


def overhead_ratio_for_protocol(
    params: ModelParameters, kind: ProtocolKind, n_processes: int
) -> float:
    """The overhead ratio ``r`` of *kind* on an *n*-process system."""
    return overhead_ratio(
        failure_rate=system_failure_rate(params, n_processes),
        interval=params.interval,
        total_overhead=total_checkpoint_overhead(params, kind, n_processes),
        recovery=params.recovery_overhead,
        total_latency=total_latency_overhead(params, kind, n_processes),
    )


def figure8_series(
    params: ModelParameters = ModelParameters(),
    process_counts: tuple[int, ...] = DEFAULT_PROCESS_COUNTS,
) -> dict[ProtocolKind, ProtocolCurve]:
    """Overhead ratio vs. number of processes, per protocol (Figure 8)."""
    curves: dict[ProtocolKind, ProtocolCurve] = {}
    for kind in ProtocolKind:
        ratios = tuple(
            overhead_ratio_for_protocol(params, kind, n) for n in process_counts
        )
        curves[kind] = ProtocolCurve(
            kind=kind,
            x_values=tuple(float(n) for n in process_counts),
            ratios=ratios,
        )
    return curves


def figure9_series(
    params: ModelParameters = ModelParameters(),
    setup_times: tuple[float, ...] = DEFAULT_SETUP_TIMES,
    n_processes: int = DEFAULT_FIGURE9_PROCESSES,
) -> dict[ProtocolKind, ProtocolCurve]:
    """Overhead ratio vs. message setup time ``w_m`` (Figure 9)."""
    curves: dict[ProtocolKind, ProtocolCurve] = {}
    for kind in ProtocolKind:
        ratios = tuple(
            overhead_ratio_for_protocol(
                params.with_(message_setup=w_m), kind, n_processes
            )
            for w_m in setup_times
        )
        curves[kind] = ProtocolCurve(
            kind=kind, x_values=tuple(setup_times), ratios=ratios
        )
    return curves


DEFAULT_FAILURE_PROBS = (1e-7, 1e-6, 1e-5, 1e-4, 5e-4)


def failure_probability_series(
    params: ModelParameters = ModelParameters(),
    probabilities: tuple[float, ...] = DEFAULT_FAILURE_PROBS,
    n_processes: int = DEFAULT_FIGURE9_PROCESSES,
) -> dict[ProtocolKind, ProtocolCurve]:
    """Overhead ratio vs. per-process failure probability.

    An extra sweep beyond the paper's figures, isolating the mechanism
    behind Figure 8 (the paper's ratio grows with n *because* lambda
    grows with n): all protocols degrade as ``p`` rises, and the
    ordering appl-driven < SaS < C-L is preserved throughout.
    """
    curves: dict[ProtocolKind, ProtocolCurve] = {}
    for kind in ProtocolKind:
        ratios = tuple(
            overhead_ratio_for_protocol(
                params.with_(process_failure_prob=p), kind, n_processes
            )
            for p in probabilities
        )
        curves[kind] = ProtocolCurve(
            kind=kind, x_values=tuple(probabilities), ratios=ratios
        )
    return curves
