"""Optimal checkpoint-interval selection.

Phase I inserts checkpoints so that checkpoint intervals are
(approximately) optimal — the problem studied by the paper's references
[8] (Chandy & Ramamoorthy 1972) and [22] (Toueg & Babaoglu 1984). This
module provides the standard closed-form approximations plus an exact
numeric optimiser of the paper's own overhead-ratio model, so Phase I
and the analysis layer agree on what "optimal" means.
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError


def young_interval(checkpoint_overhead: float, failure_rate: float) -> float:
    """Young's first-order optimum ``T* = sqrt(2 o / λ)``.

    *checkpoint_overhead* is the time added per checkpoint (the paper's
    ``o``); *failure_rate* is the per-process exponential rate ``λ``.
    """
    _require_positive(checkpoint_overhead, "checkpoint_overhead")
    _require_positive(failure_rate, "failure_rate")
    return math.sqrt(2.0 * checkpoint_overhead / failure_rate)


def daly_interval(checkpoint_overhead: float, failure_rate: float) -> float:
    """Daly's higher-order refinement of Young's formula.

    ``T* = sqrt(2 o M) [1 + (1/3)sqrt(o/(2M)) + (o/(2M))/9] - o`` with
    ``M = 1/λ``, valid for ``o < 2M``; falls back to ``M`` otherwise.
    """
    _require_positive(checkpoint_overhead, "checkpoint_overhead")
    _require_positive(failure_rate, "failure_rate")
    mtbf = 1.0 / failure_rate
    if checkpoint_overhead >= 2.0 * mtbf:
        return mtbf
    ratio = checkpoint_overhead / (2.0 * mtbf)
    return (
        math.sqrt(2.0 * checkpoint_overhead * mtbf)
        * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0)
        - checkpoint_overhead
    )


def optimal_interval_exact(
    failure_rate: float,
    total_overhead: float,
    recovery: float,
    latency: float,
    lo: float = 1e-3,
    hi: float = 1e7,
) -> float:
    """Minimise the paper's overhead ratio ``r(T)`` numerically.

    ``r(T) = λ⁻¹ e^{λ(R+L-O)} (e^{λ(T+O)} − 1) / T − 1`` is unimodal in
    ``T``; golden-section search on ``[lo, hi]`` finds the minimiser.
    """
    _require_positive(failure_rate, "failure_rate")
    if total_overhead < 0 or recovery < 0 or latency < 0:
        raise AnalysisError("overheads must be non-negative")

    def ratio(interval: float) -> float:
        lam = failure_rate
        try:
            return (
                math.exp(lam * (recovery + latency - total_overhead))
                * (math.exp(lam * (interval + total_overhead)) - 1.0)
                / (lam * interval)
                - 1.0
            )
        except OverflowError:
            return math.inf

    # Keep the exponent in a safe range: beyond ~500/λ the ratio is
    # astronomically past the optimum anyway.
    hi = min(hi, 500.0 / failure_rate)
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    for _ in range(200):
        if ratio(c) < ratio(d):
            b = d
        else:
            a = c
        c = b - phi * (b - a)
        d = a + phi * (b - a)
        if abs(b - a) < 1e-9 * max(1.0, abs(b)):
            break
    return (a + b) / 2.0


def _require_positive(value: float, name: str) -> None:
    if value <= 0 or not math.isfinite(value):
        raise AnalysisError(f"{name} must be positive and finite, got {value!r}")
