"""Monte Carlo validation of the interval-time model.

Directly simulates the renewal process behind Figure 7: an interval
needs ``T+O`` units of failure-free execution to complete; a failure
(exponential with rate λ) before completion forces a retry costing
``T+R+L`` of failure-free execution. The sample mean of the total
elapsed time must converge to the closed-form ``Γ`` — the test suite
asserts agreement within Monte Carlo error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Sample statistics of the simulated interval time."""

    mean: float
    std_error: float
    trials: int
    mean_failures: float

    def within(self, expected: float, sigmas: float = 4.0) -> bool:
        """True iff *expected* lies within ``sigmas`` standard errors."""
        return abs(self.mean - expected) <= sigmas * self.std_error


def simulate_interval_time(
    failure_rate: float,
    interval: float,
    total_overhead: float,
    recovery: float,
    total_latency: float,
    trials: int = 20_000,
    seed: int = 0,
) -> MonteCarloEstimate:
    """Estimate ``Γ`` by direct simulation of the failure/retry process."""
    if failure_rate <= 0 or not math.isfinite(failure_rate):
        raise AnalysisError(f"failure_rate must be positive, got {failure_rate!r}")
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    first_span = interval + total_overhead
    retry_span = interval + recovery + total_latency

    totals = np.zeros(trials)
    failures = np.zeros(trials)
    # Vectorised attempt loop: all trials draw a time-to-failure; those
    # whose TTF exceeds the needed span finish, the rest accumulate the
    # TTF and retry with the retry span.
    pending = np.arange(trials)
    span = np.full(trials, first_span)
    while pending.size:
        ttf = rng.exponential(1.0 / failure_rate, size=pending.size)
        need = span[pending]
        done = ttf >= need
        totals[pending[done]] += need[done]
        failed = pending[~done]
        totals[failed] += ttf[~done]
        failures[failed] += 1
        span[failed] = retry_span
        pending = failed
    mean = float(totals.mean())
    std_error = float(totals.std(ddof=1) / math.sqrt(trials))
    return MonteCarloEstimate(
        mean=mean,
        std_error=std_error,
        trials=trials,
        mean_failures=float(failures.mean()),
    )
