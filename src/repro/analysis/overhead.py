"""Closed-form ``Γ`` and the overhead ratio ``r`` (paper §4).

After simplifying the Markov chain, the paper obtains::

    Γ = λ⁻¹ (1 − e^{−λ(T+O)}) e^{λ(T+R+L)}
    r = Γ/T − 1
      = λ⁻¹ e^{λ(R+L−O)} (e^{λ(T+O)} − 1) / T − 1

(The two ``r`` forms are identical:
``(1−e^{−λ(T+O)}) e^{λ(T+R+L)} = e^{λ(R+L−O)}(e^{λ(T+O)}−1)``.)
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError


def gamma_closed_form(
    failure_rate: float,
    interval: float,
    total_overhead: float,
    recovery: float,
    total_latency: float,
) -> float:
    """The paper's closed-form expected interval time ``Γ``."""
    _validate(failure_rate, interval, total_overhead, recovery, total_latency)
    lam = failure_rate
    return (
        -math.expm1(-lam * (interval + total_overhead))
        / lam
        * math.exp(lam * (interval + recovery + total_latency))
    )


def overhead_ratio(
    failure_rate: float,
    interval: float,
    total_overhead: float,
    recovery: float,
    total_latency: float,
) -> float:
    """The paper's overhead ratio ``r = Γ/T − 1``."""
    gamma = gamma_closed_form(
        failure_rate, interval, total_overhead, recovery, total_latency
    )
    return gamma / interval - 1.0


def failure_free_ratio(interval: float, total_overhead: float) -> float:
    """The λ→0 limit of ``r``: pure overhead ``O/T``.

    Useful as a sanity anchor — as failures vanish, the ratio must tend
    to the fraction of time spent checkpointing.
    """
    if interval <= 0:
        raise AnalysisError(f"interval must be positive, got {interval!r}")
    if total_overhead < 0:
        raise AnalysisError("total_overhead must be non-negative")
    return total_overhead / interval


def _validate(
    failure_rate: float,
    interval: float,
    total_overhead: float,
    recovery: float,
    total_latency: float,
) -> None:
    if failure_rate <= 0 or not math.isfinite(failure_rate):
        raise AnalysisError(f"failure_rate must be positive, got {failure_rate!r}")
    if interval <= 0:
        raise AnalysisError(f"interval must be positive, got {interval!r}")
    if total_overhead < 0 or recovery < 0 or total_latency < 0:
        raise AnalysisError("overheads must be non-negative")
