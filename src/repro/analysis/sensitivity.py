"""Sensitivity analysis and per-protocol optimal intervals.

The paper fixes ``T = 300 s`` for all protocols; a fairer comparison
lets each protocol use *its own* optimal interval (a protocol paying
more per checkpoint should checkpoint less often). This module provides
that ablation plus generic one-parameter sensitivity sweeps of the
overhead ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.message_overhead import (
    total_checkpoint_overhead,
    total_latency_overhead,
)
from repro.analysis.optimal_interval import optimal_interval_exact
from repro.analysis.overhead import overhead_ratio
from repro.analysis.parameters import (
    ModelParameters,
    ProtocolKind,
    system_failure_rate,
)
from repro.errors import AnalysisError


@dataclass(frozen=True)
class OptimalPoint:
    """A protocol's optimal interval and the ratio it achieves."""

    kind: ProtocolKind
    n_processes: int
    interval: float
    ratio: float


def optimal_interval_for_protocol(
    params: ModelParameters, kind: ProtocolKind, n_processes: int
) -> OptimalPoint:
    """Minimise the overhead ratio over ``T`` for one protocol."""
    lam = system_failure_rate(params, n_processes)
    total_o = total_checkpoint_overhead(params, kind, n_processes)
    total_l = total_latency_overhead(params, kind, n_processes)
    best_interval = optimal_interval_exact(
        failure_rate=lam,
        total_overhead=total_o,
        recovery=params.recovery_overhead,
        latency=total_l,
    )
    best_ratio = overhead_ratio(
        lam, best_interval, total_o, params.recovery_overhead, total_l
    )
    return OptimalPoint(
        kind=kind,
        n_processes=n_processes,
        interval=best_interval,
        ratio=best_ratio,
    )


def optimal_comparison(
    params: ModelParameters = ModelParameters(),
    process_counts: tuple[int, ...] = (16, 64, 256, 512),
) -> dict[ProtocolKind, tuple[OptimalPoint, ...]]:
    """The Figure 8 ablation at per-protocol optimal intervals.

    Even when every protocol checkpoints at its own optimum, the
    application-driven approach keeps the lowest ratio: coordination
    overhead inflates both the per-checkpoint price *and* the best
    achievable ratio.
    """
    return {
        kind: tuple(
            optimal_interval_for_protocol(params, kind, n)
            for n in process_counts
        )
        for kind in ProtocolKind
    }


_SWEEPABLE = frozenset(
    {
        "process_failure_prob",
        "interval",
        "checkpoint_overhead",
        "checkpoint_latency",
        "recovery_overhead",
        "message_setup",
        "per_bit_delay",
        "extra_coordination",
    }
)


def sensitivity_sweep(
    params: ModelParameters,
    field: str,
    values: tuple[float, ...],
    kind: ProtocolKind,
    n_processes: int,
) -> tuple[float, ...]:
    """Overhead ratio of *kind* as one parameter *field* sweeps *values*."""
    if field not in _SWEEPABLE:
        raise AnalysisError(
            f"cannot sweep {field!r}; choose one of {sorted(_SWEEPABLE)}"
        )
    from repro.analysis.comparison import overhead_ratio_for_protocol

    ratios = []
    for value in values:
        swept = params.with_(**{field: value})
        ratios.append(overhead_ratio_for_protocol(swept, kind, n_processes))
    return tuple(ratios)


def optimal_table(
    params: ModelParameters = ModelParameters(),
    process_counts: tuple[int, ...] = (16, 64, 256, 512),
) -> str:
    """ASCII table of per-protocol optimal intervals and ratios."""
    points = optimal_comparison(params, process_counts)
    header = (
        f"{'n':>6s}"
        + "".join(f"{k.value + ' T*':>18s}{k.value + ' r*':>14s}" for k in points)
    )
    lines = [header, "-" * len(header)]
    for position, n in enumerate(process_counts):
        row = f"{n:>6d}"
        for kind in points:
            point = points[kind][position]
            row += f"{point.interval:>18.1f}{point.ratio:>14.6f}"
        lines.append(row)
    return "\n".join(lines)
