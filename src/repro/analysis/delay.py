"""Network delay estimation (paper §3.1's "we estimate the message
delay in the network [5, 12]").

Implements the classic Jacobson/Karn round-trip-time estimator the
paper cites ([12] Karn & Partridge 1991): an EWMA of the smoothed RTT
plus a mean-deviation term, as used for TCP retransmission timers. The
simulator feeds it one-way delay samples from a short profiling run;
Phase I's cost model consumes the smoothed estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError


@dataclass
class RttEstimator:
    """Jacobson/Karn smoothed delay estimator.

    ``alpha`` weights the smoothed mean (classically 1/8), ``beta`` the
    mean deviation (classically 1/4). ``estimate`` is the smoothed
    delay; ``timeout`` is the classic ``srtt + 4 * rttvar`` bound.
    """

    alpha: float = 0.125
    beta: float = 0.25
    srtt: float | None = None
    rttvar: float = 0.0
    samples: int = field(default=0)

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1 or not 0 < self.beta <= 1:
            raise AnalysisError("alpha and beta must be in (0, 1]")

    def observe(self, sample: float) -> None:
        """Feed one delay *sample* (must be non-negative)."""
        if sample < 0:
            raise AnalysisError(f"delay sample must be >= 0, got {sample}")
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            deviation = abs(sample - self.srtt)
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * deviation
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * sample
        self.samples += 1

    @property
    def estimate(self) -> float:
        """The smoothed delay estimate (0.0 before any sample)."""
        return self.srtt if self.srtt is not None else 0.0

    @property
    def timeout(self) -> float:
        """The Jacobson retransmission-style bound ``srtt + 4·rttvar``."""
        return self.estimate + 4.0 * self.rttvar


def estimate_message_delay(trace_events, message_records=None) -> RttEstimator:
    """Feed an estimator from a recorded execution's message delays.

    *trace_events* is an iterable of
    :class:`~repro.causality.records.TraceEvent`; for every message the
    one-way delay is ``recv.time − send.time`` (which includes queueing
    behind FIFO predecessors — exactly what Phase I should budget for).
    """
    from repro.causality.records import EventKind

    sends: dict[int, float] = {}
    estimator = RttEstimator()
    events = sorted(trace_events, key=lambda e: e.time)
    for event in events:
        if event.kind is EventKind.SEND and event.message_id is not None:
            sends[event.message_id] = event.time
        elif event.kind is EventKind.RECV and event.message_id is not None:
            send_time = sends.get(event.message_id)
            if send_time is not None:
                estimator.observe(max(0.0, event.time - send_time))
    return estimator
