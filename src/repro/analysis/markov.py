"""The 3-state Markov chain of paper Figure 7.

A checkpoint interval ``I_{p,i+1}`` is modelled by states
``i`` (interval start), ``R_i`` (recovering after a failure), and the
absorbing ``i+1`` (interval completed). The expected cost of reaching
``i+1`` from ``i`` is the expected interval execution time ``Γ``.

This module computes ``Γ`` two ways:

- :meth:`IntervalMarkovChain.expected_time_two_path` — the paper's
  explicit two-path expansion
  ``Γ = P_{i,R}(W_{i,R} + P_{RR}/(1-P_{RR}) W_{RR} + W_{R,i+1}) +
  P_{i,i+1} W_{i,i+1}``; and
- :meth:`IntervalMarkovChain.expected_time_linear_system` — a generic
  absorbing-chain solver (first-step analysis as a linear system),
  which must agree and cross-checks the algebra.

Both must also match the closed form
``Γ = λ⁻¹ (1 − e^{−λ(T+O)}) e^{λ(T+R+L)}``
(:func:`repro.analysis.overhead.gamma_closed_form`) and the Monte Carlo
estimate (:mod:`repro.analysis.montecarlo`); the test suite asserts all
four agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class IntervalMarkovChain:
    """Figure 7's chain, parameterised by the paper's scalars.

    Attributes:
        failure_rate: λ (system failure rate).
        interval: T (programmed checkpoint interval).
        total_overhead: O (total checkpoint overhead).
        recovery: R (recovery overhead).
        total_latency: L (total latency overhead).
    """

    failure_rate: float
    interval: float
    total_overhead: float
    recovery: float
    total_latency: float

    def __post_init__(self) -> None:
        if self.failure_rate <= 0 or not math.isfinite(self.failure_rate):
            raise AnalysisError(
                f"failure_rate must be positive, got {self.failure_rate!r}"
            )
        if self.interval <= 0:
            raise AnalysisError(f"interval must be positive, got {self.interval!r}")
        for name in ("total_overhead", "recovery", "total_latency"):
            if getattr(self, name) < 0:
                raise AnalysisError(f"{name} must be non-negative")

    # -- transition structure (paper §4) -------------------------------------

    @property
    def first_attempt_span(self) -> float:
        """Work to finish the interval on the first attempt: ``T + O``."""
        return self.interval + self.total_overhead

    @property
    def retry_span(self) -> float:
        """Work per retry after a failure: ``T + R + L`` (≅ T+O+R+L−o)."""
        return self.interval + self.recovery + self.total_latency

    def p_success_first(self) -> float:
        """``P_{i,i+1} = e^{-λ(T+O)}``."""
        return math.exp(-self.failure_rate * self.first_attempt_span)

    def p_fail_first(self) -> float:
        """``P_{i,R_i} = 1 − e^{-λ(T+O)}``."""
        return -math.expm1(-self.failure_rate * self.first_attempt_span)

    def p_success_retry(self) -> float:
        """``P_{R_i,i+1} = e^{-λ(T+R+L)}``."""
        return math.exp(-self.failure_rate * self.retry_span)

    def p_fail_retry(self) -> float:
        """``P_{R_i,R_i} = 1 − e^{-λ(T+R+L)}``."""
        return -math.expm1(-self.failure_rate * self.retry_span)

    def mean_time_to_failure_within(self, span: float) -> float:
        """``E[TTF | TTF < span]`` for the exponential TTF.

        The paper's ``W_{i,R_i}`` (with ``span = T+O``) and ``W_{R,R}``
        (with ``span = T+R+L``):
        ``1/λ − span·e^{−λ·span}/(1 − e^{−λ·span})``.
        """
        lam = self.failure_rate
        denominator = -math.expm1(-lam * span)
        if denominator == 0.0:
            return span / 2.0
        return 1.0 / lam - span * math.exp(-lam * span) / denominator

    # -- Γ, three ways ---------------------------------------------------------

    def expected_time_two_path(self) -> float:
        """The paper's explicit two-path expansion of ``Γ``."""
        p_fail = self.p_fail_first()
        p_retry_fail = self.p_fail_retry()
        w_first_fail = self.mean_time_to_failure_within(self.first_attempt_span)
        w_retry_fail = self.mean_time_to_failure_within(self.retry_span)
        retry_loop = (
            p_retry_fail / (1.0 - p_retry_fail) * w_retry_fail
            if p_retry_fail < 1.0
            else math.inf
        )
        return p_fail * (
            w_first_fail + retry_loop + self.retry_span
        ) + self.p_success_first() * self.first_attempt_span

    def expected_time_linear_system(self) -> float:
        """First-step analysis as a linear system (generic solver).

        For transient states ``s``: ``E_s = Σ_t P_{s,t} (W_{s,t} + E_t)``
        with ``E_{i+1} = 0``. Solved with numpy over the two transient
        states; agreement with the two-path form validates the algebra.
        """
        p_if, p_is = self.p_fail_first(), self.p_success_first()
        p_rr, p_rs = self.p_fail_retry(), self.p_success_retry()
        w_if = self.mean_time_to_failure_within(self.first_attempt_span)
        w_is = self.first_attempt_span
        w_rr = self.mean_time_to_failure_within(self.retry_span)
        w_rs = self.retry_span
        # Unknowns: E_i, E_R.
        coefficients = np.array([[1.0, -p_if], [0.0, 1.0 - p_rr]])
        constants = np.array(
            [p_if * w_if + p_is * w_is, p_rr * w_rr + p_rs * w_rs]
        )
        solution = np.linalg.solve(coefficients, constants)
        return float(solution[0])


def expected_interval_time(
    failure_rate: float,
    interval: float,
    total_overhead: float,
    recovery: float,
    total_latency: float,
) -> float:
    """Convenience wrapper returning ``Γ`` via the two-path expansion."""
    chain = IntervalMarkovChain(
        failure_rate=failure_rate,
        interval=interval,
        total_overhead=total_overhead,
        recovery=recovery,
        total_latency=total_latency,
    )
    return chain.expected_time_two_path()
