"""Application completion-time analysis.

The paper's introduction motivates checkpointing by bounded lost work:
without checkpoints, a failure restarts a long-running application from
scratch. This module quantifies that motivation with the classic
renewal results, on top of the Section 4 interval model:

- **with checkpointing**: an application of total work ``W`` splits
  into ``W/T`` intervals, each costing the expected interval time
  ``Γ``, so ``E[total] = (W/T) · Γ``;
- **without checkpointing**: a run only completes in a failure-free
  window of length ``W``, giving the textbook
  ``E[total] = (e^{λW} − 1)/λ``;
- the **break-even work** is where the two curves cross — beyond it,
  checkpointing wins despite its overhead.

A vectorised Monte Carlo estimator cross-validates both expressions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.overhead import gamma_closed_form
from repro.errors import AnalysisError


def expected_completion_with_checkpointing(
    total_work: float,
    failure_rate: float,
    interval: float,
    total_overhead: float,
    recovery: float,
    total_latency: float,
) -> float:
    """``(W/T) · Γ``: expected completion time of *total_work*."""
    if total_work <= 0:
        raise AnalysisError(f"total_work must be positive, got {total_work!r}")
    gamma = gamma_closed_form(
        failure_rate, interval, total_overhead, recovery, total_latency
    )
    return total_work / interval * gamma


def expected_completion_without_checkpointing(
    total_work: float, failure_rate: float, restart_overhead: float = 0.0
) -> float:
    """Expected time to survive a failure-free window of *total_work*.

    Each attempt runs until either completion (after ``W`` units) or a
    failure; a failed attempt costs its time-to-failure plus the
    restart overhead. The closed form is
    ``(e^{λW} − 1)/λ + (e^{λW} − 1)·R₀`` with ``R₀`` the restart cost.
    """
    if total_work <= 0:
        raise AnalysisError(f"total_work must be positive, got {total_work!r}")
    if failure_rate <= 0 or not math.isfinite(failure_rate):
        raise AnalysisError(f"failure_rate must be positive, got {failure_rate!r}")
    try:
        expm1 = math.expm1(failure_rate * total_work)
    except OverflowError:
        return math.inf
    return expm1 / failure_rate + expm1 * restart_overhead


@dataclass(frozen=True)
class BreakEven:
    """The work size beyond which checkpointing wins."""

    work: float
    with_checkpointing: float
    without_checkpointing: float


def break_even_work(
    failure_rate: float,
    interval: float,
    total_overhead: float,
    recovery: float,
    total_latency: float,
    lo: float = 1.0,
    hi: float = 1e9,
) -> BreakEven | None:
    """Find the work size where the two completion curves cross.

    Returns ``None`` when checkpointing is cheaper over the whole
    range already (or never within it). Bisection on the (monotone)
    difference of the two expectations.
    """

    def difference(work: float) -> float:
        return expected_completion_without_checkpointing(
            work, failure_rate
        ) - expected_completion_with_checkpointing(
            work, failure_rate, interval, total_overhead, recovery, total_latency
        )

    lo_diff = difference(lo)
    hi_diff = difference(hi)
    if lo_diff > 0 and hi_diff > 0:
        return None  # checkpointing already wins everywhere in range
    if lo_diff < 0 and hi_diff < 0:
        return None  # overhead never amortised within range
    a, b = lo, hi
    for _ in range(200):
        mid = math.sqrt(a * b)  # geometric bisection over decades
        if (difference(mid) < 0) == (lo_diff < 0):
            a = mid
        else:
            b = mid
        if b / a < 1.0 + 1e-9:
            break
    work = math.sqrt(a * b)
    return BreakEven(
        work=work,
        with_checkpointing=expected_completion_with_checkpointing(
            work, failure_rate, interval, total_overhead, recovery, total_latency
        ),
        without_checkpointing=expected_completion_without_checkpointing(
            work, failure_rate
        ),
    )


def simulate_unprotected_completion(
    total_work: float,
    failure_rate: float,
    restart_overhead: float = 0.0,
    trials: int = 20_000,
    seed: int = 0,
) -> float:
    """Monte Carlo mean completion time without checkpointing."""
    if trials < 1:
        raise AnalysisError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    totals = np.zeros(trials)
    pending = np.arange(trials)
    while pending.size:
        ttf = rng.exponential(1.0 / failure_rate, size=pending.size)
        done = ttf >= total_work
        totals[pending[done]] += total_work
        failed = pending[~done]
        totals[failed] += ttf[~done] + restart_overhead
        pending = failed
    return float(totals.mean())
