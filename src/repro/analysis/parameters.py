"""Model parameters for the Section 4 performance analysis.

The paper's symbols map to fields as follows:

====================  =====================================================
``p``                 per-process failure probability (``1.23e-6`` per
                      second, from [21, 24])
``λ``                 failure rate; for ``n`` processes the system rate is
                      ``-n ln(1 - p)`` (≈ ``n p``), reflecting the paper's
                      "failure rate λ increases proportionally with n"
``T``                 programmed checkpoint interval (300 s)
``o``                 checkpoint overhead (1.78 s, measured in Starfish)
``l``                 checkpoint latency (4.292 s)
``R``                 recovery overhead (3.32 s)
``M``                 message overhead of the protocol's coordination
``C``                 other coordination overhead (forced checkpoints
                      etc.; zero for all three §4.1 protocols)
``O``                 total checkpoint overhead = ``o + M + C``
``L``                 total latency overhead = ``l + M + C``
``w_m``               per-message setup time
``w_b``               per-bit transmission time
====================  =====================================================
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.errors import AnalysisError


class ProtocolKind(enum.Enum):
    """The protocols compared in Section 4.1."""

    APPLICATION_DRIVEN = "appl-driven"
    SYNC_AND_STOP = "SaS"
    CHANDY_LAMPORT = "C-L"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ModelParameters:
    """All inputs of the overhead-ratio model.

    Defaults are the paper's published constants. Time unit: seconds.
    """

    process_failure_prob: float = 1.23e-6
    interval: float = 300.0
    checkpoint_overhead: float = 1.78
    checkpoint_latency: float = 4.292
    recovery_overhead: float = 3.32
    message_setup: float = 1e-3          # w_m
    per_bit_delay: float = 1e-6          # w_b
    marker_bits: int = 8                 # both protocols use 8-bit markers
    extra_coordination: float = 0.0      # the paper's C

    def __post_init__(self) -> None:
        if not 0.0 < self.process_failure_prob < 1.0:
            raise AnalysisError(
                "process_failure_prob must be in (0, 1), got "
                f"{self.process_failure_prob!r}"
            )
        for name in (
            "interval",
            "checkpoint_overhead",
            "checkpoint_latency",
            "recovery_overhead",
        ):
            value = getattr(self, name)
            if value <= 0 or not math.isfinite(value):
                raise AnalysisError(f"{name} must be positive, got {value!r}")
        if self.message_setup < 0 or self.per_bit_delay < 0:
            raise AnalysisError("network delays must be non-negative")

    def with_(self, **changes) -> "ModelParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def message_unit_cost(self) -> float:
        """Cost of one coordination message: ``w_m + bits * w_b``."""
        return self.message_setup + self.marker_bits * self.per_bit_delay


STARFISH_DEFAULTS = ModelParameters()
"""The paper's published Starfish-derived parameter set."""


def system_failure_rate(params: ModelParameters, n_processes: int) -> float:
    """Exponential failure rate of an *n*-process system.

    With independent per-process failure probability ``p`` per unit
    time, the system survives a unit interval with probability
    ``(1-p)^n``, i.e. rate ``-n ln(1-p)`` (≈ ``n p`` for small ``p``).
    """
    if n_processes < 1:
        raise AnalysisError(f"need at least one process, got {n_processes}")
    return -n_processes * math.log1p(-params.process_failure_prob)
