"""Stochastic performance analysis (paper Section 4).

Implements the 3-state Markov chain of Figure 7, the closed-form
expected interval time ``Γ`` and overhead ratio ``r``, the per-protocol
message-overhead models ``M(SaS)`` and ``M(C-L)``, the comparison
sweeps behind Figures 8 and 9, optimal-checkpoint-interval theory, and
Monte Carlo cross-validation of the closed forms.
"""

from repro.analysis.comparison import (
    ProtocolCurve,
    figure8_series,
    figure9_series,
    overhead_ratio_for_protocol,
)
from repro.analysis.availability import (
    break_even_work,
    expected_completion_with_checkpointing,
    expected_completion_without_checkpointing,
)
from repro.analysis.delay import RttEstimator, estimate_message_delay
from repro.analysis.markov import IntervalMarkovChain, expected_interval_time
from repro.analysis.message_overhead import (
    coordination_message_count,
    message_overhead,
)
from repro.analysis.montecarlo import simulate_interval_time
from repro.analysis.optimal_interval import (
    daly_interval,
    optimal_interval_exact,
    young_interval,
)
from repro.analysis.overhead import gamma_closed_form, overhead_ratio
from repro.analysis.parameters import (
    ModelParameters,
    ProtocolKind,
    STARFISH_DEFAULTS,
    system_failure_rate,
)
from repro.analysis.sensitivity import (
    OptimalPoint,
    optimal_comparison,
    optimal_interval_for_protocol,
    sensitivity_sweep,
)

__all__ = [
    "IntervalMarkovChain",
    "ModelParameters",
    "OptimalPoint",
    "ProtocolCurve",
    "ProtocolKind",
    "RttEstimator",
    "STARFISH_DEFAULTS",
    "break_even_work",
    "estimate_message_delay",
    "expected_completion_with_checkpointing",
    "expected_completion_without_checkpointing",
    "optimal_comparison",
    "optimal_interval_for_protocol",
    "sensitivity_sweep",
    "coordination_message_count",
    "daly_interval",
    "expected_interval_time",
    "figure8_series",
    "figure9_series",
    "gamma_closed_form",
    "message_overhead",
    "optimal_interval_exact",
    "overhead_ratio",
    "overhead_ratio_for_protocol",
    "simulate_interval_time",
    "system_failure_rate",
    "young_interval",
]
