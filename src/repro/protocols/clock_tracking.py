"""In-band vector-clock tracking via message piggybacks.

The engine maintains vector clocks omnisciently (it sees every event).
A *real* implementation can only learn causality from data carried on
messages. This protocol reconstructs the clocks the realistic way —
each process keeps its own vector, ticks it on its events, piggybacks
it on every send, and merges on receive — and exposes the result so
tests can assert it **equals the engine's clocks at every checkpoint**.

That equality is the strongest evidence that the trace-based
consistency analyses (straight cuts, recovery lines, rollback search)
would behave identically in a deployment where only piggybacked
information exists.

Composes with the application-driven setting: it adds piggyback data
but no control messages and no forced checkpoints, so the
coordination-freedom stats are unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.causality.vector_clock import VectorClock
from repro.protocols.base import CheckpointingProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Simulation
    from repro.runtime.network import Message

_PREFIX = "vc_"


class ClockTrackingProtocol(CheckpointingProtocol):
    """Track vector clocks using only piggybacked message data."""

    name = "clock-tracking"

    def __init__(self) -> None:
        self._clocks: dict[int, VectorClock] = {}
        # (rank, checkpoint number) -> tracked clock at that checkpoint
        self.checkpoint_clocks: dict[tuple[int, int], VectorClock] = {}

    def on_start(self, sim: "Simulation") -> None:
        for rank in range(sim.n):
            # Engine clocks start with the initial-checkpoint tick.
            self._clocks[rank] = VectorClock.zero(sim.n).tick(rank)

    # -- tracking rules ------------------------------------------------------

    def piggyback(self, sim: "Simulation", rank: int) -> dict[str, int]:
        """Attach the sender's clock (ticked for the send event)."""
        self._clocks[rank] = self._clocks[rank].tick(rank)
        return {
            f"{_PREFIX}{index}": component
            for index, component in enumerate(self._clocks[rank].components)
        }

    def on_app_message(
        self, sim: "Simulation", rank: int, message: "Message"
    ) -> None:
        """Tick for the receive event and merge the sender's clock."""
        carried = tuple(
            message.piggyback.get(f"{_PREFIX}{index}", 0)
            for index in range(sim.n)
        )
        self._clocks[rank] = self._clocks[rank].tick(rank).merge(
            VectorClock(carried)
        )

    def on_checkpoint(self, sim: "Simulation", rank: int, number: int) -> None:
        """Tick for the checkpoint event and record the tracked clock."""
        self._clocks[rank] = self._clocks[rank].tick(rank)
        self.checkpoint_clocks[(rank, number)] = self._clocks[rank]

    def on_failure(self, sim: "Simulation", rank: int, time: float) -> None:
        """Straight-cut recovery, restoring the tracked clocks too."""
        common = self.restore_common_number(sim, time)
        for other in range(sim.n):
            stored = sim.storage.latest_with_number(other, common)
            tracked = self.checkpoint_clocks.get((other, stored.number))
            if tracked is not None:
                # +1 for the RESTART event the engine also ticks.
                self._clocks[other] = tracked.tick(other)
            else:
                self._clocks[other] = VectorClock.zero(sim.n).tick(other)
