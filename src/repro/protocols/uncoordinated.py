"""Uncoordinated (independent) checkpointing.

Every process checkpoints on its own timer, staggered per rank so
checkpoints never align — the setting where recovery must *search* for
a consistent cut among the saved checkpoints and rollback can cascade
(the domino effect, §1 of the paper). No control messages are ever
sent; the cost shows up entirely at recovery time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.causality.rollback_graph import max_consistent_positions
from repro.protocols.base import CheckpointingProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Simulation


class UncoordinatedProtocol(CheckpointingProtocol):
    """Independent periodic checkpoints; clock-based rollback search."""

    name = "uncoordinated"
    #: A dominoed rollback restores a consistent but possibly
    #: non-straight cut, desynchronising per-rank checkpoint numbers —
    #: straight cuts taken afterwards mix causal epochs and are not
    #: recovery lines (the domino effect is the point of this baseline).
    induces_recovery_lines = False

    def __init__(self, period: float = 50.0, stagger: float = 0.5) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.period = period
        self.stagger = stagger
        self.domino_steps: list[int] = []
        self.rollback_depths: list[dict[int, int]] = []

    def on_start(self, sim: "Simulation") -> None:
        for rank in range(sim.n):
            first = self.period * (1.0 + self.stagger * rank / max(1, sim.n))
            sim.schedule_timer(rank, first, "indep")

    def on_timer(
        self, sim: "Simulation", rank: int, tag: str, time: float
    ) -> None:
        if tag != "indep":
            return
        proc = sim.procs[rank]
        if proc.status not in ("crashed", "done"):
            sim.take_checkpoint(rank, time, tag="indep")
        sim.schedule_timer(rank, time + self.period, "indep")

    def on_failure(self, sim: "Simulation", rank: int, time: float) -> None:
        """Search for the maximal consistent cut; domino if needed.

        Every process always has its number-0 (initial) checkpoint, so
        the fixpoint always lands on a valid cut — in the worst case the
        full restart the domino effect forces. Checkpoints that fail
        their checksum (bit rot, torn survivors) are excluded from the
        search up front, so the rollback can only land on restorable
        state; any such exclusion is recorded as a degraded recovery.
        """
        intact = getattr(sim.storage, "intact_history", sim.storage.history)
        histories = {r: intact(r) for r in range(sim.n)}
        escalation = getattr(sim, "recovery_escalation", 0)
        if escalation:
            # Supervisor escalation: drop the newest candidates so the
            # consistent-cut search is forced deeper (never below the
            # initial checkpoint, which is always a valid cut member).
            histories = {
                r: h[: max(1, len(h) - escalation)]
                for r, h in histories.items()
            }
        skipped = sum(
            sim.storage.count(r) - len(h) for r, h in histories.items()
        )
        sim.stats.fallback_depths.append(skipped)
        if skipped:
            sim.stats.recovery_fallbacks += 1
        positions, domino = max_consistent_positions(
            {r: [c.clock for c in h] for r, h in histories.items()}
        )
        cut = {}
        depths = {}
        for r, history in histories.items():
            pos = max(0, positions[r])  # position 0 is the initial state
            cut[r] = history[pos]
            depths[r] = len(history) - 1 - pos
        self.domino_steps.append(domino)
        self.rollback_depths.append(depths)
        sim.emit(
            "domino-search", None, time,
            protocol=self.name, domino_steps=domino,
            max_depth=max(depths.values(), default=0),
        )
        sim.emit(
            "recovery", None, time,
            protocol=self.name, depth=skipped,
            numbers={str(r): c.number for r, c in sorted(cut.items())},
        )
        sim.restore_cut(cut, time)
