"""The paper's application-driven coordination-free protocol.

At run time this protocol does *nothing at all* during failure-free
execution — the transformed program's ``checkpoint`` statements create
all checkpoints, no control messages flow, and no checkpoint is ever
forced. That absence is the paper's claim, and the simulator's stats
prove it per run (``control_messages == forced_checkpoints == 0``).

On a failure, the recovery line is *known in advance* (the paper's
coordinated-strength property): the straight cut ``R_i`` with ``i`` the
deepest checkpoint number every process has reached. Phase III
guarantees ``R_i`` is consistent, which
:meth:`ApplicationDrivenProtocol.on_failure` re-validates by vector
clocks before restoring when ``validate`` is set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.causality.cuts import CheckpointCut, cut_is_consistent
from repro.causality.records import EventKind
from repro.errors import RecoveryError
from repro.protocols.base import CheckpointingProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Simulation


class ApplicationDrivenProtocol(CheckpointingProtocol):
    """Coordination-free checkpointing for Phase-III-transformed programs.

    With ``gc_storage`` set, checkpoints older than the deepest common
    straight cut are pruned after every checkpoint — they can never be
    restored again, so stable storage stays bounded by one checkpoint
    interval per process.
    """

    name = "appl-driven"
    #: The paper's central claim: checkpoints placed at the transformed
    #: program's synchronisation-free points make every straight cut a
    #: recovery line by construction — even across degraded restores,
    #: since ``restore_cut`` only ever rolls back to straight cuts.
    induces_recovery_lines = True

    def __init__(self, validate: bool = True, gc_storage: bool = False) -> None:
        self.validate = validate
        self.gc_storage = gc_storage
        self.recovered_to: list[int] = []
        self.pruned = 0

    def on_checkpoint(self, sim: "Simulation", rank: int, number: int) -> None:
        """Optionally prune storage below the deepest common cut."""
        if self.gc_storage:
            from repro.runtime.storage import prune_below_common

            self.pruned += prune_below_common(
                sim.storage, list(range(sim.n))
            )

    def on_failure(self, sim: "Simulation", rank: int, time: float) -> None:
        """Restore the deepest *intact* common straight cut ``R_i``.

        When storage faults have eaten members of the nominal ``R_i``,
        the shared degraded-recovery helper falls back to the deepest
        fully-intact ``R_{i-1}``; validation then checks the cut that
        is actually about to be restored.
        """
        if self.validate:
            number, members, _ = self.deepest_intact_cut(sim)
            self._validate_cut(sim, number, list(members.values()))
            sim.emit(
                "cut-validated", None, time,
                protocol=self.name, number=number,
            )
        common = self.restore_common_number(sim, time)
        self.recovered_to.append(common)

    def _validate_cut(self, sim: "Simulation", common: int, members) -> None:
        """Check by vector clocks that the straight cut is a recovery line.

        Uses the *trace*'s checkpoint events (same clocks as storage);
        a failure here means the program was not properly transformed —
        surfacing it beats silently restoring an inconsistent state.
        """
        if common <= 0:
            return  # initial cut, trivially consistent
        # Build a lightweight cut from the stored clocks by reusing the
        # checkpoint events recorded in the trace.
        events = []
        for stored in members:
            for event in sim.trace.events_for(stored.rank):
                if (
                    event.kind is EventKind.CHECKPOINT
                    and event.checkpoint_number == stored.number
                ):
                    chosen = event
            events.append(chosen)
        cut = CheckpointCut(members=tuple(events))
        if not cut_is_consistent(cut):
            raise RecoveryError(
                f"straight cut R_{common} is not a recovery line — "
                "the program was not transformed by Phase III"
            )
