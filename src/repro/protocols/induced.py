"""Communication-induced checkpointing (BCS index-based).

The Briatico-Ciuffoletti-Simoncini scheme: every process keeps a
checkpoint *index*, piggybacked on every application message. Basic
checkpoints fire on a local timer (index += 1); when a message arrives
carrying an index greater than the receiver's, the receiver takes a
**forced checkpoint** adopting the sender's index *before* consuming
the message. The invariant — checkpoints with equal index are pairwise
concurrent — bounds rollback to one index without any control messages;
the cost is the forced checkpoints, which the stats expose.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import CheckpointingProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Simulation
    from repro.runtime.network import Message
    from repro.runtime.storage import StoredCheckpoint

_PIGGYBACK_KEY = "bcs_index"


class InducedProtocol(CheckpointingProtocol):
    """BCS-style index-based communication-induced checkpointing."""

    name = "CIC-BCS"

    def __init__(self, period: float = 50.0, stagger: float = 0.5) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.period = period
        self.stagger = stagger
        self._index: dict[int, int] = {}
        # (index -> checkpoint) per rank; index 0 is the initial state.
        self._by_index: dict[int, dict[int, "StoredCheckpoint"]] = {}

    def on_start(self, sim: "Simulation") -> None:
        for rank in range(sim.n):
            self._index[rank] = 0
            self._by_index[rank] = {0: sim.storage.history(rank)[0]}
            first = self.period * (1.0 + self.stagger * rank / max(1, sim.n))
            sim.schedule_timer(rank, first, "bcs")

    def piggyback(self, sim: "Simulation", rank: int) -> dict[str, int]:
        return {_PIGGYBACK_KEY: self._index.get(rank, 0)}

    def on_timer(
        self, sim: "Simulation", rank: int, tag: str, time: float
    ) -> None:
        if tag != "bcs":
            return
        proc = sim.procs[rank]
        if proc.status not in ("crashed", "done"):
            self._checkpoint(sim, rank, time, self._index[rank] + 1, forced=False)
        sim.schedule_timer(rank, time + self.period, "bcs")

    def on_app_message(
        self, sim: "Simulation", rank: int, message: "Message"
    ) -> None:
        incoming = message.piggyback.get(_PIGGYBACK_KEY, 0)
        if incoming > self._index.get(rank, 0):
            # Forced checkpoint BEFORE consuming the message, adopting
            # the sender's index — the BCS induction rule.
            self._checkpoint(sim, rank, message.arrival_time, incoming, forced=True)

    def _checkpoint(
        self, sim: "Simulation", rank: int, time: float, index: int, forced: bool
    ) -> None:
        stored = sim.take_checkpoint(
            rank, time, tag=f"bcs-{index}", forced=forced
        )
        self._index[rank] = index
        if stored is not None:
            self._by_index[rank][index] = stored

    def on_failure(self, sim: "Simulation", rank: int, time: float) -> None:
        """Roll back to the highest index every process has covered.

        For target index ``i``, each process restores its latest
        checkpoint with index ≤ ``i``; by the BCS invariant that cut is
        consistent (no member can have received a message sent after a
        same-or-lower-index checkpoint of another member).
        """
        target = min(max(indexed) for indexed in self._by_index.values())
        cut = {}
        for r, indexed in self._by_index.items():
            best = max(i for i in indexed if i <= target)
            cut[r] = indexed[best]
        sim.restore_cut(cut, time)
        for r, indexed in self._by_index.items():
            kept = cut[r]
            self._by_index[r] = {
                i: c for i, c in indexed.items() if i <= self._index_of(kept, indexed)
            }
            self._index[r] = max(self._by_index[r])

    @staticmethod
    def _index_of(checkpoint: "StoredCheckpoint", indexed: dict) -> int:
        for i, c in indexed.items():
            if c is checkpoint:
                return i
        return 0
