"""Sync-and-Stop (SaS) coordinated checkpointing [Plank 1993].

Rounds are driven by a coordinator (rank 0) on a fixed period. Each
round exchanges exactly the message pattern the paper's model charges
for — three coordinator broadcasts (STOP, COMMIT, RESUME) and two
replies per participant (ACK-STOP, ACK-COMMIT): ``5(n-1)`` control
messages. Processes are paused from STOP to RESUME, so the collected
checkpoints trivially form a recovery line (and the pause is the
protocol's performance cost, visible in completion times).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import CheckpointingProtocol
from repro.runtime.hooks import ControlMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Simulation

COORDINATOR = 0


class SyncAndStopProtocol(CheckpointingProtocol):
    """Stop-the-world coordinated checkpointing."""

    name = "SaS"

    def __init__(self, period: float = 50.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.period = period
        self.round = 0
        self.round_active = False
        self.completed_rounds: list[int] = []
        self._stop_acks = 0
        self._commit_acks = 0

    # -- round orchestration ------------------------------------------------

    def on_start(self, sim: "Simulation") -> None:
        sim.schedule_timer(COORDINATOR, self.period, "sas-round")

    def on_timer(
        self, sim: "Simulation", rank: int, tag: str, time: float
    ) -> None:
        if tag != "sas-round":
            return
        now = time
        if not self.round_active and self._participants(sim):
            self.round += 1
            self.round_active = True
            self._stop_acks = 0
            self._commit_acks = 0
            for other in self._participants(sim):
                sim.send_control(
                    COORDINATOR, other, "stop", {"round": self.round}, now
                )
            sim.pause(COORDINATOR)
        sim.schedule_timer(COORDINATOR, now + self.period, "sas-round")

    def on_control(self, sim: "Simulation", message: ControlMessage) -> None:
        if message.data.get("round") != self.round:
            return  # stale message from an aborted round
        now = message.arrival_time
        if message.tag == "stop":
            sim.pause(message.dst)
            self._checkpoint_if_alive(sim, message.dst, now)
            sim.send_control(
                message.dst, COORDINATOR, "ack-stop", {"round": self.round}, now
            )
        elif message.tag == "ack-stop":
            self._stop_acks += 1
            if self._stop_acks == len(self._participants(sim)):
                self._checkpoint_if_alive(sim, COORDINATOR, now)
                for other in self._participants(sim):
                    sim.send_control(
                        COORDINATOR, other, "commit", {"round": self.round}, now
                    )
        elif message.tag == "commit":
            sim.send_control(
                message.dst, COORDINATOR, "ack-commit", {"round": self.round}, now
            )
        elif message.tag == "ack-commit":
            self._commit_acks += 1
            if self._commit_acks == len(self._participants(sim)):
                self.completed_rounds.append(self.round)
                self.round_active = False
                for other in self._participants(sim):
                    sim.send_control(
                        COORDINATOR, other, "resume", {"round": self.round}, now
                    )
                sim.resume(COORDINATOR, now)
        elif message.tag == "resume":
            sim.resume(message.dst, now)

    # -- recovery --------------------------------------------------------------

    def on_failure(self, sim: "Simulation", rank: int, time: float) -> None:
        """Restore the last completed round (or the initial states)."""
        self.round_active = False  # abort any in-flight round
        self.round += 1  # invalidate stale control messages
        while self.completed_rounds:
            tag = f"sas-{self.completed_rounds[-1]}"
            if all(
                sim.storage.latest_with_tag(r, tag) is not None
                for r in range(sim.n)
            ):
                self.restore_tagged_round(sim, tag, time)
                return
            self.completed_rounds.pop()
        self.restore_common_number(sim, time)

    # -- helpers -----------------------------------------------------------------

    def _participants(self, sim: "Simulation") -> list[int]:
        return [r for r in range(sim.n) if r != COORDINATOR]

    def _checkpoint_if_alive(
        self, sim: "Simulation", rank: int, now: float
    ) -> None:
        proc = sim.procs[rank]
        if proc.status in ("crashed", "done"):
            return
        sim.take_checkpoint(rank, now, tag=f"sas-{self.round}")

