"""Chandy-Lamport distributed snapshots [C-L 1985] as a checkpointing
protocol.

An initiator (rank 0) starts a snapshot round on a fixed period: it
checkpoints and sends a MARKER on each outgoing channel. A process
receiving its first marker of the round checkpoints immediately and
relays markers on its own outgoing channels, then acknowledges the
initiator. Execution is never paused — that is C-L's selling point over
SaS — but markers flood every directed channel: ``n(n-1)`` markers plus
``n-1`` completion acks per round (the paper's analytic model charges
``2n(n-1)``; the simulator reports what this implementation actually
sends).

Channel state: checkpoints store exact channel cursors (see
:class:`~repro.runtime.storage.StoredCheckpoint`), so the in-flight
messages of the snapshot cut are recovered precisely on rollback — the
same information C-L's per-channel recording collects. Control messages
travel faster than application messages (``control_latency`` <
``base_latency``), preserving the marker-ordering property that makes
the cut consistent; the test suite re-validates consistency by vector
clocks on every recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import CheckpointingProtocol
from repro.runtime.hooks import ControlMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Simulation

INITIATOR = 0


class ChandyLamportProtocol(CheckpointingProtocol):
    """Marker-based coordinated snapshots."""

    name = "C-L"

    def __init__(self, period: float = 50.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.period = period
        self.round = 0
        self.completed_rounds: list[int] = []
        self._snapshotted: set[int] = set()
        self._acks = 0

    def on_start(self, sim: "Simulation") -> None:
        sim.schedule_timer(INITIATOR, self.period, "cl-round")

    def on_timer(
        self, sim: "Simulation", rank: int, tag: str, time: float
    ) -> None:
        if tag != "cl-round":
            return
        round_done = (
            not self._snapshotted or len(self._snapshotted) == sim.n
        )
        if round_done:
            self.round += 1
            self._snapshotted = set()
            self._acks = 0
            self._snapshot_and_relay(sim, INITIATOR, time)
        sim.schedule_timer(INITIATOR, time + self.period, "cl-round")

    def on_control(self, sim: "Simulation", message: ControlMessage) -> None:
        if message.data.get("round") != self.round:
            return  # stale marker/ack from an aborted round
        now = message.arrival_time
        if message.tag == "marker":
            if message.dst not in self._snapshotted:
                self._snapshot_and_relay(sim, message.dst, now)
                sim.send_control(
                    message.dst, INITIATOR, "ack", {"round": self.round}, now
                )
        elif message.tag == "ack":
            self._acks += 1
            if self._acks == sim.n - 1:
                self.completed_rounds.append(self.round)

    def _snapshot_and_relay(
        self, sim: "Simulation", rank: int, now: float
    ) -> None:
        self._snapshotted.add(rank)
        proc = sim.procs[rank]
        if proc.status not in ("crashed", "done"):
            sim.take_checkpoint(rank, now, tag=f"cl-{self.round}")
        for other in range(sim.n):
            if other != rank:
                sim.send_control(
                    rank, other, "marker", {"round": self.round}, now
                )

    def on_failure(self, sim: "Simulation", rank: int, time: float) -> None:
        """Restore the last completed snapshot round."""
        self.round += 1  # invalidate in-flight markers
        self._snapshotted = set()
        while self.completed_rounds:
            tag = f"cl-{self.completed_rounds[-1]}"
            if all(
                sim.storage.latest_with_tag(r, tag) is not None
                for r in range(sim.n)
            ):
                self.restore_tagged_round(sim, tag, time)
                return
            self.completed_rounds.pop()
        self.restore_common_number(sim, time)
