"""Common protocol scaffolding."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.runtime.hooks import ProtocolHooks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Simulation
    from repro.runtime.storage import StoredCheckpoint


class CheckpointingProtocol(ProtocolHooks):
    """Base class with shared recovery helpers."""

    name = "abstract"

    def restore_common_number(self, sim: "Simulation", at_time: float) -> int:
        """Roll back to the deepest common checkpoint number.

        This is straight-cut recovery: with checkpoint number ``i`` =
        the largest number every process has reached (0 = initial
        state), restore each process's latest number-``i`` checkpoint.
        Returns ``i``.
        """
        ranks = list(range(sim.n))
        common = sim.storage.max_common_number(ranks)
        if common < 0:
            raise RecoveryError("storage has no checkpoints at all")
        cut = {
            rank: sim.storage.latest_with_number(rank, common) for rank in ranks
        }
        sim.restore_cut(cut, at_time)
        return common

    def restore_tagged_round(
        self, sim: "Simulation", tag: str, at_time: float
    ) -> None:
        """Roll back to the per-process checkpoints carrying *tag*.

        Used by coordinated protocols: *tag* identifies a completed
        round, so every process has exactly one matching checkpoint.
        """
        cut: dict[int, "StoredCheckpoint"] = {}
        for rank in range(sim.n):
            checkpoint = sim.storage.latest_with_tag(rank, tag)
            if checkpoint is None:
                raise RecoveryError(
                    f"rank {rank} has no checkpoint for round {tag!r}"
                )
            cut[rank] = checkpoint
        sim.restore_cut(cut, at_time)
