"""Common protocol scaffolding."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RecoveryError, StorageError, UnrecoverableError
from repro.runtime.hooks import ProtocolHooks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Simulation
    from repro.runtime.storage import StoredCheckpoint


def _intact_with_number(sim: "Simulation", rank: int, number: int):
    """Fault-aware lookup with a plain-storage fallback."""
    lookup = getattr(sim.storage, "intact_with_number", None)
    if lookup is not None:
        return lookup(rank, number)
    try:
        return sim.storage.latest_with_number(rank, number)
    except StorageError:
        return None


class CheckpointingProtocol(ProtocolHooks):
    """Base class with shared recovery helpers."""

    name = "abstract"
    #: Whether the protocol guarantees that every straight cut ``R_i``
    #: surviving on storage is a recovery line (Definition 2.1). Only
    #: application-driven placement makes that claim by construction;
    #: uncoordinated checkpointing may restore a dominoed non-straight
    #: cut (desynchronising per-rank numbers), and log-based recovery
    #: re-phases the restarted rank's timer — both legitimately leave
    #: inconsistent straight cuts behind while staying recoverable.
    induces_recovery_lines = True

    def deepest_intact_cut(
        self, sim: "Simulation"
    ) -> tuple[int, dict[int, "StoredCheckpoint"], int]:
        """The deepest fully-intact straight cut, with fallback depth.

        Starts from ``i`` = the deepest checkpoint number every process
        has reached and walks down: whenever any member of cut ``R_i``
        is missing (lost write) or fails its checksum (bit rot), fall
        back to ``R_{i-1}`` — which the paper's straight-cut structure
        makes well-defined and still coordination-free, since no
        process needs to negotiate which cut to use. Returns
        ``(number, cut, depth)`` where *depth* counts how many cuts had
        to be skipped (0 = the nominal recovery line was intact).

        A retrying recovery supervisor can ask for an even deeper cut
        (``sim.recovery_escalation`` > 0): the search then starts that
        many numbers below the nominal line, on top of whatever
        degradation corruption forces. Exhausting R_0 raises the
        terminal :class:`UnrecoverableError` verdict.
        """
        ranks = list(range(sim.n))
        common = sim.storage.max_common_number(ranks)
        if common < 0:
            raise RecoveryError("storage has no checkpoints at all")
        escalation = getattr(sim, "recovery_escalation", 0)
        target = max(0, common - escalation)
        while target >= 0:
            cut: dict[int, "StoredCheckpoint"] = {}
            for rank in ranks:
                checkpoint = _intact_with_number(sim, rank, target)
                if checkpoint is None:
                    break
                cut[rank] = checkpoint
            else:
                return target, cut, common - target
            target -= 1
        raise UnrecoverableError(
            "no fully-intact straight cut survives on stable storage "
            f"(searched R_{common} down to R_0)"
        )

    def restore_common_number(self, sim: "Simulation", at_time: float) -> int:
        """Roll back to the deepest *intact* common checkpoint number.

        This is straight-cut recovery with graceful degradation: with
        checkpoint number ``i`` = the largest number every process has
        reached (0 = initial state), restore each process's latest
        intact number-``i`` checkpoint, falling back to ``R_{i-1}``
        when a member is missing or corrupt. The fallback depth is
        recorded in :class:`~repro.runtime.engine.SimulationStats`.
        Returns the restored number.
        """
        number, cut, depth = self.deepest_intact_cut(sim)
        sim.stats.fallback_depths.append(depth)
        if depth:
            sim.stats.recovery_fallbacks += 1
            sim.emit(
                "degraded-fallback", None, at_time,
                protocol=self.name, nominal=number + depth, restored=number,
                depth=depth,
            )
        sim.emit(
            "recovery", None, at_time,
            protocol=self.name, number=number, depth=depth,
        )
        sim.restore_cut(cut, at_time)
        return number

    def restore_tagged_round(
        self, sim: "Simulation", tag: str, at_time: float
    ) -> None:
        """Roll back to the per-process checkpoints carrying *tag*.

        Used by coordinated protocols: *tag* identifies a completed
        round, so every process has exactly one matching checkpoint.
        A corrupt member is a hard error here — round tags carry no
        straight-cut structure to degrade along.
        """
        cut: dict[int, "StoredCheckpoint"] = {}
        for rank in range(sim.n):
            checkpoint = sim.storage.latest_with_tag(rank, tag)
            if checkpoint is None:
                raise RecoveryError(
                    f"rank {rank} has no checkpoint for round {tag!r}"
                )
            cut[rank] = checkpoint
        sim.restore_cut(cut, at_time)
