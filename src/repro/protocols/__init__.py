"""Checkpointing protocols.

The paper's taxonomy (§1) as runnable protocol implementations over the
simulator:

- :class:`ApplicationDrivenProtocol` — the paper's contribution: the
  transformed program's own ``checkpoint`` statements do all the work;
  zero control messages, zero forced checkpoints; recovery restores the
  deepest common straight cut.
- :class:`SyncAndStopProtocol` — coordinated; stop the world, everyone
  checkpoints, resume (``5(n-1)`` control messages per round).
- :class:`ChandyLamportProtocol` — coordinated, on-the-fly distributed
  snapshots via markers.
- :class:`UncoordinatedProtocol` — independent periodic checkpoints;
  recovery searches for a consistent cut and can domino.
- :class:`InducedProtocol` — communication-induced (BCS-style index
  piggybacking with forced checkpoints).

Every protocol runs the same workload on the same engine; only
checkpoint triggering, control traffic, and recovery differ, so the
stats are directly comparable.
"""

from repro.protocols.application_driven import ApplicationDrivenProtocol
from repro.protocols.base import CheckpointingProtocol
from repro.protocols.chandy_lamport import ChandyLamportProtocol
from repro.protocols.clock_tracking import ClockTrackingProtocol
from repro.protocols.induced import InducedProtocol
from repro.protocols.logging_based import MessageLoggingProtocol
from repro.protocols.sync_and_stop import SyncAndStopProtocol
from repro.protocols.uncoordinated import UncoordinatedProtocol

__all__ = [
    "ApplicationDrivenProtocol",
    "ChandyLamportProtocol",
    "CheckpointingProtocol",
    "ClockTrackingProtocol",
    "InducedProtocol",
    "MessageLoggingProtocol",
    "SyncAndStopProtocol",
    "UncoordinatedProtocol",
]
