"""Checkpointing protocols.

The paper's taxonomy (§1) as runnable protocol implementations over the
simulator:

- :class:`ApplicationDrivenProtocol` — the paper's contribution: the
  transformed program's own ``checkpoint`` statements do all the work;
  zero control messages, zero forced checkpoints; recovery restores the
  deepest common straight cut.
- :class:`SyncAndStopProtocol` — coordinated; stop the world, everyone
  checkpoints, resume (``5(n-1)`` control messages per round).
- :class:`ChandyLamportProtocol` — coordinated, on-the-fly distributed
  snapshots via markers.
- :class:`UncoordinatedProtocol` — independent periodic checkpoints;
  recovery searches for a consistent cut and can domino.
- :class:`InducedProtocol` — communication-induced (BCS-style index
  piggybacking with forced checkpoints).

Every protocol runs the same workload on the same engine; only
checkpoint triggering, control traffic, and recovery differ, so the
stats are directly comparable.
"""

from repro.errors import SimulationError
from repro.protocols.application_driven import ApplicationDrivenProtocol
from repro.protocols.base import CheckpointingProtocol
from repro.protocols.chandy_lamport import ChandyLamportProtocol
from repro.protocols.clock_tracking import ClockTrackingProtocol
from repro.protocols.induced import InducedProtocol
from repro.protocols.logging_based import MessageLoggingProtocol
from repro.protocols.sync_and_stop import SyncAndStopProtocol
from repro.protocols.uncoordinated import UncoordinatedProtocol

#: The canonical protocol registry: CLI/spec name -> class (or None for
#: "run without any protocol"). ``appl-driven`` takes no period; every
#: timer-driven protocol does.
PROTOCOL_CLASSES: dict[str, type[CheckpointingProtocol] | None] = {
    "none": None,
    "appl-driven": ApplicationDrivenProtocol,
    "sas": SyncAndStopProtocol,
    "cl": ChandyLamportProtocol,
    "uncoordinated": UncoordinatedProtocol,
    "cic": InducedProtocol,
    "msg-logging": MessageLoggingProtocol,
}


def protocol_names() -> tuple[str, ...]:
    """Every registered protocol name, sorted."""
    return tuple(sorted(PROTOCOL_CLASSES))


def make_protocol(
    name: str, period: float = 10.0
) -> CheckpointingProtocol | None:
    """Instantiate the protocol registered under *name*.

    ``"none"`` returns ``None`` (the engine substitutes its null
    protocol); the application-driven protocol ignores *period*. The
    single factory behind the CLI, the chaos harness, and
    :class:`~repro.campaign.spec.ScenarioSpec`, so all three agree on
    names.
    """
    try:
        cls = PROTOCOL_CLASSES[name]
    except KeyError:
        known = ", ".join(protocol_names())
        raise SimulationError(
            f"unknown protocol {name!r}; known: {known}"
        ) from None
    if cls is None:
        return None
    if cls is ApplicationDrivenProtocol:
        return cls()
    return cls(period=period)


__all__ = [
    "ApplicationDrivenProtocol",
    "ChandyLamportProtocol",
    "CheckpointingProtocol",
    "ClockTrackingProtocol",
    "InducedProtocol",
    "MessageLoggingProtocol",
    "PROTOCOL_CLASSES",
    "SyncAndStopProtocol",
    "UncoordinatedProtocol",
    "make_protocol",
    "protocol_names",
]
