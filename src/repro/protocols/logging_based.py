"""Receiver-based pessimistic message logging.

The log-based branch of the rollback-recovery taxonomy (Elnozahy et
al.'s survey, the paper's [10]): every received message is available on
stable storage (here: the simulator's durable channel logs), so a
failed process can be restarted *alone* from its own latest checkpoint
and brought back to its pre-crash state by deterministic replay —
re-reading its logged messages and suppressing its duplicate sends.
Survivors never roll back.

Contrast with the paper's protocol: message logging also avoids
coordination, but pays for it on the fast path (every message is
logged synchronously — modelled here by the simulator's channel logs at
zero extra cost, so our comparison is *generous* to logging) and
recovery replays the whole interval of lost computation. The
application-driven approach pays nothing at run time and restores a
precomputed recovery line instead of replaying.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import CheckpointingProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Simulation


class MessageLoggingProtocol(CheckpointingProtocol):
    """Independent checkpoints + single-process log-based recovery."""

    name = "msg-logging"
    #: Recovery restarts one rank from its own checkpoint + logs; it
    #: never assembles straight cuts, and a restarted rank's re-phased
    #: checkpoint timer means it is free not to preserve them.
    induces_recovery_lines = False

    def __init__(self, period: float = 50.0, stagger: float = 0.5) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.period = period
        self.stagger = stagger
        self.single_restarts: list[int] = []

    def on_start(self, sim: "Simulation") -> None:
        for rank in range(sim.n):
            first = self.period * (1.0 + self.stagger * rank / max(1, sim.n))
            sim.schedule_timer(rank, first, "mlog")

    def on_timer(
        self, sim: "Simulation", rank: int, tag: str, time: float
    ) -> None:
        if tag != "mlog":
            return
        proc = sim.procs[rank]
        if proc.status not in ("crashed", "done"):
            sim.take_checkpoint(rank, time, tag="mlog")
        sim.schedule_timer(rank, time + self.period, "mlog")

    def on_failure(self, sim: "Simulation", rank: int, time: float) -> None:
        """Restart only the failed process; survivors are untouched.

        Corrupt checkpoints of the victim are skipped (newest-first):
        the channel logs reach arbitrarily far back, so replay from an
        older intact checkpoint still converges to the pre-crash state —
        it just replays more. The skip depth is recorded as a degraded
        recovery. A retrying supervisor escalates the same way: each
        retry asks for one intact checkpoint older than the last.
        """
        skip = getattr(sim, "recovery_escalation", 0)
        if hasattr(sim.storage, "latest_intact"):
            checkpoint, depth = sim.storage.latest_intact(rank, skip=skip)
        else:
            checkpoint, depth = sim.storage.latest(rank), 0
        sim.stats.fallback_depths.append(depth)
        if depth:
            sim.stats.recovery_fallbacks += 1
        sim.emit(
            "replay-restart", rank, time,
            protocol=self.name, number=checkpoint.number, depth=depth,
        )
        sim.emit(
            "recovery", rank, time,
            protocol=self.name, number=checkpoint.number, depth=depth,
        )
        sim.restore_single(checkpoint, time)
        self.single_restarts.append(rank)
